"""Ablation: tagless versus tag-checked page flush (DESIGN.md #1).

SPUR's shipped flush ignores address tags and vacates every frame a
page maps to, evicting innocent blocks; the paper assumes a
tag-checked flush for its comparison.  This bench runs the FLUSH
dirty-bit policy and the REF reference policy under both mechanisms
and reports the cycle and cache-disruption cost of the shortcut.
"""

import pytest

from repro.analysis.tables import Table
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.workloads.slc import SlcWorkload

from conftest import bench_scale, once


def run_ablation():
    runner = ExperimentRunner()
    scale = min(bench_scale(), 1.0) * 0.5
    table = Table(
        "Ablation: flush mechanism (SLC at 6 MB equivalent)",
        ["Configuration", "Flush strategy", "Cycles", "Page-ins",
         "Block fills"],
    )
    results = {}
    for policy_kind, config_kwargs in (
        ("FLUSH dirty policy", dict(dirty_policy="FLUSH")),
        ("REF reference policy", dict(reference_policy="REF")),
    ):
        for strategy in ("tag-checked", "tagless"):
            config = scaled_config(
                memory_ratio=48, flush_strategy=strategy,
                **config_kwargs,
            )
            result = runner.run(
                config, SlcWorkload(length_scale=scale)
            )
            results[(policy_kind, strategy)] = result
            from repro.counters.events import Event
            table.add_row(
                policy_kind, strategy, result.cycles,
                result.page_ins, result.event(Event.BLOCK_FILL),
            )
    return results, table


def test_flush_ablation(benchmark, record_result):
    results, table = once(benchmark, run_ablation)
    record_result("ablation_flush", table.render())
    for policy_kind in ("FLUSH dirty policy", "REF reference policy"):
        checked = results[(policy_kind, "tag-checked")]
        tagless = results[(policy_kind, "tagless")]
        # The tagless flush costs cycles and evicts foreign blocks,
        # which must never make the run cheaper.
        assert tagless.cycles >= checked.cycles, policy_kind
