"""Ablation: the segmented FIFO's inactive-list depth.

The inactive list is segfifo's only tuning knob: too shallow and
rescues never happen (degenerates to FIFO); too deep and the active
set is starved of frames.  This bench sweeps the fraction with the
generic :class:`SweepDriver` and records the page-in curve.
"""

import dataclasses

import pytest

from repro.analysis.sweeps import SweepDriver
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.workloads.slc import SlcWorkload

from conftest import bench_scale, once, shape_asserts_enabled

FRACTIONS = (0.05, 0.15, 0.25, 0.40, 0.60)


def run_sweep():
    scale = min(bench_scale(), 1.0) * 0.5
    driver = SweepDriver(
        scaled_config(memory_ratio=40, daemon_kind="segfifo",
                      reference_policy="NOREF"),
        "inactive_fraction",
        FRACTIONS,
        lambda: SlcWorkload(length_scale=scale),
    )
    results = driver.run()
    table = driver.tabulate(results, "page_ins")
    table.add_note(
        "rescues per point: " + ", ".join(
            f"{fraction}: "
            f"{results[''][fraction].event(Event.PAGE_REACTIVATE)}"
            for fraction in FRACTIONS
        )
    )
    return results[""], table


def test_inactive_fraction_ablation(benchmark, record_result):
    results, table = once(benchmark, run_sweep)
    record_result("ablation_inactive_fraction", table.render())
    if not shape_asserts_enabled():
        return
    # Rescues rise with list depth...
    rescues = {
        fraction: run.event(Event.PAGE_REACTIVATE)
        for fraction, run in results.items()
    }
    assert rescues[0.60] > rescues[0.05]
    # ...and some middle depth does at least as well on paging I/O as
    # the near-zero list (the knob matters).
    page_ins = {f: run.page_ins for f, run in results.items()}
    assert min(
        page_ins[0.15], page_ins[0.25], page_ins[0.40]
    ) <= page_ins[0.05]
