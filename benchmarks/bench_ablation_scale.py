"""Ablation: geometry-scale stability (DESIGN.md #3).

Runs one measurement point at two different linear scale factors and
checks that the ratio-level quantities the reproduction relies on
(excess-fault fraction, zero-fill share, read-before-write fraction)
are stable, supporting the DESIGN.md substitution argument.
"""

import pytest

from repro.analysis.tables import Table
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.workloads.slc import SlcWorkload

from conftest import bench_scale, once, shape_asserts_enabled


def run_scales():
    runner = ExperimentRunner()
    length = min(bench_scale(), 1.0) * 0.5
    table = Table(
        "Ablation: ratio stability across machine scales "
        "(SLC at 5 MB equivalent)",
        ["Scale", "Page bytes", "N_ef/N_ds", "N_zfod/N_ds",
         "w-hit fraction", "Page-ins"],
    )
    measurements = {}
    for scale in (8, 16):
        config = scaled_config(memory_ratio=40, scale=scale)
        result = runner.run(
            config, SlcWorkload(length_scale=length)
        )
        n_ds = max(1, result.event(Event.DIRTY_FAULT))
        w_hit = result.event(Event.WRITE_TO_READ_FILLED_BLOCK)
        w_miss = result.event(Event.WRITE_MISS_FILL)
        measurements[scale] = {
            "ef_frac": result.event(Event.DIRTY_BIT_MISS) / n_ds,
            "zfod_frac": result.event(
                Event.ZERO_FILL_DIRTY_FAULT
            ) / n_ds,
            "whit_frac": w_hit / max(1, w_hit + w_miss),
            "page_ins": result.page_ins,
        }
        m = measurements[scale]
        table.add_row(
            scale, config.page_bytes, f"{m['ef_frac']:.3f}",
            f"{m['zfod_frac']:.3f}", f"{m['whit_frac']:.3f}",
            m["page_ins"],
        )
    return measurements, table


def test_scale_ablation(benchmark, record_result):
    measurements, table = once(benchmark, run_scales)
    record_result("ablation_scale", table.render())
    if not shape_asserts_enabled():
        return
    a, b = measurements[8], measurements[16]
    assert abs(a["ef_frac"] - b["ef_frac"]) < 0.15
    assert abs(a["zfod_frac"] - b["zfod_frac"]) < 0.20
    assert abs(a["whit_frac"] - b["whit_frac"]) < 0.10
    # Page-ins are a page-count phenomenon and should be of the same
    # order at both scales (same number of pages of memory).
    ratio = a["page_ins"] / max(1, b["page_ins"])
    assert 0.4 < ratio < 2.5
