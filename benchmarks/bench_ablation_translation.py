"""Ablation: in-cache translation behaviour (DESIGN.md #5).

In-cache translation uses the unified cache as a very large TLB; its
effectiveness is the PTE-in-cache hit ratio.  This bench measures that
ratio under real workload traffic and shows the cache-size lever: a
larger cache holds more PTE blocks and translates more cheaply, which
is the design premise of [Wood86].
"""

import pytest

from repro.analysis.tables import Table
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.common.params import CacheGeometry
from repro.workloads.slc import SlcWorkload

from conftest import bench_scale, once, shape_asserts_enabled


def run_translation_ablation():
    runner = ExperimentRunner()
    length = min(bench_scale(), 1.0) * 0.5
    table = Table(
        "Ablation: in-cache translation (SLC at 6 MB equivalent)",
        ["Cache size", "PTE hit ratio", "2nd-level memory fetches",
         "Translations"],
    )
    ratios = {}
    import dataclasses
    base_config = scaled_config(memory_ratio=48)
    for cache_kb in (8, 16, 32):
        config = dataclasses.replace(
            base_config, cache=CacheGeometry(cache_kb * 1024, 32)
        )
        result = runner.run(
            config, SlcWorkload(length_scale=length)
        )
        translations = max(1, result.event(Event.TRANSLATION))
        hits = result.event(Event.PTE_CACHE_HIT)
        ratios[cache_kb] = hits / translations
        table.add_row(
            f"{cache_kb} KB", f"{ratios[cache_kb]:.3f}",
            result.event(Event.SECOND_LEVEL_MEMORY_ACCESS),
            translations,
        )
    return ratios, table


def test_translation_ablation(benchmark, record_result):
    ratios, table = once(benchmark, run_translation_ablation)
    record_result("ablation_translation", table.render())
    if not shape_asserts_enabled():
        return
    # The cache must be doing real TLB duty...
    assert ratios[16] > 0.35
    # ...and more cache must never translate worse.
    assert ratios[8] <= ratios[16] + 0.02
    assert ratios[16] <= ratios[32] + 0.02
