"""Figure 3.1: multiple cached blocks with stale protection.

Runs the figure's exact scenario on a live machine under the FAULT
policy and renders the figure — the page-table entry beside the two
cached blocks — at each step, asserting the stale-copy mechanism the
caption describes: "Changing the protection in the page table entry
does not directly affect the protection of the two previously cached
blocks.  If these blocks are left unchanged, subsequent writes will
result in protection faults."
"""

import pytest

from repro.common.params import CacheGeometry, FaultTiming
from repro.common.types import Protection
from repro.counters.events import Event
from repro.machine.config import MachineConfig
from repro.machine.simulator import SpurMachine
from repro.vm.segments import (
    AddressSpaceMap,
    ProcessAddressSpace,
    RegionKind,
)
from repro.workloads.base import READ, WRITE

from conftest import once


def build_machine():
    space_map = AddressSpaceMap(4096)
    space = ProcessAddressSpace(0, 4096, 1 << 24, space_map)
    heap = space.add_region("heap", RegionKind.HEAP, 16 * 4096)
    space_map.seal()
    config = MachineConfig(
        name="fig31",
        cache=CacheGeometry(size_bytes=128 * 1024, block_bytes=32),
        page_bytes=4096,
        memory_bytes=2 * 1024 * 1024,
        wired_frames=2,
        dirty_policy="FAULT",
        daemon_poll_refs=0,
    )
    return SpurMachine(config, space_map), heap.start


def snapshot(machine, page_a, caption):
    pte = machine.page_table.entry(page_a >> 12)
    labels = {"READ_ONLY": "RO", "READ_WRITE": "RW"}
    pte_prot = labels.get(pte.protection.name, pte.protection.name)
    rows = [caption, ""]
    rows.append("  Page Table Entry        Cache")
    rows.append(f"  +--------+------+       +---------+------+")
    rows.append(
        f"  | Page A | {pte_prot:>4} |       blocks of Page A:"
    )
    rows.append(f"  +--------+------+")
    for label, offset in (("block 0", 0), ("block 1", 32)):
        index = machine.cache.probe(page_a + offset)
        if index < 0:
            rows.append(f"     {label}: not cached")
        else:
            prot = Protection(machine.cache.prot[index]).name
            prot = {"READ_ONLY": "RO", "READ_WRITE": "RW"}.get(
                prot, prot
            )
            rows.append(
                f"     {label}: cached, protection copy = {prot}"
            )
    return "\n".join(rows)


def run_figure():
    machine, page_a = build_machine()
    parts = ["Figure 3.1: Example of Multiple Cache Blocks "
             "(regenerated from live state)"]

    machine.run([(READ, page_a), (READ, page_a + 32)])
    parts.append(snapshot(
        machine, page_a,
        "\n1. Two blocks brought in while Page A is read-only:"
    ))
    state_after_reads = (
        machine.page_table.entry(page_a >> 12).protection,
        machine.cache.prot[machine.cache.probe(page_a)],
        machine.cache.prot[machine.cache.probe(page_a + 32)],
    )

    machine.run([(WRITE, page_a)])
    parts.append(snapshot(
        machine, page_a,
        "\n2. First write faults; the handler promotes the PTE to RW\n"
        "   and repairs only the faulting block:"
    ))
    stale_prot = machine.cache.prot[machine.cache.probe(page_a + 32)]

    machine.run([(WRITE, page_a + 32)])
    excess = machine.counters.read(Event.EXCESS_FAULT)
    parts.append(snapshot(
        machine, page_a,
        f"\n3. Writing the second block: its stale copy faults "
        f"anyway\n   (excess faults counted: {excess}):"
    ))
    return (state_after_reads, stale_prot, excess,
            "\n".join(parts))


def test_figure_3_1(benchmark, record_result):
    state, stale_prot, excess, text = once(benchmark, run_figure)
    record_result("figure_3_1", text)
    pte_prot, block0_prot, block1_prot = state
    # Step 1: the emulation mapped a writable page read-only and the
    # cached copies mirror it.
    assert pte_prot is Protection.READ_ONLY
    assert block0_prot == int(Protection.READ_ONLY)
    assert block1_prot == int(Protection.READ_ONLY)
    # Step 2: the PTE was promoted but block 1's copy went stale.
    assert stale_prot == int(Protection.READ_ONLY)
    # Step 3: exactly one excess fault.
    assert excess == 1
