"""Figure 3.2: the SPUR page-table-entry and cache-tag formats.

The diagram is rendered from the live :data:`PTE_LAYOUT` and
:data:`CACHE_TAG_LAYOUT` declarations — the same objects the simulator
packs and unpacks through — so the figure cannot drift from the
implementation.
"""

from repro.cache.block import CACHE_TAG_LAYOUT
from repro.translation.pte import PTE_LAYOUT

from conftest import once


def render_figure_3_2():
    parts = [
        "Figure 3.2: SPUR Page Table and Cache Line Format",
        "",
        "a) SPUR Page Table Entry Format",
        PTE_LAYOUT.render(),
        "",
    ]
    parts.extend(
        f"  {field.name:<4} = {field.description}"
        for field in reversed(PTE_LAYOUT.fields)
    )
    parts += [
        "",
        "b) SPUR Cache Tag Format",
        CACHE_TAG_LAYOUT.render(),
        "",
    ]
    parts.extend(
        f"  {field.name:<4} = {field.description}"
        for field in reversed(CACHE_TAG_LAYOUT.fields)
    )
    return "\n".join(parts)


def test_figure_3_2(benchmark, record_result):
    text = once(benchmark, render_figure_3_2)
    record_result("figure_3_2", text)
    # Every field the paper's figure names must appear.
    for label in ("PR", "D", "R", "V", "PPN"):
        assert f"{label}[" in text
    for label in ("P[1]", "B[1]", "CS[2]"):
        assert label in text
    assert "Page Dirty Bit" in text
    assert "Block Dirty Bit" in text
