"""The footnote-3 geometric excess-fault model.

Fits the model to the paper's measured block counts, compares its
prediction with the published observation ("less than 20% as many
excess faults as modified faults"), and validates the analytic mean
against Monte-Carlo simulation.
"""

import pytest

from repro.analysis import paper_data
from repro.analysis.tables import Table
from repro.common.rng import DeterministicRng
from repro.policies.model import ExcessFaultModel

from conftest import once


def compute_model_table():
    table = Table(
        "Footnote 3: geometric excess-fault model vs measurement",
        ["Workload", "Mem (MB)", "p_w", "predicted N_ef/N_ds",
         "measured (excl. zfod)", "Monte-Carlo mean"],
    )
    rows = {}
    rng = DeterministicRng(42)
    for (workload, memory_mb), (counts, _) in sorted(
        paper_data.TABLE_3_3.items()
    ):
        model = ExcessFaultModel.from_counts(
            counts.n_w_hit, counts.n_w_miss
        )
        pages = 20_000
        simulated = model.simulate(rng, pages) / pages
        measured = counts.excess_fault_fraction_excluding_zfod
        rows[(workload, memory_mb)] = (model, measured, simulated)
        table.add_row(
            workload, memory_mb, f"{model.p_w:.3f}",
            f"{model.predicted_excess_fraction():.3f}",
            f"{measured:.3f}", f"{simulated:.3f}",
        )
    table.add_note(
        "the model assumes uniform miss mixes and infinite pages; "
        "relaxing those assumptions only lowers the prediction, so "
        "measurements may sit on either side of it"
    )
    return rows, table


def test_footnote_3_model(benchmark, record_result):
    rows, table = once(benchmark, compute_model_table)
    record_result("model_footnote3", table.render())

    for (workload, memory_mb), (model, measured, simulated) in (
        rows.items()
    ):
        prediction = model.predicted_excess_fraction()
        # The paper's headline ("predicts less than 20%") is quoted
        # for the ~one-fifth read-before-write ratio; two WORKLOAD1
        # points sit a hair above, so assert the 25% envelope.
        assert prediction < 0.25, (workload, memory_mb)
        # Monte-Carlo agrees with the analytic mean.
        assert simulated == pytest.approx(prediction, rel=0.15)
        # Measurement and prediction agree in order of magnitude.
        assert measured < 3 * max(prediction, 0.05)
