"""Extension bench: multiprocessor scaling of the paper's mechanisms.

Not a paper table — the prototype was a uniprocessor — but a
quantification of two multiprocessor claims the paper makes in prose:

* Section 3.1: software dirty-bit updates need no atomic PTE-update
  hardware; one processor's fault marks the shared PTE for everyone.
* Section 4.1: flushing a page on reference-bit clear "is especially
  [expensive] in a multiprocessor, which must flush the page from all
  the caches".
"""

import pytest

from repro.analysis.tables import Table
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.smp import SmpSystem
from repro.vm.segments import (
    AddressSpaceMap,
    ProcessAddressSpace,
    RegionKind,
)
from repro.workloads.base import READ, WRITE

from conftest import once


def build_system(num_cpus):
    config = scaled_config(memory_ratio=48, daemon_poll_refs=0)
    space_map = AddressSpaceMap(config.page_bytes)
    space = ProcessAddressSpace(
        0, config.page_bytes, 1 << 26, space_map
    )
    heap = space.add_region("shared-heap", RegionKind.HEAP,
                            256 * config.page_bytes)
    space_map.seal()
    return SmpSystem(config, space_map, num_cpus=num_cpus), heap


def run_scaling():
    table = Table(
        "Extension: multiprocessor scaling of flushes and dirty "
        "faults",
        ["Boards", "Bus txns", "Snoop hits", "Dirty faults",
         "Flush cycles/page"],
    )
    measurements = {}
    for num_cpus in (1, 2, 4, 8):
        system, heap = build_system(num_cpus)
        streams = []
        for cpu in range(num_cpus):
            refs = []
            for i in range(12_000):
                if i % 3 == 0:
                    offset = ((i * 13 + cpu) % (64 * 16)) * 32
                else:
                    base = (64 + 24 * cpu) * 512
                    offset = base + ((i * 7) % (24 * 16)) * 32
                kind = WRITE if (i + cpu) % 5 == 0 else READ
                refs.append((kind, heap.start + offset))
            streams.append(refs)
        system.run_interleaved(streams, quantum=2048)
        flush_cycles = system.flush_page(heap.start)
        measurements[num_cpus] = {
            "bus": system.bus.transactions,
            "snoops": system.bus.snoop_hits,
            "dirty_faults": system.counters.read(Event.DIRTY_FAULT),
            "flush": flush_cycles,
        }
        m = measurements[num_cpus]
        table.add_row(num_cpus, m["bus"], m["snoops"],
                      m["dirty_faults"], m["flush"])
    return measurements, table


def test_multiprocessor_scaling(benchmark, record_result):
    measurements, table = once(benchmark, run_scaling)
    record_result("extension_multiprocessor", table.render())

    # Dirty faults are per-*page*, not per-processor: each system
    # takes exactly one fault per distinct written page (64 shared
    # pages + 24 private pages per board), no matter how many boards
    # write the shared ones.  That is the paper's software-update
    # argument made exact.
    for num_cpus, m in measurements.items():
        assert m["dirty_faults"] == 64 + 24 * num_cpus, num_cpus
    # Flush cost grows with board count (every cache swept).
    assert measurements[4]["flush"] > 2 * measurements[1]["flush"]
    assert measurements[8]["flush"] > measurements[4]["flush"]
    # Sharing produces real snoop traffic on multiprocessors only.
    assert measurements[1]["snoops"] == 0
    assert measurements[4]["snoops"] > 0
