"""Extension bench: replacement without reference bits (Section 4.1's
future-work remark).

Compares three configurations on both workloads at the 6 MB-equivalent
point:

* MISS + clock — the paper's winner;
* NOREF + clock — the paper's FIFO strawman;
* NOREF + segmented FIFO — "a better replacement algorithm that does
  not support reference bits": soft evictions to an inactive list,
  I/O-free rescues on re-touch.

The question the paper left open: can a bit-free scheme close the gap
to MISS?  The inactive list recovers recency information from fault
behaviour instead of reference bits, at the cost of flush-on-
deactivate cycles.
"""

import pytest

from repro.analysis.tables import Table
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.workloads.slc import SlcWorkload
from repro.workloads.workload1 import Workload1

from conftest import bench_scale, once, shape_asserts_enabled

CONFIGS = (
    ("MISS + clock", dict(reference_policy="MISS",
                          daemon_kind="clock")),
    ("NOREF + clock (FIFO)", dict(reference_policy="NOREF",
                                  daemon_kind="clock")),
    ("NOREF + segfifo", dict(reference_policy="NOREF",
                             daemon_kind="segfifo")),
)


def run_comparison():
    runner = ExperimentRunner()
    scale = min(bench_scale(), 1.0)
    table = Table(
        "Extension: replacement without reference bits "
        "(6 MB equivalent)",
        ["Workload", "Scheme", "Page-ins", "Rescues", "Elapsed (s)"],
    )
    results = {}
    for workload_name, workload_cls in (
        ("SLC", SlcWorkload), ("WORKLOAD1", Workload1),
    ):
        for label, kwargs in CONFIGS:
            config = scaled_config(memory_ratio=48, **kwargs)
            result = runner.run(
                config, workload_cls(length_scale=scale)
            )
            results[(workload_name, label)] = result
            table.add_row(
                workload_name, label, result.page_ins,
                result.event(Event.PAGE_REACTIVATE),
                f"{result.elapsed_seconds:.1f}",
            )
        table.add_separator()
    return results, table


def test_segfifo_extension(benchmark, record_result):
    results, table = once(benchmark, run_comparison)
    record_result("extension_segfifo", table.render())
    if not shape_asserts_enabled():
        return
    for workload in ("SLC", "WORKLOAD1"):
        miss = results[(workload, "MISS + clock")]
        fifo = results[(workload, "NOREF + clock (FIFO)")]
        segfifo = results[(workload, "NOREF + segfifo")]
        # The inactive list must actually rescue pages...
        assert segfifo.event(Event.PAGE_REACTIVATE) > 0, workload
        # ...and beat plain FIFO on paging I/O.
        assert segfifo.page_ins < fifo.page_ins, workload
        # The measured outcome vindicates the paper's closing
        # speculation: the bit-free segmented FIFO matches or beats
        # the MISS+clock configuration (fault-driven rescues recover
        # recency more cheaply than reference-bit maintenance).
        assert segfifo.cycles <= miss.cycles * 1.05, workload
