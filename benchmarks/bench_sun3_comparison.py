"""Extension bench: SPUR versus a Sun-3-flavoured machine.

The paper argues policy-by-policy on SPUR's geometry; this bench runs
the machine-level comparison its Sun-3 references imply: the
`sun3_like_config` (8 KB pages, smaller direct-mapped virtual cache,
the WRITE hardware dirty-check) against the SPUR machine with FAULT
emulation, on the same workloads.

The interesting outcome is the equal-DRAM trade-off: at the same
memory size, Sun-3's double-size pages mean *half as many frames*, so
paging pressure (and with it re-dirtying and page-ins) rises sharply —
the coarse-page cost that bigger memories later amortised — while its
WRITE mechanism pays a PTE check on every first write to a cache
block and never takes an excess fault.
"""

import pytest

from repro.analysis.tables import Table
from repro.counters.events import Event
from repro.machine.config import scaled_config, sun3_like_config
from repro.machine.runner import ExperimentRunner
from repro.workloads.slc import SlcWorkload
from repro.workloads.workload1 import Workload1

from conftest import bench_scale, once, shape_asserts_enabled


def run_comparison():
    runner = ExperimentRunner()
    scale = min(bench_scale(), 1.0) * 0.5
    machines = (
        ("SPUR + FAULT",
         scaled_config(memory_ratio=48, dirty_policy="FAULT")),
        ("SPUR + SPUR-hw",
         scaled_config(memory_ratio=48, dirty_policy="SPUR")),
        ("Sun-3-like (WRITE, 8K pages)", sun3_like_config(6)),
    )
    table = Table(
        "Extension: SPUR vs Sun-3-like machine (6 MB equivalent)",
        ["Workload", "Machine", "N_ds", "checks", "excess",
         "page-ins", "cyc/ref"],
    )
    results = {}
    for name, workload_cls in (("SLC", SlcWorkload),
                               ("WORKLOAD1", Workload1)):
        for label, config in machines:
            result = runner.run(
                config, workload_cls(length_scale=scale)
            )
            results[(name, label)] = result
            table.add_row(
                name, label,
                result.event(Event.DIRTY_FAULT),
                result.event(Event.DIRTY_CHECK),
                result.event(Event.EXCESS_FAULT),
                result.page_ins,
                f"{result.cycles_per_reference:.1f}",
            )
        table.add_separator()
    table.add_note(
        "equal DRAM: Sun-3's 2x pages mean half the frames, so "
        "paging and re-dirtying rise; its WRITE mechanism checks "
        "the PTE on each first block write and never excess-faults"
    )
    return results, table


def test_sun3_comparison(benchmark, record_result):
    results, table = once(benchmark, run_comparison)
    record_result("extension_sun3", table.render())
    if not shape_asserts_enabled():
        return
    for workload in ("SLC", "WORKLOAD1"):
        spur_fault = results[(workload, "SPUR + FAULT")]
        sun3 = results[(workload, "Sun-3-like (WRITE, 8K pages)")]
        # Equal DRAM, double pages => half the frames => heavier
        # paging on the Sun-3-like machine.
        assert sun3.page_ins > spur_fault.page_ins, workload
        # ... which also costs time per reference (and the smaller
        # cache compounds it).
        assert (sun3.cycles_per_reference
                > spur_fault.cycles_per_reference), workload
        # The Sun-3 mechanism: per-block checks, never excess faults.
        assert sun3.event(Event.DIRTY_CHECK) > 0
        assert sun3.event(Event.EXCESS_FAULT) == 0
        # FAULT emulation on SPUR produces its excess faults.
        assert spur_fault.event(Event.EXCESS_FAULT) > 0
