"""Extension bench: the memory-size sweep behind Table 4.1's three
points.

The paper sampled 5, 6, and 8 MB.  This bench sweeps a finer grid of
memory ratios for each reference policy and plots page-ins against
memory size, making the crossover structure visible: where NOREF's
penalty collapses, and how MISS tracks REF throughout.
"""

import pytest

from repro.analysis.charts import line_plot
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.workloads.slc import SlcWorkload

from conftest import (
    bench_runner,
    bench_scale,
    bench_workers,
    once,
    shape_asserts_enabled,
)

#: Memory ratios swept (the paper's points are 40, 48, 64).
RATIOS = (36, 40, 44, 48, 56, 64, 72)


def run_sweep():
    runner = bench_runner()
    scale = min(bench_scale(), 1.0) * 0.5
    grid = [
        (policy, ratio)
        for policy in ("MISS", "REF", "NOREF")
        for ratio in RATIOS
    ]
    outcomes = runner.run_many(
        [
            (scaled_config(memory_ratio=ratio,
                           reference_policy=policy),
             SlcWorkload(length_scale=scale), 0, None)
            for policy, ratio in grid
        ],
        workers=bench_workers(),
    )
    series = {}
    for (policy, ratio), result in zip(grid, outcomes):
        series.setdefault(policy, []).append(
            (ratio, result.page_ins)
        )
    chart = line_plot(
        series, width=56, height=14,
        title="SLC page-ins vs memory size (ratio x 16 KB cache)",
        x_label="memory ratio (40 = 5 MB equivalent)",
    )
    return series, chart


def test_memory_sweep(benchmark, record_result):
    series, chart = once(benchmark, run_sweep)
    record_result("extension_memory_sweep", chart)
    if not shape_asserts_enabled():
        return
    for policy, data in series.items():
        page_ins = dict(data)
        # Paging decreases (weakly) from the smallest to the largest
        # memory for every policy.
        assert page_ins[RATIOS[0]] >= page_ins[RATIOS[-1]], policy
    # NOREF sits at or above MISS across the sweep.
    miss = dict(series["MISS"])
    noref = dict(series["NOREF"])
    above = sum(
        1 for ratio in RATIOS if noref[ratio] >= miss[ratio] * 0.98
    )
    assert above >= len(RATIOS) - 1
