"""Table 2.1: the SPUR system configuration.

Regenerated from the live ``paper_config()`` object rather than a
string table, so any drift between the documented and simulated
machine shows up here.
"""

from repro.analysis.tables import Table
from repro.common.units import (
    SPUR_BUS_CYCLE_TIME_SECONDS,
    SPUR_CYCLE_TIME_SECONDS,
)
from repro.machine.config import TABLE_2_1, paper_config

from conftest import once


def render_table_2_1():
    config = paper_config(memory_mb=8)
    table = Table("Table 2.1: SPUR System Configuration",
                  ["Parameter", "Value"])
    rows = (
        ("Cache Size", f"{config.cache.size_bytes // 1024} Kbytes"),
        ("Associativity", "Direct Mapped"),
        ("Block Size", f"{config.cache.block_bytes} bytes"),
        ("Page Size", f"{config.page_bytes // 1024} Kbytes"),
        ("Instruction Buffer", "Disabled"),
        ("Processor cycle time",
         f"{SPUR_CYCLE_TIME_SECONDS * 1e9:.0f}ns"),
        ("Backplane cycle time",
         f"{SPUR_BUS_CYCLE_TIME_SECONDS * 1e9:.0f}ns"),
        ("Time to first word",
         f"{config.memory_timing.first_word_cycles} cycles"),
        ("Time to next word",
         f"{config.memory_timing.next_word_cycles} cycle"),
    )
    for label, value in rows:
        table.add_row(label, value)
    return rows, table


def test_table_2_1(benchmark, record_result):
    rows, table = once(benchmark, render_table_2_1)
    record_result("table_2_1", table.render())
    # The regenerated rows must match the transcription verbatim.
    assert tuple(rows) == TABLE_2_1
