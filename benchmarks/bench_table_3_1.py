"""Table 3.1: the dirty-bit implementation alternatives.

Regenerated from the live policy classes' docstrings so the catalogue
always describes what is actually implemented.
"""

from repro.analysis.tables import Table
from repro.policies.costs import DIRTY_POLICY_NAMES
from repro.policies.dirty import make_dirty_policy

from conftest import once


def render_table_3_1():
    table = Table("Table 3.1: Dirty Bit Implementation Alternatives",
                  ["Policy", "Description"])
    policies = {}
    for name in ("FAULT", "FLUSH", "SPUR", "WRITE", "MIN"):
        policy = make_dirty_policy(name)
        policies[name] = policy
        summary = policy.__doc__.strip().splitlines()[0]
        table.add_row(name, summary)
    return policies, table


def test_table_3_1(benchmark, record_result):
    policies, table = once(benchmark, render_table_3_1)
    record_result("table_3_1", table.render())
    assert set(policies) == set(DIRTY_POLICY_NAMES)
    text = table.render()
    assert "protection" in text  # the emulation policies say so
