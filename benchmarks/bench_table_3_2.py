"""Table 3.2: the time parameters of the dirty-bit analysis.

Besides rendering the table, this bench *derives* two of the paper's
parameters from the mechanism models and checks they land near the
published values:

* ``t_flush`` ~ 500 cycles: the paper's estimate for a tag-checked
  flush of a 128-block page with ~10% of blocks dirty;
* the tagless flush at ~4x that cost (the "nearly 2000 cycles" SPUR
  actually shipped with).
"""

from repro.analysis import paper_data
from repro.analysis.tables import Table
from repro.cache.cache import VirtualCache
from repro.cache.flush import TagCheckedFlush, TaglessFlush
from repro.common.params import CacheGeometry, MemoryTiming
from repro.common.rng import DeterministicRng
from repro.common.types import Protection

from conftest import once

PAGE = 4096  # paper-scale page: 128 blocks


def measure_flush_costs():
    """Flush a page populated as the paper's estimates assume.

    Tag-checked: 10% of the page's blocks dirty ("90% of blocks at 1
    cycle per block, 10% must be flushed at 10 cycles").  Tagless: a
    fifth of the vacated blocks written back ("assuming one-fifth of
    the blocks must actually be written back").
    """
    rng = DeterministicRng(7)
    costs = {}
    for flusher, dirty_fraction in (
        (TagCheckedFlush(), 0.10), (TaglessFlush(), 0.20),
    ):
        cache = VirtualCache(
            CacheGeometry(size_bytes=128 * 1024, block_bytes=32),
            MemoryTiming(),
        )
        for block in range(128):
            vaddr = block * 32
            dirty = rng.random() < dirty_fraction
            cache.fill(vaddr, Protection.READ_WRITE,
                       page_dirty=True, by_write=dirty)
        result = flusher.flush_page(cache, 0, PAGE)
        costs[flusher.name] = result.cycles
    return costs


def render_table_3_2(costs):
    times = paper_data.TABLE_3_2
    table = Table("Table 3.2: Time Parameters",
                  ["Parameter", "Cycle Count", "Description"])
    table.add_row("t_ds", times.t_ds,
                  "Time for handler to set dirty bit")
    table.add_row("t_flush", times.t_flush,
                  "Time to flush page from cache")
    table.add_row("t_dm", times.t_dm,
                  "Time to update cached dirty bit")
    table.add_row("t_dc", times.t_dc, "Time to check PTE dirty bit")
    table.add_note(
        f"measured tag-checked flush of a 10%-dirty page: "
        f"{costs['tag-checked']} cycles (paper estimate 500)"
    )
    table.add_note(
        f"measured tagless flush: {costs['tagless']} cycles "
        f"(paper estimate ~2000)"
    )
    return table


def test_table_3_2(benchmark, record_result):
    costs = once(benchmark, measure_flush_costs)
    table = render_table_3_2(costs)
    record_result("table_3_2", table.render())
    # The mechanism model must land in the paper's ballpark.
    assert 300 <= costs["tag-checked"] <= 800
    assert 1200 <= costs["tagless"] <= 3000
    assert costs["tagless"] > 2 * costs["tag-checked"]
