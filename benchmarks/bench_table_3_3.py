"""Table 3.3: event frequencies measured on the simulated prototype.

One full run per (workload, memory) point with the prototype's actual
configuration (SPUR dirty-bit mechanism, MISS reference bits).  The
assertions pin the *shape* targets from DESIGN.md: excess faults are a
small fraction of necessary faults, roughly a fifth of modified blocks
are read before written, zero-fill faults are a large share of dirty
faults, and all paging-driven counts rise as memory shrinks.
"""

import pytest

from repro.analysis.experiments import run_table_3_3

from conftest import (
    bench_runner,
    bench_scale,
    bench_workers,
    once,
    shape_asserts_enabled,
)


@pytest.fixture(scope="module")
def rows():
    result = {}

    def compute():
        result["rows"], result["table"] = run_table_3_3(
            length_scale=bench_scale(), runner=bench_runner(),
            workers=bench_workers(),
        )
        return result["rows"]

    return result, compute


def test_table_3_3(benchmark, record_result, rows):
    holder, compute = rows
    once(benchmark, compute)
    record_result("table_3_3", holder["table"].render())
    if not shape_asserts_enabled():
        return

    by_point = {
        (row.workload, row.memory_mb): row.counts
        for row in holder["rows"]
    }
    for workload in ("SLC", "WORKLOAD1"):
        for memory_mb in (5, 6, 8):
            counts = by_point[(workload, memory_mb)]
            # Excess faults are rare: well under the necessary count.
            assert counts.excess_fault_fraction < 0.20, (
                workload, memory_mb
            )
            # Roughly one fifth of modified blocks were read first.
            assert 0.08 <= counts.read_before_write_fraction <= 0.35
            # Zero-fill faults are a large share of dirty faults.
            assert 0.25 <= counts.n_zfod / counts.n_ds <= 0.9

        # Paging pressure: dirty faults grow as memory shrinks.
        small = by_point[(workload, 5)]
        large = by_point[(workload, 8)]
        assert small.n_ds > large.n_ds
        # Zero-fill counts are nearly memory-independent (the paper's
        # SLC column is constant at 905).
        assert abs(small.n_zfod - large.n_zfod) < 0.25 * large.n_zfod
