"""Table 3.4: overhead of the dirty-bit alternatives.

Two variants, as DESIGN.md specifies:

1. **Published counts** — feed the paper's Table 3.3 through our
   Section 3.2 cost models; every cell must match the published
   Table 3.4 (this validates the model implementation end to end).
2. **Measured counts** — feed our simulated Table 3.3.  The MIN /
   SPUR / FAULT / FLUSH relationships carry over; the WRITE column is
   reported but not asserted against the paper, because its
   :math:`N_{w\\text{-}hit} t_{dc}` term scales with trace length and
   our traces are ~1000x shorter (see EXPERIMENTS.md).

A sensitivity sweep reproduces the paper's "even at t_dc = 1 cycle,
WRITE stays worst" observation on the published counts.
"""

import pytest

from repro.analysis import paper_data
from repro.analysis.experiments import build_table_3_4, run_table_3_3
from repro.policies.costs import TimeParameters, overhead_table

from conftest import bench_scale, once, shape_asserts_enabled


def test_table_3_4_from_paper_counts(benchmark, record_result):
    results, table = once(benchmark, build_table_3_4)
    record_result("table_3_4_paper_counts", table.render())
    for key, published in paper_data.TABLE_3_4.items():
        for policy, (mcycles, ratio) in published.items():
            cycles, got_ratio = results[key][policy]
            assert cycles / 1e6 == pytest.approx(mcycles, rel=0.02)
            assert got_ratio == pytest.approx(ratio, rel=0.02)


def test_table_3_4_from_measured_counts(benchmark, record_result):
    def compute():
        rows, _ = run_table_3_3(length_scale=bench_scale())
        return build_table_3_4(rows)

    results, table = once(benchmark, compute)
    record_result("table_3_4_measured_counts", table.render())
    if not shape_asserts_enabled():
        return
    for key, overheads in results.items():
        if overheads["MIN"][0] == 0:
            continue
        # FLUSH is exactly 1.5x MIN (t_flush = t_ds / 2).
        assert overheads["FLUSH"][1] == pytest.approx(1.5)
        # SPUR sits a few percent above MIN.
        assert 1.0 < overheads["SPUR"][1] < 1.15
        # FAULT carries the excess faults: above SPUR, below FLUSH
        # in the rare-excess-fault regime the workloads produce.
        assert overheads["SPUR"][1] < overheads["FAULT"][1]
        assert overheads["FAULT"][1] <= overheads["FLUSH"][1] + 0.05


def test_write_policy_sensitivity(benchmark, record_result):
    """Sweep t_dc on the published counts (Section 3.2's footnote)."""

    def sweep():
        lines = ["WRITE-policy sensitivity to t_dc "
                 "(paper counts, WORKLOAD1 at 5 MB):"]
        counts, _ = paper_data.TABLE_3_3[("WORKLOAD1", 5)]
        rows = {}
        for t_dc in (5, 3, 1):
            times = TimeParameters(t_dc=t_dc)
            table = overhead_table(counts, times)
            rows[t_dc] = table
            lines.append(
                f"  t_dc={t_dc}: WRITE = {table['WRITE'][0] / 1e6:.1f}M "
                f"cycles ({table['WRITE'][1]:.2f}x MIN)"
            )
        return rows, "\n".join(lines)

    rows, text = once(benchmark, sweep)
    record_result("table_3_4_tdc_sensitivity", text)
    for t_dc, table in rows.items():
        worst = max(cycles for cycles, _ in table.values())
        assert table["WRITE"][0] == worst, (
            f"WRITE must stay worst even at t_dc={t_dc}"
        )
