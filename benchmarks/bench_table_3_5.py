"""Table 3.5: page-out behaviour of the Sprite development systems.

The headline claims under test (Section 3.3):

* with 8 MB of memory, at least ~80% of writable pages are modified
  by the time they are replaced;
* with 12 MB or more, at least ~90%;
* dropping dirty bits entirely would grow total paging I/O only
  modestly (the paper: at most 3%; our compressed traces run fewer
  file page-ins per replacement, so the bound asserted here is
  looser — see EXPERIMENTS.md).
"""

import pytest

from repro.analysis.experiments import run_table_3_5

from conftest import (
    bench_runner,
    bench_scale,
    bench_workers,
    once,
    shape_asserts_enabled,
)


def test_table_3_5(benchmark, record_result):
    result = {}

    def compute():
        result["rows"], result["table"] = run_table_3_5(
            length_scale=bench_scale(), runner=bench_runner(),
            workers=bench_workers(),
        )
        return result["rows"]

    rows = once(benchmark, compute)
    record_result("table_3_5", result["table"].render())
    if not shape_asserts_enabled():
        return

    for row in rows:
        assert row.potentially_modified > 0, row.hostname
        modified_pct = 100.0 - row.percent_not_modified
        if row.memory_mb >= 12:
            assert modified_pct >= 90.0, row.hostname
        else:
            assert modified_pct >= 75.0, row.hostname
        assert row.percent_additional_io <= 15.0, row.hostname

    # The small-memory hosts replace more clean pages than the
    # large-memory hosts, matching the paper's memory-size trend.
    small = [r for r in rows if r.memory_mb == 8]
    large = [r for r in rows if r.memory_mb >= 12]
    assert min(r.percent_not_modified for r in small) >= 0
    assert (
        sum(r.percent_not_modified for r in small) / len(small)
        > sum(r.percent_not_modified for r in large) / len(large)
    )
