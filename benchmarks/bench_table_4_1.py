"""Table 4.1: the reference-bit policy comparison.

The full closed-loop matrix: {SLC, WORKLOAD1} x {5, 6, 8 MB} x
{MISS, REF, NOREF}, repeated with distinct seeds in randomised order
(the paper ran five repetitions; ``REPRO_BENCH_REPS`` controls ours).

Shape targets asserted (DESIGN.md):

* REF page-ins within a few percent of MISS, elapsed time never
  better (the flush overhead shows up as time, not faults);
* NOREF page-ins significantly above MISS wherever there is paging
  pressure;
* MISS has the best (or tied) elapsed time at every point.  The
  paper's single exception — NOREF winning by 2% for WORKLOAD1 at
  8 MB — does not reproduce on the scaled machine, where FIFO's extra
  page-ins outweigh the saved maintenance (recorded in
  EXPERIMENTS.md).
"""

import pytest

from repro.analysis.experiments import run_table_4_1

from conftest import (
    bench_reps,
    bench_runner,
    bench_scale,
    bench_workers,
    once,
    shape_asserts_enabled,
)


def test_table_4_1(benchmark, record_result):
    result = {}

    def compute():
        result["rows"], result["table"] = run_table_4_1(
            length_scale=bench_scale(), repetitions=bench_reps(),
            runner=bench_runner(), workers=bench_workers(),
        )
        return result["rows"]

    rows = once(benchmark, compute)
    record_result("table_4_1", result["table"].render())
    if not shape_asserts_enabled():
        return

    cells = {
        (row.workload, row.memory_mb, row.policy): row
        for row in rows
    }
    for workload in ("SLC", "WORKLOAD1"):
        for memory_mb in (5, 6, 8):
            miss = cells[(workload, memory_mb, "MISS")]
            ref = cells[(workload, memory_mb, "REF")]
            noref = cells[(workload, memory_mb, "NOREF")]

            # REF: page-ins comparable to MISS, never meaningfully
            # faster in elapsed time.
            assert 0.90 <= ref.page_ins_pct / 100.0 <= 1.10
            assert ref.elapsed_pct >= 99.0

            # NOREF: more page-ins wherever the point pages at all.
            assert noref.page_ins_pct >= 102.0, (workload, memory_mb)

            # MISS is fastest (small tolerance for run noise).
            assert miss.elapsed_pct <= min(
                ref.elapsed_pct, noref.elapsed_pct
            ) + 1.0

    # The NOREF penalty is largest where paging is heaviest for SLC
    # (the paper's 177% at 5 MB versus 143% at 8 MB).
    assert (
        cells[("SLC", 5, "NOREF")].page_ins_pct
        > cells[("SLC", 6, "NOREF")].page_ins_pct - 5
    )
