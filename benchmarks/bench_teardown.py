"""Extension bench: prompt process teardown versus lazy reclamation.

Sprite frees a dead process's pages at exit; a VM without teardown
leaves them for the page daemon, which cannot know the contents are
garbage and dutifully writes the dirty ones to swap.  This bench runs
a chain of short-lived compile-like jobs both ways and measures the
wasted page-outs and the page-ins their pollution causes.
"""

import pytest

from repro.analysis.tables import Table
from repro.common.rng import DeterministicRng
from repro.machine.config import scaled_config
from repro.machine.simulator import SpurMachine
from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage

from conftest import bench_scale, once, shape_asserts_enabled

NUM_JOBS = 6


def build_jobs(config):
    space_map = AddressSpaceMap(config.page_bytes)
    jobs = []
    rng = DeterministicRng(11)
    for pid in range(NUM_JOBS):
        space = ProcessAddressSpace(
            pid, (pid + 1) * 0x0100_0000, 0x0100_0000, space_map
        )
        image = ProcessImage(space, code_pages=6, heap_pages=420,
                             file_pages=24)
        jobs.append((pid, PhasedProcess(
            image,
            [Phase(
                duration=max(
                    2048, int(60_000 * min(bench_scale(), 1.0))
                ),
                code_hot_pages=3, ws_start=0, ws_pages=170,
                write_frac=0.45, rmw_frac=0.15,
                alloc_pages=300, alloc_write_frac=0.85,
                scan_pages=20, data_skew=0.8,
            )],
            rng.substream(f"job{pid}"),
        )))
    space_map.seal()
    return space_map, jobs


def run_chain(teardown):
    config = scaled_config(memory_ratio=40)
    space_map, jobs = build_jobs(config)
    machine = SpurMachine(config, space_map)
    for pid, job in jobs:
        machine.run(job.accesses())
        if teardown:
            machine.vm.teardown_process(pid)
    return machine


def run_comparison():
    table = Table(
        "Extension: prompt teardown vs lazy reclamation "
        "(6 serial jobs, 5 MB equivalent)",
        ["Mode", "Page-outs", "Page-ins", "Cycles"],
    )
    results = {}
    for label, teardown in (("lazy", False), ("teardown", True)):
        machine = run_chain(teardown)
        results[label] = machine
        table.add_row(label, machine.swap.stats.page_outs,
                      machine.swap.stats.page_ins, machine.cycles)
    saved = (results["lazy"].swap.stats.page_outs
             - results["teardown"].swap.stats.page_outs)
    table.add_note(
        f"teardown avoided {saved} dead-page swap writes"
    )
    return results, table


def test_teardown_ablation(benchmark, record_result):
    results, table = once(benchmark, run_comparison)
    record_result("extension_teardown", table.render())
    lazy = results["lazy"]
    prompt = results["teardown"]
    # Prompt teardown must eliminate dead-page swap writes...
    assert prompt.swap.stats.page_outs < lazy.swap.stats.page_outs
    # ...and never cost more total time.
    assert prompt.cycles <= lazy.cycles
