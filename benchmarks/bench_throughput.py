"""Simulator throughput: the one bench about the simulator itself.

Tracks simulated references per second of host time for the hot-loop
paths (hit-dominated, miss-heavy, and policy-slow-path traffic) with
real pytest-benchmark statistics, so hot-loop regressions show up as
numbers rather than as mysteriously slow experiment suites.

Each trace shape runs in two modes: ``legacy`` feeds the per-tuple
stream to :meth:`SpurMachine.run`; ``chunked`` feeds pre-built flat
``array('q')`` buffers to :meth:`SpurMachine.run_chunks`.  Both
payloads are materialised *outside* the timed region, so the numbers
measure the simulator, not trace generation.
"""

import pytest

from repro.common.params import CacheGeometry, FaultTiming
from repro.machine.config import MachineConfig
from repro.machine.simulator import SpurMachine
from repro.vm.segments import (
    AddressSpaceMap,
    ProcessAddressSpace,
    RegionKind,
)
from repro.workloads.base import READ, WRITE, chunk_accesses

TINY_PAGE = 128
CHUNK_REFS = 4096


def tiny_machine(heap_pages=32):
    space_map = AddressSpaceMap(TINY_PAGE)
    space = ProcessAddressSpace(0, TINY_PAGE, 1 << 24, space_map)
    heap = space.add_region("heap", RegionKind.HEAP,
                            heap_pages * TINY_PAGE)
    space_map.seal()
    config = MachineConfig(
        name="throughput",
        cache=CacheGeometry(size_bytes=1024, block_bytes=32),
        page_bytes=TINY_PAGE,
        memory_bytes=16 * 1024,
        wired_frames=2,
        fault_timing=FaultTiming(page_io=5_000),
        daemon_poll_refs=0,
    )
    return SpurMachine(config, space_map), heap


def hit_trace(heap, count=20_000):
    # Two blocks, all hits after warmup.
    return [(READ, heap + (i & 1) * 32) for i in range(count)]


def conflict_trace(heap, count=20_000):
    # Stride through 3 pages' worth of blocks: heavy miss traffic in
    # the 32-line tiny cache.
    return [
        (READ, heap + (i * 37 % 96) * 32) for i in range(count)
    ]


def write_trace(heap, count=20_000):
    # Read-then-write pairs: the dirty-policy slow path.
    trace = []
    for i in range(count // 2):
        addr = heap + (i * 13 % 64) * 32
        trace.append((READ, addr))
        trace.append((WRITE, addr))
    return trace


TRACES = [
    ("hits", hit_trace),
    ("misses", conflict_trace),
    ("writes", write_trace),
]


@pytest.mark.parametrize("shape,builder", TRACES)
@pytest.mark.parametrize("mode", ["legacy", "chunked"])
def test_throughput(benchmark, shape, builder, mode):
    machine, heap = tiny_machine()
    trace = builder(heap.start)
    machine.run(trace)  # warm the machine once

    if mode == "chunked":
        # Materialise the flat buffers up front: the timed region is
        # pure simulation, the same refs the legacy mode replays.
        chunks = list(chunk_accesses(iter(trace), CHUNK_REFS))
        benchmark(machine.run_chunks, chunks)
    else:
        benchmark(machine.run, trace)
    # Sanity floor: even the slowest path should exceed 50k refs/s
    # of host time on any modern machine.
    refs_per_second = len(trace) / benchmark.stats.stats.mean
    assert refs_per_second > 50_000, (shape, mode)
