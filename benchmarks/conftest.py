"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures,
writes the rendered artefact to ``benchmarks/results/``, asserts the
reproduction targets DESIGN.md lists for it, and reports its wall time
through pytest-benchmark (``--benchmark-only`` runs the full set).

Environment knobs:

``REPRO_BENCH_SCALE``
    Workload length multiplier (default 1.0).  0.1 gives a fast smoke
    pass with weaker statistics.
``REPRO_BENCH_REPS``
    Repetitions for the Table 4.1 matrix (default 2; the paper used 5).
``REPRO_BENCH_WORKERS``
    Worker processes for the experiment matrices (default 1 = serial;
    results are bit-identical at any value, see docs/parallel.md).
``REPRO_BENCH_CACHE``
    Result-cache directory; unset disables caching.  With a warm
    cache a bench re-run simulates only changed cells.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale():
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_reps():
    return int(os.environ.get("REPRO_BENCH_REPS", "2"))


def bench_workers():
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_runner():
    """An ExperimentRunner honouring ``REPRO_BENCH_CACHE``."""
    from repro.machine.runner import ExperimentRunner

    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = None
    if cache_dir:
        from repro.parallel import ResultCache

        cache = ResultCache(cache_dir)
    return ExperimentRunner(cache=cache)


def shape_asserts_enabled():
    """Whether the paper-shape assertions should run.

    Quick smoke passes (``REPRO_BENCH_SCALE`` below 0.5) shorten the
    traces past the point where paging statistics are meaningful; they
    still regenerate every artefact but skip the shape checks.
    """
    return bench_scale() >= 0.5


def write_result(name, text):
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture
def record_result(capsys):
    """Write an artefact and echo it to the terminal."""

    def _record(name, text):
        path = write_result(name, text)
        with capsys.disabled():
            print(f"\n{text}\n  -> {path}")

    return _record


def once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
