#!/usr/bin/env python
"""Standalone hot-loop throughput benchmark (no pytest needed).

Replays the three trace shapes from :mod:`bench_throughput` —
hit-dominated, miss-heavy, and write-slow-path — through both hot
loops and reports simulated references per second of host time:

* ``legacy``  — the per-tuple stream via :meth:`SpurMachine.run`
  (the pre-batching baseline),
* ``chunked`` — pre-built flat buffers via
  :meth:`SpurMachine.run_chunks`,
* ``observed`` — the chunked path with a live
  :class:`~repro.observe.observer.RunObserver` attached (epoch
  sampling on), including attach/detach in the timed region.

The ``chunked`` number doubles as the observation *disabled-path*
measurement: with no observer attached the hot loop carries zero
observation code, so any disabled-path overhead would show up as a
plain chunked regression against the committed baseline.

A fourth ``fleet`` trace times a Table 4.1-shaped campaign (5 dirty
x 3 reference policies x 2 seeds) three ways — serial, workers=N
process pool, and the lockstep fleet (``repro.fleet``) — and records
the fleet's wall-clock edge over the pool (``speedup``) plus its
overhead against plain serial stepping (``serial_ratio``).  Both are
gated: see ``DEFAULT_GATES``.

Payloads are materialised before the timer starts, so the numbers
measure simulation only.  Results land in ``BENCH_throughput.json``
at the repo root by default::

    python benchmarks/run_benchmarks.py
    python benchmarks/run_benchmarks.py --count 5000 \\
        --check BENCH_throughput.json --max-regression 0.3 \\
        --max-observe-overhead 0.25

``--check`` compares the fresh *speedups* (chunked over legacy, a
host-speed-independent ratio) against a committed baseline file.
Each trace shape is gated individually: the baseline's ``gates``
section records an absolute ``min_speedup`` floor per shape, so the
near-1.0 misses and writes ratios are held to "chunked must not fall
behind legacy beyond noise" rather than the fractional tolerance
that only ever bound the hit path.  Shapes without a recorded gate
fall back to ``baseline speedup * (1 - --max-regression)``.
``--max-observe-overhead`` gates the fractional throughput cost of
*enabled* observation (observed vs chunked, same host, same run).
"""

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parents[1]
for entry in (str(ROOT / "src"), str(ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from bench_throughput import TRACES, tiny_machine  # noqa: E402
from repro.observe.observer import RunObserver  # noqa: E402
from repro.workloads.base import chunk_accesses  # noqa: E402

#: Per-shape speedup floors written into fresh baselines.  The hits
#: gate protects the batching win (measured 2.24x); the misses and
#: writes gates protect the batched miss/write resolver (measured
#: >=3x with the columnar classifier; the floors hold on the pure
#: Python fallback too).
DEFAULT_GATES = {
    "hits": {"min_speedup": 1.6},
    "misses": {"min_speedup": 2.5},
    "writes": {"min_speedup": 2.5},
    # The lockstep fleet's two-sided gate.  ``min_speedup`` holds the
    # headline — a Table 4.1-shaped campaign in one fleet process
    # beats the workers=N pool — but only where the vectorized
    # classifier exists, so it is enforced when numpy is importable
    # (the pool's real multi-core parallelism can legitimately win
    # against the pure-Python fallback).  ``min_serial_ratio``
    # (fleet wall vs serial wall) is enforced everywhere, numpy or
    # not: the lockstep machinery may never cost more than 25% over
    # plain serial stepping of the same cells.
    "fleet": {"min_speedup": 1.0, "min_serial_ratio": 0.75},
}


def throughput_samples(fn, payload, refs, repeat):
    """``repeat`` refs-per-second samples of ``fn(payload)``."""
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn(payload)
        samples.append(refs / (time.perf_counter() - started))
    return samples


def observe_overhead(chunked_samples, observed_samples):
    """Fractional cost of enabled observation, noise-robust.

    Medians over the repeats of both variants, clamped at zero: a
    single lucky observed run used to record *negative* overhead,
    leaving room for a real observability regression to hide inside
    the noise band.  The median discards the outlier runs and the
    clamp keeps the committed baseline meaningful as a floor.
    """
    chunked = statistics.median(chunked_samples)
    observed = statistics.median(observed_samples)
    return round(max(0.0, 1.0 - observed / chunked), 3)


def observed_run_chunks(machine, chunks, epoch_refs):
    """One chunked run under a fresh observer (attach in the timing)."""
    observer = RunObserver(epoch_refs=epoch_refs).attach(machine)
    try:
        machine.run_chunks(chunks)
    finally:
        observer.detach()


def fleet_cells(refs_per_cell):
    """A Table 4.1-shaped campaign: 5 dirty x 3 ref x 2 seeds."""
    from repro.machine.config import scaled_config
    from repro.parallel.executor import RunCell
    from repro.policies.costs import DIRTY_POLICY_NAMES
    from repro.policies.reference import REFERENCE_POLICY_NAMES
    from repro.workloads.workload1 import Workload1

    cells = []
    for dirty in DIRTY_POLICY_NAMES:
        for ref in REFERENCE_POLICY_NAMES:
            for seed in (0, 1):
                config = scaled_config(
                    memory_ratio=40, dirty_policy=dirty,
                    reference_policy=ref, name=f"{dirty}-{ref}",
                )
                cells.append(RunCell(
                    config=config, workload=Workload1(),
                    seed=seed, max_references=refs_per_cell,
                    label=f"{dirty}-{ref}/s{seed}",
                ))
    return cells


def run_fleet_bench(refs_per_cell, repeat):
    """Fleet vs serial vs workers=N pool on the same campaign.

    Returns the ``fleet`` trace record: per-variant refs/s plus the
    two gated ratios — ``speedup`` (fleet wall over the workers=N
    process pool's, the headline) and ``serial_ratio`` (fleet wall
    over plain serial stepping, the machinery-overhead guard).  The
    record notes whether numpy (and with it the 2-D classifier) was
    available, so the pool gate can be scoped to hosts where the
    comparison is meaningful.
    """
    from repro.cache.columns import HAVE_NUMPY
    from repro.parallel.executor import execute_cells

    cells = fleet_cells(refs_per_cell)
    # ``workers=1`` would fall back to the serial path inside
    # execute_cells — always field a real multi-process pool.
    workers = max(2, os.cpu_count() or 2)
    total_refs = None

    def wall(**kwargs):
        best = None
        for _ in range(repeat):
            started = time.perf_counter()
            results = execute_cells(cells, **kwargs)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        nonlocal total_refs
        total_refs = sum(result.references for result in results)
        return best

    # One untimed pass so the first timed variant is not charged for
    # cold imports and first-touch allocation.
    execute_cells(cells)
    serial_wall = wall()
    pool_wall = wall(workers=workers)
    fleet_wall = wall(fleet=True)
    return {
        "cells": len(cells),
        "refs_per_cell": refs_per_cell,
        "pool_workers": workers,
        "numpy": HAVE_NUMPY,
        "serial_refs_per_s": round(total_refs / serial_wall),
        "pool_refs_per_s": round(total_refs / pool_wall),
        "fleet_refs_per_s": round(total_refs / fleet_wall),
        "speedup": round(pool_wall / fleet_wall, 3),
        "serial_ratio": round(serial_wall / fleet_wall, 3),
    }


def load_gates(path):
    """The ``gates`` of *path* over the defaults.

    Tuned thresholds in the committed baseline win; shapes the
    baseline predates (a freshly added trace) pick up their
    ``DEFAULT_GATES`` entry instead of silently going ungated.
    """
    gates = dict(DEFAULT_GATES)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            recorded = json.load(handle).get("gates")
    except (OSError, ValueError):
        recorded = None
    if recorded:
        gates.update(recorded)
    return gates


def run_benchmarks(count, repeat, chunk_refs, epoch_refs):
    traces = {}
    for shape, builder in TRACES:
        machine, heap = tiny_machine()
        trace = builder(heap.start, count)
        chunks = list(chunk_accesses(iter(trace), chunk_refs))
        machine.run(trace)  # warm the machine once
        legacy_samples = throughput_samples(
            machine.run, trace, len(trace), repeat
        )
        chunked_samples = throughput_samples(
            machine.run_chunks, chunks, len(trace), repeat
        )
        observed_samples = throughput_samples(
            lambda payload: observed_run_chunks(
                machine, payload, epoch_refs
            ),
            chunks, len(trace), repeat,
        )
        legacy = max(legacy_samples)
        chunked = max(chunked_samples)
        traces[shape] = {
            "legacy_refs_per_s": round(legacy),
            "chunked_refs_per_s": round(chunked),
            "observed_refs_per_s": round(max(observed_samples)),
            "speedup": round(chunked / legacy, 3),
            "observe_overhead": observe_overhead(
                chunked_samples, observed_samples
            ),
        }
    traces["fleet"] = run_fleet_bench(
        max(2000, count // 4), max(2, repeat - 2)
    )
    return {
        "bench": "hot-loop throughput",
        "count": count,
        "repeat": repeat,
        "chunk_refs": chunk_refs,
        "epoch_refs": epoch_refs,
        "traces": traces,
    }


def check_observe_overhead(results, max_overhead):
    """Nonzero if enabled observation costs more than *max_overhead*."""
    failures = []
    for shape, fresh in results["traces"].items():
        if fresh.get("observe_overhead", 0.0) > max_overhead:
            failures.append(
                f"{shape}: observe overhead "
                f"{fresh['observe_overhead']:.1%} above "
                f"{max_overhead:.1%}"
            )
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    return 1 if failures else 0


def check_regression(results, baseline_path, max_regression):
    """Nonzero if any shape's speedup fell below its gate.

    Every trace shape is judged on its own: a recorded
    ``gates[shape]["min_speedup"]`` is an absolute floor; shapes the
    baseline does not gate fall back to the fractional tolerance
    against the baseline speedup.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    gates = baseline.get("gates", {})
    failures = []
    for shape, fresh in results["traces"].items():
        gate = gates.get(shape, {})
        if "min_serial_ratio" in gate:
            floor = gate["min_serial_ratio"]
            if fresh.get("serial_ratio", floor) < floor:
                failures.append(
                    f"{shape}: serial ratio "
                    f"{fresh['serial_ratio']:.3f} below {floor:.3f} "
                    f"(gates.{shape}.min_serial_ratio)"
                )
        if shape == "fleet" and not fresh.get("numpy", True):
            # Pure-Python fallback: the pool's multi-core parallelism
            # may legitimately beat per-member stepping, so only the
            # serial-ratio guard above applies.
            continue
        if "min_speedup" in gate:
            floor = gate["min_speedup"]
            origin = f"gates.{shape}.min_speedup"
        else:
            reference = baseline.get("traces", {}).get(shape)
            if reference is None:
                continue
            floor = reference["speedup"] * (1.0 - max_regression)
            origin = (f"baseline {reference['speedup']:.3f} "
                      f"- {max_regression:.0%}")
        if fresh["speedup"] < floor:
            failures.append(
                f"{shape}: speedup {fresh['speedup']:.3f} below "
                f"{floor:.3f} ({origin})"
            )
    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="hot-loop throughput benchmark"
    )
    parser.add_argument(
        "--out", default=str(ROOT / "BENCH_throughput.json"),
        help="where to write the results JSON",
    )
    parser.add_argument("--count", type=int, default=20_000,
                        help="references per trace shape")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timing repetitions (best is kept)")
    parser.add_argument("--chunk-refs", type=int, default=4096,
                        help="references per flat chunk")
    parser.add_argument("--epoch-refs", type=int, default=4096,
                        help="observation epoch for the observed "
                             "variant")
    parser.add_argument(
        "--max-observe-overhead", type=float, metavar="FRACTION",
        help="fail if enabled observation costs more than this "
             "fraction of chunked throughput (e.g. 0.25)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare speedups against this baseline JSON and exit "
             "nonzero on a regression",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.3,
        help="tolerated fractional speedup drop for --check "
             "(default 0.3)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(args.count, args.repeat,
                             args.chunk_refs, args.epoch_refs)
    # Carry the gate thresholds through a re-measure: they are policy,
    # not measurement, so a fresh run must not clobber tuned values.
    results["gates"] = load_gates(args.check or args.out
                                  or str(ROOT / "BENCH_throughput.json"))
    text = json.dumps(results, indent=2, sort_keys=True)
    print(text)
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"written to {args.out}", file=sys.stderr)
    status = 0
    if args.check:
        status |= check_regression(
            results, args.check, args.max_regression
        )
    if args.max_observe_overhead is not None:
        status |= check_observe_overhead(
            results, args.max_observe_overhead
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
