#!/usr/bin/env python3
"""Measuring like it's 1989: the four-mode counter methodology.

The cache controller's sixteen counters observe one of four event
sets at a time, so the paper's experimenters re-ran each workload
under each mode and stitched the numbers together — which is why the
workloads had to be repeatable scripts.  This example performs that
procedure with :class:`MeasurementCampaign`, shows the mode schedule
needed for the Table 3.3 events, and cross-checks the assembled
result against a single omniscient-simulation run.

Run:
    python examples/counter_methodology.py
"""

import itertools

from repro.counters import MeasurementCampaign
from repro.counters.events import Event, MODE_SETS
from repro.machine.config import scaled_config
from repro.machine.simulator import SpurMachine
from repro.workloads.slc import SlcWorkload

TABLE_3_3_EVENTS = (
    Event.DIRTY_FAULT,
    Event.ZERO_FILL_DIRTY_FAULT,
    Event.DIRTY_BIT_MISS,
    Event.WRITE_TO_READ_FILLED_BLOCK,
    Event.WRITE_MISS_FILL,
)

REFERENCES = 200_000


def main():
    config = scaled_config(memory_ratio=48)
    workload = SlcWorkload(length_scale=0.2)

    campaign = MeasurementCampaign(config, workload)
    modes = campaign.runs_needed_for(TABLE_3_3_EVENTS)
    print("planning: Table 3.3 needs counter mode(s) "
          f"{modes} — {len(modes)} run(s) of the workload")
    for mode in modes:
        names = ", ".join(e.name for e in MODE_SETS[mode][:5])
        print(f"  mode {mode} watches: {names}, ...")

    print(f"\nexecuting one {REFERENCES:,}-reference run per mode "
          f"(all four, for the full picture) ...")
    assembled = campaign.execute(max_references=REFERENCES)

    print("\nassembled hardware measurements:")
    for event in TABLE_3_3_EVENTS:
        print(f"  {event.name:<28} {assembled[event]:>8,}")

    # The cross-check the 1989 team could not do: an omniscient run.
    instance = workload.instantiate(config.page_bytes, seed=0)
    machine = SpurMachine(config, instance.space_map)
    machine.run(itertools.islice(instance.accesses(), REFERENCES))
    mismatches = [
        event for event in TABLE_3_3_EVENTS
        if assembled[event] != machine.counters.read(event)
    ]
    if mismatches:
        print(f"\nMISMATCH on {mismatches} — the workload is not "
              f"repeatable!")
    else:
        print("\ncross-check: four stitched hardware runs agree "
              "exactly with one\nomniscient run — the repeatable-"
              "workload methodology is sound.")


if __name__ == "__main__":
    main()
