#!/usr/bin/env python3
"""Build your own workload and machine: the extension points.

Shows the full user-facing API surface for studying a new scenario:

1. define a process with :class:`ProcessImage` + :class:`Phase`
   scripts (here: a database-like server with an index working set,
   a log writer, and table scans);
2. pick a machine — geometry, memory, dirty/reference policies,
   replacement daemon;
3. run and compare configurations.

Run:
    python examples/custom_workload.py
"""

from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.mix import RoundRobinScheduler
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage


class DatabaseWorkload(Workload):
    """A transaction-processing caricature.

    One server process alternates between index lookups (hot, skewed
    reads over a small region) and checkpoint sweeps (RMW over the
    buffer pool), while a log writer appends sequentially (pure
    write-first pages — dirty-fault territory) and a reporting query
    scans a large mapped file.
    """

    name = "TPC-ish"

    def __init__(self, length_scale=1.0):
        self.length_scale = length_scale

    def instantiate(self, page_bytes, seed=0):
        rng = self._rng(seed)
        space_map = AddressSpaceMap(page_bytes)

        def proc_space(pid):
            return ProcessAddressSpace(
                pid, (pid + 1) * 0x0100_0000, 0x0100_0000, space_map
            )

        def duration(base):
            return max(1024, int(base * self.length_scale))

        server = ProcessImage(
            proc_space(0), code_pages=10, heap_pages=900,
            file_pages=64,
        )
        server_phases = []
        for round_number in range(6):
            server_phases.append(Phase(      # OLTP: hot index reads
                duration=duration(70_000),
                code_hot_pages=5, ws_start=0, ws_pages=160,
                write_frac=0.22, rmw_frac=0.30, data_skew=1.6,
                alloc_pages=8,
            ))
            server_phases.append(Phase(      # checkpoint sweep
                duration=duration(30_000),
                code_hot_pages=3,
                ws_start=(round_number * 120) % (900 - 420),
                ws_pages=420,
                write_frac=0.50, rmw_frac=0.45, data_skew=0.2,
            ))
        log_writer = ProcessImage(
            proc_space(1), code_pages=3, heap_pages=400,
        )
        log_phases = [Phase(
            duration=duration(160_000),
            code_hot_pages=2, ws_start=0, ws_pages=8,
            write_frac=0.85, rmw_frac=0.0,
            alloc_pages=300, alloc_write_frac=1.0, data_skew=2.0,
        )]
        reporter = ProcessImage(
            proc_space(2), code_pages=4, heap_pages=64,
            file_pages=200,
        )
        report_phases = [Phase(
            duration=duration(120_000),
            code_hot_pages=2, ws_start=0, ws_pages=48,
            write_frac=0.10, rmw_frac=0.1, scan_pages=200,
            data_skew=0.8,
        )]

        space_map.seal()
        scheduler = RoundRobinScheduler([
            (PhasedProcess(server, server_phases,
                           rng.substream("server")), 1.0),
            (PhasedProcess(log_writer, log_phases,
                           rng.substream("log")), 0.5),
            (PhasedProcess(reporter, report_phases,
                           rng.substream("report")), 0.5),
        ], quantum=8192)
        return WorkloadInstance(
            self.name, space_map, scheduler.accesses,
            int(500_000 * self.length_scale),
        )


def main():
    runner = ExperimentRunner()
    workload = DatabaseWorkload(length_scale=0.6)

    print(f"custom workload {workload.name!r}: dirty-bit policies at "
          f"the 6 MB-equivalent point\n")
    print(f"{'policy':>10} {'cycles':>12} {'N_ds':>6} {'stale':>6} "
          f"{'page-ins':>9}")
    for policy in ("MIN", "SPUR", "FAULT", "FLUSH"):
        config = scaled_config(memory_ratio=48, dirty_policy=policy)
        result = runner.run(config, DatabaseWorkload(0.6))
        stale = (result.event(Event.EXCESS_FAULT)
                 + result.event(Event.DIRTY_BIT_MISS))
        print(f"{policy:>10} {result.cycles:>12,} "
              f"{result.event(Event.DIRTY_FAULT):>6} {stale:>6} "
              f"{result.page_ins:>9,}")

    print("\nthe log writer's append-only pages fault exactly once "
          "each (pure N_zfod);\nthe checkpoint sweeps generate the "
          "read-then-write traffic that separates\nFAULT from SPUR. "
          "Swap in your own phases to study your own system.")


if __name__ == "__main__":
    main()
