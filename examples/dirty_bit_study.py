#!/usr/bin/env python3
"""The Section 3 dirty-bit study, end to end, in miniature.

Reproduces the paper's methodology on shortened workloads:

1. measure the Table 3.3 event frequencies with the performance
   counters (one run per workload/memory point, SPUR mechanism);
2. feed the measured counts through the Section 3.2 analytic models
   to produce a Table 3.4-style overhead comparison;
3. fit the footnote-3 geometric model to the measured block counts
   and compare its prediction with the measured excess-fault rate.

For the full-length regeneration with paper-vs-measured output, run
``pytest benchmarks/bench_table_3_3.py benchmarks/bench_table_3_4.py
--benchmark-only``.

Run:
    python examples/dirty_bit_study.py [length_scale]
"""

import sys

from repro.analysis.experiments import build_table_3_4, run_table_3_3
from repro.policies.model import ExcessFaultModel


def main():
    length_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2

    print(f"measuring event frequencies (length_scale="
          f"{length_scale}) ...\n")
    rows, table = run_table_3_3(length_scale=length_scale)
    print(table.render())

    print("\napplying the Section 3.2 cost models ...\n")
    _, overhead_tbl = build_table_3_4(rows)
    print(overhead_tbl.render())

    print("\nfootnote-3 geometric model on the measured counts:")
    for row in rows:
        counts = row.counts
        if counts.n_w_miss == 0 or counts.n_ds == counts.n_zfod:
            continue
        model = ExcessFaultModel.from_counts(
            counts.n_w_hit, counts.n_w_miss
        )
        measured = counts.excess_fault_fraction_excluding_zfod
        print(f"  {row.workload:>10} @ {row.memory_mb} MB-eq: "
              f"p_w={model.p_w:.2f}, "
              f"predicted N_ef/N_ds={model.predicted_excess_fraction():.2f}, "
              f"measured={measured:.2f}")


if __name__ == "__main__":
    main()
