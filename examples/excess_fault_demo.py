#!/usr/bin/env python3
"""Figure 3.1, live: stale cached protection causing excess faults.

Walks the exact scenario of the paper's Figure 3.1 on a real simulated
machine under the FAULT (protection-emulation) policy, narrating each
step, then replays it under the SPUR policy to show the same event
becoming a 25-cycle dirty-bit miss instead of a ~1000-cycle fault.

Run:
    python examples/excess_fault_demo.py
"""

from repro.common.params import CacheGeometry, FaultTiming
from repro.common.types import Protection
from repro.counters.events import Event
from repro.machine.config import MachineConfig
from repro.machine.simulator import SpurMachine
from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.vm.segments import RegionKind
from repro.workloads.base import READ, WRITE


def build_machine(dirty_policy):
    space_map = AddressSpaceMap(4096)
    space = ProcessAddressSpace(0, 4096, 1 << 24, space_map)
    heap = space.add_region("heap", RegionKind.HEAP, 16 * 4096)
    space_map.seal()
    config = MachineConfig(
        name="fig31-demo",
        cache=CacheGeometry(size_bytes=128 * 1024, block_bytes=32),
        page_bytes=4096,
        memory_bytes=2 * 1024 * 1024,
        wired_frames=2,
        dirty_policy=dirty_policy,
        fault_timing=FaultTiming(),
        daemon_poll_refs=0,
    )
    return SpurMachine(config, space_map), heap.start


def show_line(machine, vaddr, label):
    index = machine.cache.probe(vaddr)
    if index < 0:
        print(f"    {label}: not cached")
        return
    view = machine.cache.view(index)
    print(f"    {label}: cached, protection={view.protection.name}, "
          f"page-dirty copy={int(view.page_dirty)}")


def run_fault_policy():
    print("=" * 68)
    print("FAULT policy (emulate dirty bits with protection)")
    print("=" * 68)
    machine, page_a = build_machine("FAULT")
    block0, block1 = page_a, page_a + 32

    print("\n1. Read two blocks of Page A while the page is clean.")
    machine.run([(READ, block0), (READ, block1)])
    pte = machine.page_table.entry(page_a >> machine.page_bits)
    print(f"    PTE: protection={pte.protection.name} "
          f"(writable page mapped read-only: the emulation)")
    show_line(machine, block0, "block 0")
    show_line(machine, block1, "block 1")

    print("\n2. Write block 0: protection fault; the handler sets the"
          "\n   software dirty bit and promotes the PTE to read-write.")
    before = machine.cycles
    machine.run([(WRITE, block0)])
    print(f"    cost: {machine.cycles - before - 1} handler cycles")
    print(f"    PTE: protection={pte.protection.name}, "
          f"software dirty={pte.software_dirty}")
    show_line(machine, block0, "block 0")
    show_line(machine, block1, "block 1  (STALE: Figure 3.1)")

    print("\n3. Write block 1: the page is already writable, but the"
          "\n   cached copy still says read-only -> EXCESS FAULT.")
    before = machine.cycles
    machine.run([(WRITE, block1)])
    print(f"    cost: {machine.cycles - before - 1} handler cycles")
    print(f"    excess faults counted: "
          f"{machine.counters.read(Event.EXCESS_FAULT)}")
    return machine


def run_spur_policy():
    print()
    print("=" * 68)
    print("SPUR policy (cached page-dirty bit + dirty-bit miss)")
    print("=" * 68)
    machine, page_a = build_machine("SPUR")
    block0, block1 = page_a, page_a + 32

    machine.run([(READ, block0), (READ, block1)])
    print("\n1. Same two reads; blocks carry a clean page-dirty copy.")
    show_line(machine, block0, "block 0")
    show_line(machine, block1, "block 1")

    print("\n2. Write block 0: PTE clean too -> one necessary dirty"
          " fault.")
    machine.run([(WRITE, block0)])

    print("\n3. Write block 1: cached copy stale, but the hardware"
          "\n   checks the PTE first: already dirty -> DIRTY-BIT MISS.")
    before = machine.cycles
    machine.run([(WRITE, block1)])
    print(f"    cost: {machine.cycles - before - 1} cycles "
          f"(vs ~1000 for the excess fault)")
    print(f"    dirty-bit misses counted: "
          f"{machine.counters.read(Event.DIRTY_BIT_MISS)}")
    return machine


def main():
    fault_machine = run_fault_policy()
    spur_machine = run_spur_policy()
    print()
    print("=" * 68)
    saved = fault_machine.cycles - spur_machine.cycles
    print(f"Same reference stream; SPUR's mechanism saved {saved} "
          f"cycles on one\nstale block. The paper's point: such blocks "
          f"are rare enough that the\nhardware wasn't worth it.")


if __name__ == "__main__":
    main()
