#!/usr/bin/env python3
"""SPUR as it was designed: a shared-memory multiprocessor.

The prototype measured in the paper was a uniprocessor, but two of the
paper's arguments are about multiprocessors:

* software PTE updates (dirty faults) avoid atomic PTE-update
  hardware, because the shared page table is only written by handlers;
* flushing a page "is especially [expensive] in a multiprocessor,
  which must flush the page from all the caches" — the cost that
  sinks the REF policy and the FLUSH alternative as boards are added.

This example builds 1-, 2-, and 4-board systems, runs write-sharing
traffic across them, and measures both effects.

Run:
    python examples/multiprocessor_demo.py
"""

from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.smp import SmpSystem
from repro.vm.segments import (
    AddressSpaceMap,
    ProcessAddressSpace,
    RegionKind,
)
from repro.workloads.base import READ, WRITE


def build_system(num_cpus):
    config = scaled_config(memory_ratio=48, daemon_poll_refs=0)
    space_map = AddressSpaceMap(config.page_bytes)
    space = ProcessAddressSpace(
        0, config.page_bytes, 1 << 26, space_map
    )
    heap = space.add_region("shared-heap", RegionKind.HEAP,
                            256 * config.page_bytes)
    space_map.seal()
    return SmpSystem(config, space_map, num_cpus=num_cpus), heap


def sharing_stream(heap, cpu_index, length=20_000):
    """Reads and writes over a region partially shared across CPUs."""
    refs = []
    for i in range(length):
        if i % 3 == 0:
            # Shared structure: every CPU touches the same 64 pages.
            offset = ((i * 13 + cpu_index) % (64 * 16)) * 32
        else:
            # Private slice per CPU.
            base = (64 + 48 * cpu_index) * 512
            offset = base + ((i * 7) % (48 * 16)) * 32
        kind = WRITE if (i + cpu_index) % 5 == 0 else READ
        refs.append((kind, heap.start + offset))
    return refs


def main():
    print("SPUR multiprocessor scaling demo\n")
    header = (f"{'boards':>7} {'bus txns':>10} {'snoop hits':>11} "
              f"{'ownership xfers':>16} {'dirty faults':>13} "
              f"{'page-flush cycles/page':>23}")
    print(header)
    for num_cpus in (1, 2, 4):
        system, heap = build_system(num_cpus)
        streams = [
            sharing_stream(heap, c) for c in range(num_cpus)
        ]
        system.run_interleaved(streams, quantum=2048)

        # Price one REF-style clear: flush a hot page from all caches.
        flush_cycles = system.flush_page(heap.start)
        print(f"{num_cpus:>7} {system.bus.transactions:>10,} "
              f"{system.bus.snoop_hits:>11,} "
              f"{system.bus.ownership_transfers:>16,} "
              f"{system.counters.read(Event.DIRTY_FAULT):>13,} "
              f"{flush_cycles:>23,}")

    print("\nreadings:")
    print("  - dirty faults do not multiply with boards: the first")
    print("    writer's software fault marks the shared PTE for all")
    print("    (the paper's case for software updates);")
    print("  - page-flush cost grows linearly with boards: every")
    print("    cache must be swept, which is why true reference bits")
    print("    (flush-on-clear) age badly on a multiprocessor.")


if __name__ == "__main__":
    main()
