#!/usr/bin/env python3
"""Observability tour: counter time series, trace events, reports.

The prototype exposed its counters only as end-of-run totals; the
paper's Figure 3.2-style questions (how does fault behaviour evolve
over a run?) needed repeated manual runs.  The observe layer answers
them in one pass: sample the counter bank every ``epoch_refs``
references, stream structured trace events to a JSONL sink, and
summarise the lot — all without perturbing the simulation, so the
observed RunResult is bit-identical to an unobserved one.

Run:
    python examples/observability_demo.py
"""

import tempfile

from repro.api import (
    Event,
    ExperimentRunner,
    JsonlSink,
    RunOptions,
    SlcWorkload,
    Workload1,
    read_trace,
    render_report,
    scaled_config,
    summarize_trace,
)


def main():
    config = scaled_config(memory_ratio=48, dirty_policy="SPUR",
                           reference_policy="MISS")

    with tempfile.NamedTemporaryFile(suffix=".jsonl") as handle:
        # One options object carries every execution knob: sample the
        # counters every 32k references and stream trace events.
        options = RunOptions(
            observe=True,
            epoch_refs=32_768,
            trace_sink=JsonlSink(handle.name),
        )
        runner = ExperimentRunner(options=options)

        print("running two observed workloads ...")
        for workload in (SlcWorkload(length_scale=0.1),
                         Workload1(length_scale=0.1)):
            result = runner.run(config, workload,
                                label=workload.name)
            obs = result.observation

            # The time series: cumulative counter snapshots on the
            # (alignment-rounded) epoch cadence.
            print(f"\n  {workload.name}: {len(obs.samples)} samples "
                  f"every {obs.epoch_refs:,} references")
            series = obs.series(Event.DIRTY_FAULT)
            head = ", ".join(
                f"{refs // 1000}k:{count}"
                for refs, count in series[:5]
            )
            print(f"    dirty faults (cumulative)  {head}, ...")

            # The phase profile: where the host time went.
            for phase, seconds in sorted(obs.phases.items()):
                print(f"    {phase:<10} {seconds:8.3f}s", end="")
                if phase == "simulate":
                    print(f"  ({obs.refs_per_second():,.0f} refs/s)",
                          end="")
                print()

        options.trace_sink.close()

        # The trace file is the durable record: replayable into a
        # summary table (also `repro observe report <trace>`).
        events = read_trace(handle.name)
        print(f"\ntrace holds {len(events)} events; summary:\n")
        print(render_report(summarize_trace(events)))


if __name__ == "__main__":
    main()
