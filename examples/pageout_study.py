#!/usr/bin/env python3
"""The Section 3.3 page-out study (Table 3.5), in miniature.

Simulates the six Sprite development-machine profiles and asks the
paper's question: of the writable pages replaced, how many were
actually modified — i.e. how much paging I/O do dirty bits really
save on big-memory machines?

Run:
    python examples/pageout_study.py [length_scale]
"""

import sys

from repro.api import run_table_3_5


def main():
    length_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3

    print(f"simulating six development machines "
          f"(length_scale={length_scale}) ...\n")
    rows, table = run_table_3_5(length_scale=length_scale)
    print(table.render())

    print("\nthe paper's reading:")
    for row in rows:
        modified_pct = 100.0 - row.percent_not_modified
        print(f"  {row.hostname:>10} ({row.memory_mb:>2} MB): "
              f"{modified_pct:.0f}% of writable pages were dirty at "
              f"replacement; dropping dirty bits would add "
              f"{row.percent_additional_io:.1f}% paging I/O")
    big = [r for r in rows if r.memory_mb >= 12]
    if all(100 - r.percent_not_modified >= 90 for r in big):
        print("\n  => at 12 MB and beyond, 90%+ of writable pages are "
              "modified anyway:\n     dirty bits buy almost nothing, "
              "and the benefit shrinks as memory grows.")


if __name__ == "__main__":
    main()
