#!/usr/bin/env python3
"""Quickstart: simulate one workload on the SPUR machine.

Builds the scaled SPUR configuration at the paper's 6 MB-equivalent
memory point, runs a shortened SLC (Lisp compiler) workload, and
prints the headline measurements the paper's analysis consumes —
exactly what you would read off the prototype's performance counters.

Run:
    python examples/quickstart.py
"""

from repro.api import Event, ExperimentRunner, SlcWorkload, scaled_config


def main():
    # A machine: 16 KB direct-mapped virtual cache, 512-byte pages,
    # memory at 48x the cache size (the 6 MB-equivalent point), the
    # SPUR dirty-bit mechanism, and MISS-approximated reference bits.
    config = scaled_config(
        memory_ratio=48,
        dirty_policy="SPUR",
        reference_policy="MISS",
    )

    # A workload: the SPUR Lisp compiler stand-in, shortened 4x for a
    # quick demonstration (drop length_scale for the full run).
    workload = SlcWorkload(length_scale=0.25)

    print(f"simulating {workload.name} on {config.name} ...")
    result = ExperimentRunner().run(config, workload)

    print(f"\n  references        {result.references:>12,}")
    print(f"  cycles            {result.cycles:>12,}")
    print(f"  simulated elapsed {result.elapsed_seconds:>11.2f}s "
          f"(at the prototype's 150 ns cycle)")
    print(f"  cycles/reference  {result.cycles_per_reference:>12.2f}")

    print("\n  virtual-memory activity")
    print(f"    page-ins        {result.page_ins:>10,}")
    print(f"    page-outs       {result.page_outs:>10,}")
    print(f"    zero-fills      {result.zero_fills:>10,}")

    print("\n  dirty-bit events (the paper's Table 3.3 quantities)")
    n_ds = result.event(Event.DIRTY_FAULT)
    n_zfod = result.event(Event.ZERO_FILL_DIRTY_FAULT)
    n_dm = result.event(Event.DIRTY_BIT_MISS)
    w_hit = result.event(Event.WRITE_TO_READ_FILLED_BLOCK)
    w_miss = result.event(Event.WRITE_MISS_FILL)
    print(f"    N_ds   (necessary dirty faults)   {n_ds:>8,}")
    print(f"    N_zfod (on zero-fill pages)       {n_zfod:>8,}")
    print(f"    N_dm   (dirty-bit misses = N_ef)  {n_dm:>8,}")
    print(f"    N_w-hit / N_w-miss                {w_hit:>8,} /"
          f" {w_miss:,}")
    if n_ds:
        print(f"    excess-fault fraction             "
              f"{n_dm / n_ds:>8.1%}")

    print("\n  reference-bit events")
    print(f"    reference faults  "
          f"{result.event(Event.REFERENCE_FAULT):>8,}")
    print(f"    daemon scans      "
          f"{result.event(Event.DAEMON_PAGE_SCAN):>8,}")


if __name__ == "__main__":
    main()
