#!/usr/bin/env python3
"""The Section 4 reference-bit study (Table 4.1), in miniature.

Runs both workloads at the three memory points under the MISS, REF,
and NOREF policies and prints the page-in and elapsed-time comparison
beside the paper's published values.

Run:
    python examples/reference_bit_study.py [length_scale] [repetitions]
"""

import sys

from repro.analysis.experiments import run_table_4_1


def main():
    length_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    print(f"running the reference-bit matrix "
          f"(length_scale={length_scale}, "
          f"repetitions={repetitions}) ...\n"
          f"18 simulation runs per repetition; this takes a while at "
          f"full scale.\n")
    rows, table = run_table_4_1(
        length_scale=length_scale, repetitions=repetitions
    )
    print(table.render())

    print("\nreading the result like the paper does:")
    by_cell = {(r.workload, r.memory_mb, r.policy): r for r in rows}
    for workload in ("SLC", "WORKLOAD1"):
        for memory_mb in (5, 6, 8):
            ref = by_cell[(workload, memory_mb, "REF")]
            noref = by_cell[(workload, memory_mb, "NOREF")]
            print(f"  {workload:>10} @ {memory_mb} MB-eq: "
                  f"REF pays {ref.elapsed_pct - 100:+.0f}% time for "
                  f"{ref.page_ins_pct - 100:+.0f}% page-ins; "
                  f"NOREF pays {noref.page_ins_pct - 100:+.0f}% "
                  f"page-ins to save all maintenance")


if __name__ == "__main__":
    main()
