#!/usr/bin/env python3
"""Watch the runtime sanitizer catch a planted simulator bug.

The sanitizer (``repro.sanitize``) validates the model's structural
invariants while a simulation runs: the cache's nine parallel tag
arrays, Berkeley Ownership's global single-owner rule, the dirty-bit
policy's legal staleness directions, and the VM system's frame
accounting.  ``docs/invariants.md`` catalogues all of them.

This demo runs a healthy workload under the sanitizer, then corrupts
one tag-array slot the way a buggy code path would — marking a cached
block dirty without taking ownership — and shows the structured
``InvariantViolation`` that pinpoints the breach on the very next
reference to touch the line.

Run:
    python examples/sanitizer_demo.py
"""

import itertools

from repro.machine.config import scaled_config
from repro.machine.simulator import SpurMachine
from repro.sanitize import InvariantViolation, Sanitizer
from repro.workloads.base import READ
from repro.workloads.slc import SlcWorkload


def build():
    config = scaled_config(memory_ratio=48)
    instance = SlcWorkload().instantiate(config.page_bytes, seed=11)
    return SpurMachine(config, instance.space_map), instance


def main():
    machine, instance = build()
    sanitizer = Sanitizer(mode="full")
    sanitizer.attach(machine)

    print("1. A healthy run under the full-mode sanitizer")
    print("   ------------------------------------------")
    stream = instance.accesses()
    machine.run(itertools.islice(stream, 50_000))
    sanitizer.check_now()
    print(f"   {machine.references:,} references, "
          f"{sanitizer.line_checks:,} per-reference line checks, "
          f"{sanitizer.sweeps} full sweeps: no violations\n")

    print("2. Planting a bug: dirty block, ownership never acquired")
    print("   -----------------------------------------------------")
    cache = machine.cache
    index = next(iter(cache.resident_lines()))
    vaddr = cache.line_vaddr[index]
    # Berkeley Ownership only permits dirty data in the OWNED states;
    # a write path that set block-dirty without the ownership
    # transaction would corrupt exactly like this.
    cache.block_dirty[index] = True
    cache.state[index] = 1                 # UNOWNED
    print(f"   corrupted line {index} (block {vaddr:#x}): "
          f"block_dirty=True, state=UNOWNED\n")

    print("3. The next reference to the line trips the sanitizer")
    print("   ---------------------------------------------------")
    try:
        machine.run([(READ, vaddr)])
        sanitizer.check_now()
    except InvariantViolation as violation:
        print("   InvariantViolation:")
        for line in str(violation).splitlines():
            print(f"     {line}")
        print(f"\n   invariant id: {violation.invariant}")
        print(f"   ref index:    {violation.ref_index}")
        return 0
    raise SystemExit("the sanitizer missed the planted corruption")


if __name__ == "__main__":
    raise SystemExit(main())
