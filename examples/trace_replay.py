#!/usr/bin/env python3
"""Trace-driven simulation: record once, replay under every policy.

Section 2 of the paper laments that trace-driven simulation "is
limited by the length of the traces" it could store in 1989.  Today a
captured stream is cheap, and it buys the methodological gold
standard the paper wanted: *every* policy sees the bit-identical
reference sequence, so differences are pure policy effects with zero
workload noise.

Run:
    python examples/trace_replay.py [references]
"""

import sys
import tempfile

from repro.api import (
    Event,
    ExperimentRunner,
    RecordedWorkload,
    SlcWorkload,
    record_workload,
    scaled_config,
)


def main():
    max_references = (
        int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
    )
    config = scaled_config(memory_ratio=48)

    with tempfile.NamedTemporaryFile(suffix=".trace") as handle:
        print(f"recording SLC ({max_references:,} references) ...")
        count = record_workload(
            SlcWorkload(length_scale=0.5), config.page_bytes,
            handle.name, seed=0, max_references=max_references,
        )
        replay = RecordedWorkload(handle.name)
        print(f"captured {count:,} references "
              f"({replay.page_bytes}-byte pages)\n")

        runner = ExperimentRunner()
        print(f"{'dirty policy':>14} {'cycles':>12} {'vs MIN':>7} "
              f"{'N_ds':>6} {'N_ef/N_dm':>10} {'checks':>7}")
        baseline = None
        for policy in ("MIN", "SPUR", "PROTMISS", "FAULT", "FLUSH",
                       "WRITE"):
            result = runner.run(
                config.with_policies(dirty=policy), replay
            )
            replay = RecordedWorkload(handle.name)  # fresh instance
            if baseline is None:
                baseline = result.cycles
            stale = (
                result.event(Event.EXCESS_FAULT)
                + result.event(Event.DIRTY_BIT_MISS)
            )
            print(f"{policy:>14} {result.cycles:>12,} "
                  f"{result.cycles / baseline:>7.4f} "
                  f"{result.event(Event.DIRTY_FAULT):>6} "
                  f"{stale:>10} "
                  f"{result.event(Event.DIRTY_CHECK):>7}")

    print("\nwith an identical stream, every cycle difference above "
          "is the policy's\ndoing — the comparison the paper could "
          "only approximate with repeatable\nscripts and five "
          "repetitions.")


if __name__ == "__main__":
    main()
