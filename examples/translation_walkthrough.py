#!/usr/bin/env python3
"""In-cache address translation, step by step.

SPUR has no TLB: page-table entries live in the global virtual space
and compete with data for the unified cache [Wood86].  This example
walks single references through the machine and shows what the
translation engine does on each: PTE cache hits, second-level lookups,
wired-table memory fetches, and the conflict case where a PTE fill
evicts a data block.

Run:
    python examples/translation_walkthrough.py
"""

from repro.common.params import CacheGeometry, FaultTiming
from repro.counters.events import Event
from repro.machine.config import MachineConfig
from repro.machine.simulator import SpurMachine
from repro.vm.segments import (
    AddressSpaceMap,
    ProcessAddressSpace,
    RegionKind,
)
from repro.workloads.base import READ


def build_machine():
    space_map = AddressSpaceMap(4096)
    space = ProcessAddressSpace(0, 4096, 1 << 26, space_map)
    heap = space.add_region("heap", RegionKind.HEAP, 4096 * 4096)
    space_map.seal()
    config = MachineConfig(
        name="walkthrough",
        cache=CacheGeometry(size_bytes=128 * 1024, block_bytes=32),
        page_bytes=4096,
        memory_bytes=8 * 1024 * 1024,
        wired_frames=2,
        daemon_poll_refs=0,
    )
    return SpurMachine(config, space_map), heap


def snapshot(machine):
    counters = machine.counters
    return {
        "translations": counters.read(Event.TRANSLATION),
        "pte_hits": counters.read(Event.PTE_CACHE_HIT),
        "pte_misses": counters.read(Event.PTE_CACHE_MISS),
        "second_memory": counters.read(
            Event.SECOND_LEVEL_MEMORY_ACCESS
        ),
    }


def describe(machine, before, after, cycles):
    delta = {key: after[key] - before[key] for key in after}
    if delta["translations"] == 0:
        print(f"    cache hit: no translation, {cycles} cycle(s)")
        return
    if delta["pte_hits"]:
        print(f"    miss -> PTE found in cache (3-cycle check), "
              f"{cycles} cycles total")
    elif delta["second_memory"]:
        print(f"    miss -> PTE not cached -> second-level PTE "
              f"fetched from wired memory\n    -> first-level PTE "
              f"block fetched and cached, {cycles} cycles total")
    else:
        print(f"    miss -> PTE not cached -> second-level PTE was "
              f"cached\n    -> first-level PTE block fetched, "
              f"{cycles} cycles total")


def reference(machine, vaddr, label):
    print(f"\n{label}")
    before = snapshot(machine)
    start = machine.cycles
    machine.run([(READ, vaddr)])
    describe(machine, before, snapshot(machine),
             machine.cycles - start)


def main():
    machine, heap = build_machine()
    layout = machine.page_table.layout
    base = heap.start

    print("SPUR in-cache translation walkthrough")
    print(f"  PTE for vpn v lives at {layout.pte_base:#x} + 4*v "
          f"(shift-and-concatenate)")

    reference(machine, base,
              "1. First touch of page 0: cold everything.")
    reference(machine, base + 8,
              "2. Same block again: pure cache hit.")
    reference(machine, base + 64,
              "3. Different block, same page: data miss, PTE cached.")
    reference(machine, base + 3 * 4096,
              "4. Nearby page: its PTE shares the cached PTE block\n"
              "   (eight 4-byte PTEs per 32-byte block — the 'very\n"
              "   large TLB' effect).")
    reference(machine, base + 4000 * 4096,
              "5. Far page: PTE block not cached; the wired second\n"
              "   level saves the day.  (First touch also takes a\n"
              "   page fault and a zero fill, hence the big total.)")

    pte_vaddr = layout.pte_vaddr(base >> 12)
    print("\nwhere translation state lives in the cache:")
    index = machine.cache.probe(pte_vaddr)
    if index >= 0:
        print(f"  the PTE block for page 0 sits in cache line {index} "
              f"alongside ordinary\n  data; a conflicting fill can "
              f"evict it, and vice versa — that\n  competition is "
              f"in-cache translation's defining trade-off.")
    else:
        print("  the PTE block for page 0 has already been EVICTED by "
              "later traffic —\n  PTE blocks compete with data for "
              "frames, which is in-cache\n  translation's defining "
              "trade-off.")


if __name__ == "__main__":
    main()
