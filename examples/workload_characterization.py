#!/usr/bin/env python3
"""Characterise the synthetic workloads (are they what we claim?).

DESIGN.md argues the synthetic WORKLOAD1 and SLC preserve the memory
behaviour the paper describes.  This example measures that behaviour
directly from the reference streams — mix, footprint, working sets,
write-first allocation, reuse locality — with no simulator involved.

Run:
    python examples/workload_characterization.py [references]
"""

import sys

from repro.analysis.tracestats import analyze_trace
from repro.workloads.slc import SlcWorkload
from repro.workloads.workload1 import Workload1

PAGE_BYTES = 512  # the default scaled geometry


def main():
    max_references = (
        int(sys.argv[1]) if len(sys.argv) > 1 else 300_000
    )
    for workload in (Workload1(length_scale=0.5),
                     SlcWorkload(length_scale=0.5)):
        instance = workload.instantiate(PAGE_BYTES, seed=0)
        stats = analyze_trace(
            instance.accesses(),
            page_bytes=PAGE_BYTES,
            max_references=max_references,
            window=32_768,
        )
        print(f"=== {workload.name} "
              f"(first {stats.references:,} references)")
        for line in stats.summary_lines():
            print(f"  {line}")
        cache_pages = 16 * 1024 // PAGE_BYTES
        ws = stats.mean_working_set_pages
        print(f"  -> working set is {ws / cache_pages:.0f}x the "
              f"32-page cache: plenty of misses for the MISS policy "
              f"to see,")
        print(f"     and {stats.write_first_fraction:.0%} of pages "
              f"are written before read: the zero-fill-fault "
              f"population.")
        print()


if __name__ == "__main__":
    main()
