"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs work on environments without the ``wheel`` package (legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
