"""repro: a reproduction of Wood & Katz, "Supporting Reference and
Dirty Bits in SPUR's Virtual Address Cache" (ISCA 1989).

The package simulates the SPUR workstation's memory system — a
virtually addressed direct-mapped unified cache with in-cache address
translation, the Berkeley Ownership coherency protocol, on-chip
performance counters, and a Sprite-like virtual-memory system — and
uses it to re-evaluate the paper's dirty-bit alternatives (FAULT,
FLUSH, SPUR, WRITE, MIN) and reference-bit policies (MISS, REF,
NOREF).

Quickstart::

    from repro import ExperimentRunner, scaled_config, Workload1

    config = scaled_config(memory_ratio=48, dirty_policy="FAULT",
                           reference_policy="MISS")
    result = ExperimentRunner().run(config, Workload1(length_scale=0.1))
    print(result.page_ins, result.elapsed_seconds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.  The full
curated import surface (execution options, observability, campaign
errors, experiment drivers) lives in :mod:`repro.api`.
"""

from repro.common import (
    Access,
    AccessKind,
    DeterministicRng,
    Protection,
    ReproError,
)
from repro.counters import Event, PerformanceCounters
from repro.machine import (
    ExperimentRunner,
    MachineConfig,
    RunResult,
    SmpSystem,
    SpurMachine,
    paper_config,
    scaled_config,
)
from repro.options import RunOptions
from repro.parallel import (
    CampaignError,
    CellFailure,
    ResultCache,
    RunCell,
    execute_cells,
)
from repro.policies import (
    EventCounts,
    ExcessFaultModel,
    TimeParameters,
    make_dirty_policy,
    make_reference_policy,
    overhead,
    overhead_table,
)
from repro.workloads import (
    DEV_SYSTEM_PROFILES,
    DevSystemWorkload,
    SlcWorkload,
    Workload1,
    workload_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AccessKind",
    "CampaignError",
    "CellFailure",
    "DEV_SYSTEM_PROFILES",
    "DeterministicRng",
    "DevSystemWorkload",
    "Event",
    "EventCounts",
    "ExcessFaultModel",
    "ExperimentRunner",
    "MachineConfig",
    "PerformanceCounters",
    "Protection",
    "ReproError",
    "ResultCache",
    "RunCell",
    "RunOptions",
    "RunResult",
    "execute_cells",
    "SmpSystem",
    "SlcWorkload",
    "SpurMachine",
    "TimeParameters",
    "Workload1",
    "__version__",
    "make_dirty_policy",
    "make_reference_policy",
    "overhead",
    "overhead_table",
    "paper_config",
    "scaled_config",
    "workload_by_name",
]
