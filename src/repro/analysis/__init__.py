"""Experiment drivers, statistics, paper data, and table rendering.

One driver per paper table/figure (:mod:`repro.analysis.experiments`),
the paper's published numbers for comparison
(:mod:`repro.analysis.paper_data`), small-sample statistics for the
repetition-based experiments (:mod:`repro.analysis.stats`), and ASCII
table rendering in the paper's layouts (:mod:`repro.analysis.tables`).
"""

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import Table, format_ratio
from repro.analysis.charts import bar_chart, line_plot, sparkline
from repro.analysis.latex import table_to_latex
from repro.analysis.sweeps import (
    SweepDriver,
    associativity_axis,
    cache_size_axis,
)
from repro.analysis.tracestats import TraceStatistics, analyze_trace
from repro.analysis.report import generate_report
from repro.analysis import paper_data
from repro.analysis.experiments import (
    Table33Row,
    Table35Row,
    Table41Row,
    build_table_3_4,
    run_table_3_3,
    run_table_3_5,
    run_table_4_1,
)

__all__ = [
    "Summary",
    "SweepDriver",
    "Table",
    "Table33Row",
    "Table35Row",
    "Table41Row",
    "TraceStatistics",
    "analyze_trace",
    "associativity_axis",
    "bar_chart",
    "cache_size_axis",
    "generate_report",
    "line_plot",
    "sparkline",
    "build_table_3_4",
    "format_ratio",
    "paper_data",
    "run_table_3_3",
    "run_table_3_5",
    "run_table_4_1",
    "summarize",
    "table_to_latex",
]
