"""Terminal charts for experiment output.

The benches and examples are terminal-first; these helpers render
horizontal bar charts and multi-series line plots in plain ASCII so
sweeps and comparisons read at a glance in logs and
``benchmarks/results/`` artefacts.
"""

#: Glyph used for bars.
_BAR = "#"
#: Glyphs cycled over line-plot series.
_SERIES_MARKS = "ox+*@%"


def bar_chart(items, width=48, title=None):
    """Render labelled values as horizontal bars.

    Parameters
    ----------
    items:
        Sequence of ``(label, value)`` pairs; values must be >= 0.
    width:
        Maximum bar length in characters.
    """
    items = list(items)
    if not items:
        return title or ""
    peak = max(value for _, value in items)
    if peak < 0 or any(value < 0 for _, value in items):
        raise ValueError("bar_chart takes non-negative values")
    label_width = max(len(str(label)) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        length = int(round(width * value / peak)) if peak else 0
        lines.append(
            f"{str(label):>{label_width}} | "
            f"{_BAR * length}{' ' * (width - length)} {value:g}"
        )
    return "\n".join(lines)


def line_plot(series, width=60, height=16, title=None,
              x_label="", y_label=""):
    """Render one or more ``(x, y)`` series on a character grid.

    Parameters
    ----------
    series:
        ``{name: [(x, y), ...]}``; each series gets its own mark.
    width, height:
        Plot area size in characters.
    """
    points = [
        (x, y) for data in series.values() for x, y in data
    ]
    if not points:
        return title or ""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1
    y_span = (y_high - y_low) or 1

    grid = [[" "] * width for _ in range(height)]
    for index, (name, data) in enumerate(series.items()):
        mark = _SERIES_MARKS[index % len(_SERIES_MARKS)]
        for x, y in data:
            column = int((x - x_low) / x_span * (width - 1))
            row = int((y - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = mark

    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_high:>10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_low:>10.4g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_low:<.4g}"
        + " " * max(1, width - 12) + f"{x_high:>.4g}"
    )
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':12}{legend}")
    return "\n".join(lines)


def sparkline(values, levels=" .:-=+*#%@"):
    """A one-line trend: map values onto glyph intensities."""
    values = list(values)
    if not values:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1
    top = len(levels) - 1
    return "".join(
        levels[int((value - low) / span * top)] for value in values
    )
