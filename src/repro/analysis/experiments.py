"""One driver per paper table.

Each ``run_table_*`` function executes the simulations for one paper
table and returns structured rows plus a rendered ASCII table that
places measured values beside the paper's published ones.  The benches
in ``benchmarks/`` are thin wrappers over these drivers, so the same
code paths are exercised by tests (at tiny ``length_scale``) and by
the full regeneration runs.
"""

from dataclasses import dataclass

from repro.analysis import paper_data
from repro.analysis.stats import paired, summarize
from repro.analysis.tables import Table
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.policies.costs import (
    DIRTY_POLICY_NAMES,
    EventCounts,
    overhead_table,
)
from repro.policies.reference import REFERENCE_POLICY_NAMES
from repro.workloads.base import DEFAULT_CHUNK_REFS
from repro.workloads.devsystems import (
    DEV_SYSTEM_PROFILES,
    DevSystemWorkload,
)
from repro.workloads.slc import SlcWorkload
from repro.workloads.workload1 import Workload1

#: (paper MB label, cache-ratio) points of the measurement grid.
MEMORY_POINTS = paper_data.MEMORY_POINTS


def _standard_workloads(length_scale):
    return (
        ("SLC", SlcWorkload(length_scale=length_scale)),
        ("WORKLOAD1", Workload1(length_scale=length_scale)),
    )


def _driver_runner(chunk_refs, options):
    """Build a table driver's default runner.

    ``options`` (the documented API) wins over the legacy
    ``chunk_refs`` keyword when both are supplied.
    """
    if options is not None:
        return ExperimentRunner(options=options)
    return ExperimentRunner(chunk_refs=chunk_refs)


# ---------------------------------------------------------------------------
# Table 3.3 — event frequencies
# ---------------------------------------------------------------------------

@dataclass
class Table33Row:
    """One measured (workload, memory) point of Table 3.3."""

    workload: str
    memory_mb: int
    counts: EventCounts
    elapsed_seconds: float
    references: int

    @classmethod
    def from_run(cls, workload, memory_mb, result):
        counts = EventCounts(
            n_ds=result.event(Event.DIRTY_FAULT),
            n_zfod=result.event(Event.ZERO_FILL_DIRTY_FAULT),
            n_ef=result.event(Event.DIRTY_BIT_MISS),
            n_w_hit=result.event(Event.WRITE_TO_READ_FILLED_BLOCK),
            n_w_miss=result.event(Event.WRITE_MISS_FILL),
        )
        return cls(
            workload=workload,
            memory_mb=memory_mb,
            counts=counts,
            elapsed_seconds=result.elapsed_seconds,
            references=result.references,
        )


def run_table_3_3(length_scale=1.0, scale=8, runner=None, seed=0,
                  max_references=None, workers=None,
                  chunk_refs=DEFAULT_CHUNK_REFS, options=None):
    """Measure the Table 3.3 event frequencies.

    One run per (workload, memory) point with the SPUR dirty-bit
    mechanism and MISS reference bits — the prototype's configuration,
    which is what the paper measured.  Returns ``(rows, table)``.

    ``workers``/``chunk_refs`` are the legacy keywords; pass
    ``options`` (a :class:`~repro.options.RunOptions`) for the full
    execution knob set, including observation.
    """
    runner = runner or _driver_runner(chunk_refs, options)
    points = []
    for name, workload in _standard_workloads(length_scale):
        for memory_mb, ratio in MEMORY_POINTS:
            config = scaled_config(
                memory_ratio=ratio, scale=scale,
                dirty_policy="SPUR", reference_policy="MISS",
            )
            # Recipes are reusable; the runner instantiates a fresh
            # stream (and space map) per run.
            points.append((name, memory_mb, config, workload))
    results = runner.run_many(
        [
            (config, workload, seed, max_references)
            for _, _, config, workload in points
        ],
        workers=workers,
        options=options,
        labels=[
            f"{name}/{memory_mb}MB" for name, memory_mb, _, _ in points
        ],
    )
    rows = [
        Table33Row.from_run(name, memory_mb, result)
        for (name, memory_mb, _, _), result in zip(points, results)
    ]
    return rows, render_table_3_3(rows)


def render_table_3_3(rows):
    """Render measured Table 3.3 rows beside the paper's."""
    table = Table(
        "Table 3.3: Event Frequencies (measured vs paper)",
        ["Workload", "Mem (MB)", "N_ds", "N_zfod", "N_ef=N_dm",
         "N_w-hit", "N_w-miss", "Elapsed (s)"],
    )
    for row in rows:
        counts = row.counts
        paper = paper_data.TABLE_3_3.get((row.workload, row.memory_mb))
        table.add_row(
            row.workload, row.memory_mb, counts.n_ds, counts.n_zfod,
            counts.n_ef, counts.n_w_hit, counts.n_w_miss,
            f"{row.elapsed_seconds:.0f}",
        )
        if paper is not None:
            paper_counts, paper_elapsed = paper
            table.add_row(
                "  (paper)", row.memory_mb, paper_counts.n_ds,
                paper_counts.n_zfod, paper_counts.n_ef,
                paper_counts.n_w_hit, paper_counts.n_w_miss,
                paper_elapsed,
            )
        table.add_separator()
    table.add_note(
        "Measured on the geometry-scaled machine with a ~1000x shorter "
        "trace; ratios (excess/necessary, zero-fill share, w-hit "
        "fraction) are the reproduction target, not absolute counts."
    )
    return table


# ---------------------------------------------------------------------------
# Table 3.4 — overhead of dirty-bit alternatives
# ---------------------------------------------------------------------------

def build_table_3_4(rows=None, times=None, exclude_zero_fill=True,
                    title_suffix=""):
    """Apply the Section 3.2 cost models to event counts.

    With ``rows=None`` the paper's published Table 3.3 counts are used,
    which regenerates the published Table 3.4 exactly and validates the
    model implementation; passing measured :class:`Table33Row` objects
    produces the scaled-machine version.  Returns ``(results, table)``
    where results maps (workload, MB) to {policy: (cycles, ratio)}.
    """
    times = times or paper_data.TABLE_3_2
    if rows is None:
        points = [
            (workload, memory_mb, counts)
            for (workload, memory_mb), (counts, _)
            in sorted(paper_data.TABLE_3_3.items())
        ]
        source = "paper Table 3.3 counts"
    else:
        points = [
            (row.workload, row.memory_mb, row.counts) for row in rows
        ]
        source = "measured counts"

    results = {}
    table = Table(
        "Table 3.4: Overhead of Dirty Bit Alternatives "
        f"(zero-fills {'excluded' if exclude_zero_fill else 'included'};"
        f" {source}){title_suffix}",
        ["Workload", "Mem (MB)"] + [
            f"{name}" for name in DIRTY_POLICY_NAMES
        ],
    )
    for workload, memory_mb, counts in points:
        overheads = overhead_table(counts, times, exclude_zero_fill)
        results[(workload, memory_mb)] = overheads
        table.add_row(
            workload, memory_mb, *[
                f"{cycles / 1e6:.3g}M ({ratio:.2f})"
                for cycles, ratio in (
                    overheads[name] for name in DIRTY_POLICY_NAMES
                )
            ]
        )
    table.add_note("cells: total cycles (ratio to MIN)")
    return results, table


# ---------------------------------------------------------------------------
# Table 3.5 — page-out results from development systems
# ---------------------------------------------------------------------------

@dataclass
class Table35Row:
    """One development-system measurement."""

    hostname: str
    memory_mb: int
    uptime_hours: int
    page_ins: int
    potentially_modified: int
    not_modified: int

    @property
    def percent_not_modified(self):
        if not self.potentially_modified:
            return 0.0
        return 100.0 * self.not_modified / self.potentially_modified

    @property
    def percent_additional_io(self):
        modified = self.potentially_modified - self.not_modified
        actual_io = self.page_ins + modified
        if not actual_io:
            return 0.0
        return 100.0 * self.not_modified / actual_io


def run_table_3_5(length_scale=1.0, scale=8, runner=None, seed=0,
                  profiles=DEV_SYSTEM_PROFILES, max_references=None,
                  workers=None, chunk_refs=DEFAULT_CHUNK_REFS,
                  options=None):
    """Simulate the six development-system profiles.

    ``workers``/``chunk_refs`` are the legacy keywords; pass
    ``options`` (a :class:`~repro.options.RunOptions`) for the full
    execution knob set, including observation.
    """
    runner = runner or _driver_runner(chunk_refs, options)
    specs = []
    for profile in profiles:
        config = scaled_config(
            memory_ratio=profile.memory_ratio, scale=scale,
            dirty_policy="SPUR", reference_policy="MISS",
        )
        workload = DevSystemWorkload(profile, length_scale=length_scale)
        specs.append((config, workload, seed, max_references))
    results = runner.run_many(
        specs, workers=workers, options=options,
        labels=[profile.hostname for profile in profiles],
    )
    rows = []
    for profile, result in zip(profiles, results):
        rows.append(Table35Row(
            hostname=profile.hostname,
            memory_mb=profile.memory_mb,
            uptime_hours=profile.uptime_hours,
            page_ins=result.page_ins,
            potentially_modified=result.potentially_modified,
            not_modified=result.not_modified,
        ))
    return rows, render_table_3_5(rows)


def render_table_3_5(rows):
    """Render measured Table 3.5 rows beside the paper's."""
    table = Table(
        "Table 3.5: Page-Out Results from Development Systems "
        "(measured vs paper)",
        ["Host", "Mem", "Page-Ins", "Pot. Modified", "Not Modified",
         "% Not Mod", "% Add'l I/O"],
    )
    paper_rows = list(paper_data.TABLE_3_5)
    for index, row in enumerate(rows):
        table.add_row(
            row.hostname, f"{row.memory_mb} MB", row.page_ins,
            row.potentially_modified, row.not_modified,
            f"{row.percent_not_modified:.0f}%",
            f"{row.percent_additional_io:.1f}%",
        )
        if index < len(paper_rows):
            host, mem, _, pi, pot, notm, pct, addl = paper_rows[index]
            table.add_row(
                f"  (paper {host})", f"{mem} MB", pi, pot, notm,
                f"{pct}%", f"{addl}%",
            )
        table.add_separator()
    table.add_note(
        "claim under test: >= 80% of writable pages modified at "
        "replacement with 8 MB, >= 90% at 12+ MB; <= ~3% extra paging "
        "I/O without dirty bits"
    )
    return table


# ---------------------------------------------------------------------------
# Table 4.1 — reference-bit policy comparison
# ---------------------------------------------------------------------------

@dataclass
class Table41Row:
    """One (workload, memory, policy) cell, averaged over repetitions."""

    workload: str
    memory_mb: int
    policy: str
    page_ins_mean: float
    elapsed_mean: float
    page_ins_pct: float = 100.0
    elapsed_pct: float = 100.0
    repetitions: int = 1


def run_table_4_1(length_scale=1.0, scale=8, repetitions=3,
                  runner=None, randomize=True, max_references=None,
                  workers=None, chunk_refs=DEFAULT_CHUNK_REFS,
                  options=None):
    """Run the full reference-bit policy matrix.

    Repetitions use distinct workload seeds and (like the paper's
    five-repetition design) a randomised execution order.  Returns
    ``(rows, table)`` with page-ins and elapsed time normalised to the
    MISS policy within each (workload, memory) group.

    ``workers``/``chunk_refs`` are the legacy keywords; pass
    ``options`` (a :class:`~repro.options.RunOptions`) for the full
    execution knob set, including observation.
    """
    runner = runner or _driver_runner(chunk_refs, options)
    points = []
    for name, _ in _standard_workloads(length_scale):
        workload_cls = SlcWorkload if name == "SLC" else Workload1
        for memory_mb, ratio in MEMORY_POINTS:
            for policy in REFERENCE_POLICY_NAMES:
                config = scaled_config(
                    memory_ratio=ratio, scale=scale,
                    dirty_policy="SPUR", reference_policy=policy,
                )
                points.append((
                    (name, memory_mb, policy),
                    config,
                    workload_cls(length_scale=length_scale),
                ))
    matrix = runner.run_matrix(
        points, repetitions=repetitions, randomize=randomize,
        max_references=max_references, workers=workers,
        options=options,
    )

    rows = []
    for name, _ in _standard_workloads(length_scale):
        for memory_mb, _ratio in MEMORY_POINTS:
            base_runs = matrix[(name, memory_mb, "MISS")]
            base_pi = summarize([r.page_ins for r in base_runs]).mean
            base_el = summarize(
                [r.elapsed_seconds for r in base_runs]
            ).mean
            for policy in REFERENCE_POLICY_NAMES:
                runs = matrix[(name, memory_mb, policy)]
                pi = summarize([r.page_ins for r in runs]).mean
                el = summarize([r.elapsed_seconds for r in runs]).mean
                rows.append(Table41Row(
                    workload=name,
                    memory_mb=memory_mb,
                    policy=policy,
                    page_ins_mean=pi,
                    elapsed_mean=el,
                    page_ins_pct=100.0 * pi / base_pi if base_pi else 0,
                    elapsed_pct=100.0 * el / base_el if base_el else 0,
                    repetitions=len(runs),
                ))
    notes = _paired_notes(matrix) if repetitions >= 2 else []
    return rows, render_table_4_1(rows, notes)


def _paired_notes(matrix):
    """Paired REF/NOREF-vs-MISS elapsed-time comparisons.

    Repetition seeds match across policies at each point, so the
    differences pair; the note says whether each policy's elapsed-time
    penalty is clear of run-to-run noise.
    """
    notes = []
    for workload in ("SLC", "WORKLOAD1"):
        for policy in ("REF", "NOREF"):
            clear = 0
            points = 0
            for memory_mb, _ratio in MEMORY_POINTS:
                base = [
                    r.elapsed_seconds
                    for r in matrix[(workload, memory_mb, "MISS")]
                ]
                values = [
                    r.elapsed_seconds
                    for r in matrix[(workload, memory_mb, policy)]
                ]
                comparison = paired(values, base)
                points += 1
                if comparison.clearly_nonzero:
                    clear += 1
            notes.append(
                f"paired elapsed {policy} vs MISS ({workload}): "
                f"difference clear of noise at {clear}/{points} "
                f"memory points"
            )
    return notes


def render_table_4_1(rows, notes=()):
    """Render measured Table 4.1 cells beside the paper's."""
    table = Table(
        "Table 4.1: Reference Bit Results (measured vs paper)",
        ["Workload", "Mem (MB)", "Policy", "Page-Ins", "Elapsed (s)"],
    )
    for row in rows:
        paper = paper_data.TABLE_4_1.get(
            (row.workload, row.memory_mb, row.policy)
        )
        table.add_row(
            row.workload, row.memory_mb, row.policy,
            f"{row.page_ins_mean:.0f} ({row.page_ins_pct:.0f}%)",
            f"{row.elapsed_mean:.1f} ({row.elapsed_pct:.0f}%)",
        )
        if paper is not None:
            page_ins, pct, elapsed, elapsed_pct = paper
            table.add_row(
                "  (paper)", row.memory_mb, row.policy,
                f"{page_ins} ({pct}%)",
                f"{elapsed} ({elapsed_pct}%)",
            )
        if row.policy == "NOREF":
            table.add_separator()
    table.add_note("percentages are relative to MISS at the same point")
    for note in notes:
        table.add_note(note)
    return table
