"""LaTeX output for regenerated tables.

Reproduction results usually end up in a paper or report; this module
converts the ASCII :class:`~repro.analysis.tables.Table` objects the
experiment drivers return into ``tabular`` environments, with the
special characters of cell text escaped and the paper-comparison rows
styled as grey subordinate lines.
"""

import re

#: Characters that must be escaped in LaTeX text mode.
_ESCAPES = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}

_ESCAPE_PATTERN = re.compile(
    "|".join(re.escape(ch) for ch in _ESCAPES)
)


def escape(text):
    """Escape LaTeX special characters in one cell's text."""
    return _ESCAPE_PATTERN.sub(
        lambda match: _ESCAPES[match.group()], str(text)
    )


def table_to_latex(table, caption=None, label=None,
                   paper_row_prefix="  (paper"):
    """Render a :class:`Table` as a LaTeX ``table`` environment.

    Rows whose first cell starts with ``paper_row_prefix`` (the
    drivers' published-value companion rows) are set in grey; ASCII
    separator rows become ``\\midrule``.
    """
    columns = len(table.columns)
    lines = [
        r"\begin{table}[t]",
        r"\centering",
        r"\begin{tabular}{" + "l" * columns + "}",
        r"\toprule",
        " & ".join(escape(cell) for cell in table.columns) + r" \\",
        r"\midrule",
    ]
    for row in table.rows:
        if row is None:
            lines.append(r"\midrule")
            continue
        cells = [escape(cell) for cell in row]
        body = " & ".join(cells) + r" \\"
        if str(row[0]).startswith(paper_row_prefix):
            body = r"\textcolor{gray}{" + body[:-2].strip() + r"} \\"
        lines.append(body)
    lines.append(r"\bottomrule")
    lines.append(r"\end{tabular}")
    if caption or table.title:
        lines.append(
            r"\caption{" + escape(caption or table.title) + "}"
        )
    if label:
        lines.append(r"\label{" + label + "}")
    for note in table.notes:
        lines.append(
            r"\par\footnotesize " + escape(note)
        )
    lines.append(r"\end{table}")
    return "\n".join(lines)
