"""The paper's published numbers, transcribed for comparison.

Every reproduction bench prints paper-versus-measured side by side;
this module is the single home of the transcription so typos can be
fixed in one place.  Units follow the paper: Table 3.3's block counts
are in thousands; Table 3.4's overheads in millions of cycles.
"""

from repro.policies.costs import EventCounts, TimeParameters

#: Table 3.2 exactly.
TABLE_3_2 = TimeParameters(t_ds=1000, t_flush=500, t_dm=25, t_dc=5)

#: Table 3.3: {(workload, memory MB): (EventCounts, elapsed seconds)}.
#: N_w-hit / N_w-miss were published in millions (see W_COUNT_SCALE);
#: stored here as raw counts.
TABLE_3_3 = {
    ("SLC", 5): (
        EventCounts(n_ds=2349, n_zfod=905, n_ef=237,
                    n_w_hit=1_270_000, n_w_miss=7_380_000),
        948,
    ),
    ("SLC", 6): (
        EventCounts(n_ds=1838, n_zfod=905, n_ef=143,
                    n_w_hit=839_000, n_w_miss=5_110_000),
        502,
    ),
    ("SLC", 8): (
        EventCounts(n_ds=1661, n_zfod=905, n_ef=120,
                    n_w_hit=612_000, n_w_miss=3_680_000),
        341,
    ),
    ("WORKLOAD1", 5): (
        EventCounts(n_ds=9860, n_zfod=5286, n_ef=1534,
                    n_w_hit=6_150_000, n_w_miss=34_000_000),
        3016,
    ),
    ("WORKLOAD1", 6): (
        EventCounts(n_ds=7843, n_zfod=5181, n_ef=456,
                    n_w_hit=4_920_000, n_w_miss=20_400_000),
        2535,
    ),
    ("WORKLOAD1", 8): (
        EventCounts(n_ds=7471, n_zfod=5182, n_ef=364,
                    n_w_hit=4_100_000, n_w_miss=17_300_000),
        2555,
    ),
}

#: The published N_w-hit / N_w-miss columns print values like "6.15";
#: the WRITE row of Table 3.4 only reproduces if those are read as
#: millions (WORKLOAD1 at 5 MB: 4.574M + 6.15e6 * 5 cycles = 35.3M
#: cycles, the published value), so they are stored here as raw counts.
W_COUNT_SCALE = 1_000_000

#: Table 3.4: {(workload, MB): {policy: (Mcycles, ratio to MIN)}}.
TABLE_3_4 = {
    ("SLC", 5): {
        "MIN": (1.44, 1.00), "FAULT": (1.68, 1.16),
        "FLUSH": (2.17, 1.50), "SPUR": (1.49, 1.03),
        "WRITE": (7.81, 5.41),
    },
    ("SLC", 6): {
        "MIN": (0.933, 1.00), "FAULT": (1.08, 1.15),
        "FLUSH": (1.40, 1.50), "SPUR": (0.960, 1.03),
        "WRITE": (5.13, 5.50),
    },
    ("SLC", 8): {
        "MIN": (0.756, 1.00), "FAULT": (0.876, 1.16),
        "FLUSH": (1.13, 1.50), "SPUR": (0.778, 1.03),
        "WRITE": (3.82, 5.05),
    },
    ("WORKLOAD1", 5): {
        "MIN": (4.57, 1.00), "FAULT": (6.11, 1.34),
        "FLUSH": (6.86, 1.50), "SPUR": (4.73, 1.03),
        "WRITE": (35.3, 7.72),
    },
    ("WORKLOAD1", 6): {
        "MIN": (2.66, 1.00), "FAULT": (3.12, 1.17),
        "FLUSH": (3.99, 1.50), "SPUR": (2.74, 1.03),
        "WRITE": (27.3, 10.2),
    },
    ("WORKLOAD1", 8): {
        "MIN": (2.29, 1.00), "FAULT": (2.65, 1.16),
        "FLUSH": (3.43, 1.50), "SPUR": (2.36, 1.03),
        "WRITE": (22.8, 9.95),
    },
}

#: Table 3.5 rows: (hostname, memory MB, uptime h, page-ins,
#: potentially modified, not modified, % not modified, % additional).
TABLE_3_5 = (
    ("mace", 8, 70, 15203, 2681, 488, 18, 2.8),
    ("sloth", 8, 37, 10566, 2146, 129, 6, 1.0),
    ("mace", 8, 46, 48722, 5198, 814, 16, 1.4),
    ("sage", 12, 45, 5246, 544, 14, 3, 0.2),
    ("fenugreek", 12, 36, 8556, 1154, 58, 5, 0.6),
    ("murder", 16, 119, 23302, 12944, 895, 7, 2.5),
)

#: Table 4.1: {(workload, MB, policy): (page-ins, pct, elapsed s, pct)}.
TABLE_4_1 = {
    ("SLC", 5, "MISS"): (4647, 100, 948, 100),
    ("SLC", 5, "REF"): (4738, 102, 1020, 108),
    ("SLC", 5, "NOREF"): (8230, 177, 1341, 141),
    ("SLC", 6, "MISS"): (1833, 100, 502, 100),
    ("SLC", 6, "REF"): (1866, 102, 534, 106),
    ("SLC", 6, "NOREF"): (3465, 189, 703, 140),
    ("SLC", 8, "MISS"): (1056, 100, 341, 100),
    ("SLC", 8, "REF"): (1062, 101, 342, 101),
    ("SLC", 8, "NOREF"): (1512, 143, 382, 112),
    ("WORKLOAD1", 5, "MISS"): (11959, 100, 3016, 100),
    ("WORKLOAD1", 5, "REF"): (11119, 93, 3153, 105),
    ("WORKLOAD1", 5, "NOREF"): (16045, 134, 3214, 107),
    ("WORKLOAD1", 6, "MISS"): (3556, 100, 2535, 100),
    ("WORKLOAD1", 6, "REF"): (3617, 102, 2677, 106),
    ("WORKLOAD1", 6, "NOREF"): (5073, 143, 2555, 101),
    ("WORKLOAD1", 8, "MISS"): (1837, 100, 2555, 100),
    ("WORKLOAD1", 8, "REF"): (1790, 97, 2701, 106),
    ("WORKLOAD1", 8, "NOREF"): (1926, 105, 2505, 98),
}

#: Memory sizes measured (MB) and their cache-ratio equivalents.
MEMORY_POINTS = ((5, 40), (6, 48), (8, 64))
