"""Markdown reproduction-report generation.

Runs the full experiment suite and emits a self-contained Markdown
report — the regenerated tables, the paper's values beside them, and
the shape-target checklist — suitable for committing or attaching to
a reproduction artefact.  `python -m repro` uses the per-table
commands; this module is the batch equivalent:

::

    from repro.analysis.report import generate_report
    text = generate_report(length_scale=1.0)
"""

import datetime

from repro.analysis import paper_data
from repro.analysis.experiments import (
    build_table_3_4,
    run_table_3_3,
    run_table_3_5,
    run_table_4_1,
)

#: Shape targets checked by the report, mirroring the bench asserts.
_CHECK_DESCRIPTIONS = (
    "excess faults < 20% of dirty faults at every point",
    "published Table 3.4 regenerated exactly from published counts",
    ">= 75% of writable pages modified at replacement (8 MB hosts)",
    ">= 90% of writable pages modified at replacement (12+ MB hosts)",
    "REF elapsed time never better than MISS",
    "NOREF page-ins above MISS at every paging point",
)


def _check_table_3_3(rows):
    return all(
        row.counts.excess_fault_fraction < 0.20 for row in rows
    )


def _check_table_3_4(results):
    for key, published in paper_data.TABLE_3_4.items():
        for policy, (mcycles, _) in published.items():
            got = results[key][policy][0] / 1e6
            if abs(got - mcycles) / mcycles > 0.02:
                return False
    return True


def _check_table_3_5_small(rows):
    return all(
        100 - row.percent_not_modified >= 75
        for row in rows if row.memory_mb == 8
    )


def _check_table_3_5_large(rows):
    return all(
        100 - row.percent_not_modified >= 90
        for row in rows if row.memory_mb >= 12
    )


def _check_ref_never_faster(rows):
    return all(
        row.elapsed_pct >= 99.0
        for row in rows if row.policy == "REF"
    )


def _check_noref_pays_page_ins(rows):
    return all(
        row.page_ins_pct >= 100.0
        for row in rows if row.policy == "NOREF"
    )


def generate_report(length_scale=1.0, repetitions=2, seed=0,
                    timestamp=None):
    """Run everything and return the Markdown report text."""
    stamp = timestamp or datetime.datetime.now().isoformat(
        timespec="seconds"
    )

    rows_33, table_33 = run_table_3_3(length_scale=length_scale,
                                      seed=seed)
    results_34_paper, table_34_paper = build_table_3_4()
    _, table_34_measured = build_table_3_4(rows_33)
    rows_35, table_35 = run_table_3_5(length_scale=length_scale,
                                      seed=seed)
    rows_41, table_41 = run_table_4_1(
        length_scale=length_scale, repetitions=repetitions
    )

    checks = (
        _check_table_3_3(rows_33),
        _check_table_3_4(results_34_paper),
        _check_table_3_5_small(rows_35),
        _check_table_3_5_large(rows_35),
        _check_ref_never_faster(rows_41),
        _check_noref_pays_page_ins(rows_41),
    )

    parts = [
        "# Reproduction report",
        "",
        f"Wood & Katz, ISCA 1989 — generated {stamp}, "
        f"length_scale={length_scale}, repetitions={repetitions}, "
        f"seed={seed}.",
        "",
        "## Shape-target checklist",
        "",
    ]
    for passed, description in zip(checks, _CHECK_DESCRIPTIONS):
        mark = "x" if passed else " "
        parts.append(f"- [{mark}] {description}")
    parts += [
        "",
        "## Table 3.3 — event frequencies",
        "",
        "```",
        table_33.render(),
        "```",
        "",
        "## Table 3.4 — dirty-bit overheads (published counts)",
        "",
        "```",
        table_34_paper.render(),
        "```",
        "",
        "## Table 3.4 — dirty-bit overheads (measured counts)",
        "",
        "```",
        table_34_measured.render(),
        "```",
        "",
        "## Table 3.5 — development-system page-outs",
        "",
        "```",
        table_35.render(),
        "```",
        "",
        "## Table 4.1 — reference-bit policies",
        "",
        "```",
        table_41.render(),
        "```",
        "",
    ]
    return "\n".join(parts), all(checks)
