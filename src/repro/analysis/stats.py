"""Small-sample statistics for repetition-based experiments.

The paper ran five repetitions of each Table 4.1 point with a
randomised design; these helpers summarise such samples.  Implemented
directly (mean, unbiased standard deviation, normal-approximation
confidence interval) — the sample sizes are tiny and the uses
descriptive, so pulling in heavier statistics machinery would buy
nothing.
"""

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of one measured quantity."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def sem(self):
        """Standard error of the mean (0 for a single observation)."""
        if self.n < 2:
            return 0.0
        return self.std / math.sqrt(self.n)

    def ci95(self):
        """Approximate 95% confidence half-width (normal z=1.96).

        With n=5 this understates the t-interval slightly; the
        experiments use it for error bars, not hypothesis tests.
        """
        return 1.96 * self.sem

    def __str__(self):
        if self.n == 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} ± {self.ci95():.2g}"


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a non-empty sequence of observations."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarise an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    else:
        variance = 0.0
    return Summary(
        n=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def relative(values: Sequence[float], baseline: Sequence[float]):
    """Paired ratios of two equal-length samples (policy vs MISS)."""
    if len(values) != len(baseline):
        raise ValueError("samples must pair up")
    return [
        v / b if b else float("nan") for v, b in zip(values, baseline)
    ]


@dataclass(frozen=True)
class PairedComparison:
    """A paired-difference analysis of two policies' repetitions.

    Each repetition of a Table 4.1 point runs every policy on the same
    seed, so differences pair naturally: comparing pairwise removes
    the between-seed workload variance that dominates raw comparisons.
    """

    n: int
    mean_difference: float
    std_difference: float
    consistent_sign: bool  # every pair differed in the same direction

    @property
    def sem(self):
        if self.n < 2:
            return 0.0
        return self.std_difference / math.sqrt(self.n)

    def ci95(self):
        return 1.96 * self.sem

    @property
    def clearly_nonzero(self):
        """Whether the 95% interval excludes zero (n >= 2 only)."""
        if self.n < 2:
            return False
        return abs(self.mean_difference) > self.ci95()

    def __str__(self):
        verdict = (
            "clear" if self.clearly_nonzero
            else "within noise" if self.n >= 2
            else "single run"
        )
        return (
            f"Δ = {self.mean_difference:+.4g} ± {self.ci95():.2g} "
            f"({verdict})"
        )


def paired(values: Sequence[float], baseline: Sequence[float]):
    """Build a :class:`PairedComparison` of matched repetitions."""
    if len(values) != len(baseline):
        raise ValueError("samples must pair up")
    if not values:
        raise ValueError("cannot compare empty samples")
    differences = [v - b for v, b in zip(values, baseline)]
    summary = summarize(differences)
    signs = {d > 0 for d in differences if d != 0}
    return PairedComparison(
        n=summary.n,
        mean_difference=summary.mean,
        std_difference=summary.std,
        consistent_sign=len(signs) <= 1,
    )
