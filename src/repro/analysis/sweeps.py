"""Generic parameter sweeps over machine configurations.

The ablation benches share one shape: vary a single configuration
knob across values, run a workload per point (possibly per policy),
and compare a few result metrics.  :class:`SweepDriver` factors that
shape out, returning structured results plus a ready
:class:`~repro.analysis.tables.Table` and line plot.
"""

import dataclasses
from typing import Callable, Dict

from repro.analysis.charts import line_plot
from repro.analysis.tables import Table
from repro.machine.runner import ExperimentRunner
from repro.workloads.base import DEFAULT_CHUNK_REFS

def cache_size_axis(config, size_bytes):
    """Sweep axis: the same machine with a *size_bytes* cache.

    A derived-change callable for :class:`SweepDriver`'s ``field``
    parameter — cache size lives inside the nested
    :class:`~repro.common.params.CacheGeometry`, out of reach of the
    flat field-name form.  Geometry validation (power of two, at
    least one block) fires at replace time, so a bad grid fails when
    it is declared rather than mid-campaign.
    """
    return dataclasses.replace(
        config,
        cache=dataclasses.replace(config.cache, size_bytes=size_bytes),
    )


def associativity_axis(config, ways):
    """Sweep axis: the same machine with *ways*-way sets.

    Declares and validates an associativity grid (power of two, no
    more ways than blocks) ahead of a set-associative simulator.
    Sweeps over any value other than 1 build configurations the
    current direct-mapped :class:`~repro.cache.cache.VirtualCache`
    refuses loudly at machine-build time — the axis is plumbing for
    the grid shape, not a silent behaviour change.
    """
    return dataclasses.replace(
        config,
        cache=dataclasses.replace(config.cache, associativity=ways),
    )


#: Standard metric extractors by name.
METRICS: Dict[str, Callable] = {
    "page_ins": lambda result: result.page_ins,
    "page_outs": lambda result: result.page_outs,
    "cycles": lambda result: result.cycles,
    "elapsed_seconds": lambda result: result.elapsed_seconds,
    "cycles_per_reference": lambda result: (
        result.cycles_per_reference
    ),
}


class SweepDriver:
    """Run a one-dimensional configuration sweep.

    Parameters
    ----------
    base_config:
        The configuration every point derives from.
    field:
        Name of the :class:`MachineConfig` field to vary, or a
        callable ``(config, value) -> config`` for derived changes.
    values:
        Points of the sweep.
    workload_factory:
        Zero-argument callable producing a fresh workload per run.
    runner:
        Optional shared :class:`ExperimentRunner`.
    options:
        Optional :class:`~repro.options.RunOptions` the driver's
        default runner is built from (and :meth:`run` uses per call).
        The ``chunk_refs`` keyword is the legacy shim; ``options``
        wins when both are given.
    """

    def __init__(self, base_config, field, values, workload_factory,
                 runner=None, seed=0, chunk_refs=DEFAULT_CHUNK_REFS,
                 options=None):
        self.base_config = base_config
        self.values = tuple(values)
        if not self.values:
            raise ValueError("sweep needs at least one value")
        self.workload_factory = workload_factory
        self.options = options
        if runner is None:
            runner = (
                ExperimentRunner(options=options)
                if options is not None
                else ExperimentRunner(chunk_refs=chunk_refs)
            )
        self.runner = runner
        self.seed = seed
        if callable(field):
            self._apply = field
            self.field_name = getattr(field, "__name__", "derived")
        else:
            if field not in {
                f.name for f in dataclasses.fields(base_config)
            }:
                raise ValueError(
                    f"{field!r} is not a MachineConfig field"
                )
            self.field_name = field
            self._apply = lambda config, value: dataclasses.replace(
                config, **{field: value}
            )

    def run(self, variants=None, workers=None, options=None):
        """Execute the sweep.

        Parameters
        ----------
        variants:
            Optional ``{label: config-transform}`` dict producing a
            separate series per label (e.g. one per policy); the
            transform is applied after the swept field.  Defaults to
            a single unlabelled series.
        workers:
            Legacy worker-count keyword; 1 keeps the serial path.
        options:
            Per-call :class:`~repro.options.RunOptions` (workers,
            caching, observation); defaults to the driver's own.

        Returns ``{label: {value: RunResult}}``.
        """
        variants = variants or {"": lambda config: config}
        grid = [
            (label, value, transform(
                self._apply(self.base_config, value)
            ))
            for label, transform in variants.items()
            for value in self.values
        ]
        outcomes = self.runner.run_many(
            [
                (config, self.workload_factory(), self.seed, None)
                for _, _, config in grid
            ],
            workers=workers,
            options=options if options is not None else self.options,
            labels=[
                f"{self.field_name}={value}" + (f"/{label}" if label
                                                else "")
                for label, value, _ in grid
            ],
        )
        results = {}
        for (label, value, _), outcome in zip(grid, outcomes):
            results.setdefault(label, {})[value] = outcome
        return results

    def tabulate(self, results, metric="page_ins"):
        """Render sweep results for one metric."""
        extract = METRICS[metric] if isinstance(metric, str) else metric
        labels = list(results)
        table = Table(
            f"Sweep of {self.field_name}: {metric}",
            [self.field_name] + [label or "value" for label in labels],
        )
        for value in self.values:
            table.add_row(value, *[
                f"{extract(results[label][value]):g}"
                for label in labels
            ])
        return table

    def plot(self, results, metric="page_ins", **plot_kwargs):
        """Line plot of the sweep (numeric sweep values only)."""
        extract = METRICS[metric] if isinstance(metric, str) else metric
        series = {
            (label or "value"): [
                (float(value), float(extract(run)))
                for value, run in by_value.items()
            ]
            for label, by_value in results.items()
        }
        plot_kwargs.setdefault(
            "title", f"{metric} vs {self.field_name}"
        )
        return line_plot(series, **plot_kwargs)
