"""ASCII table rendering in the paper's layouts.

The benches print their regenerated tables through this module so
every table in EXPERIMENTS.md has a uniform, diff-friendly format.
"""

from typing import List, Sequence


def format_ratio(value, reference):
    """Render ``value`` with its ratio to ``reference`` in parens.

    Matches the paper's Table 3.4/4.1 style, e.g. ``1.68 (1.16)`` or
    ``4738 (102%)``.
    """
    if reference:
        return f"{value:g} ({value / reference:.2f})"
    return f"{value:g}"


def format_percent(value, reference):
    """``4738 (102%)`` — the Table 4.1 style for integer counts."""
    if reference:
        return f"{value:g} ({100.0 * value / reference:.0f}%)"
    return f"{value:g}"


class Table:
    """A fixed-column ASCII table with a title and optional notes."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows: List[Sequence[str]] = []
        self.notes: List[str] = []

    def add_row(self, *cells):
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def add_separator(self):
        self.rows.append(None)

    def add_note(self, note):
        self.notes.append(note)

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            if row is None:
                continue
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(char="-", junction="+"):
            return junction + junction.join(
                char * (w + 2) for w in widths
            ) + junction

        def fmt(cells):
            return "| " + " | ".join(
                cell.ljust(w) for cell, w in zip(cells, widths)
            ) + " |"

        parts = [self.title, line("=")]
        parts.append(fmt(self.columns))
        parts.append(line("="))
        for row in self.rows:
            parts.append(line() if row is None else fmt(row))
        parts.append(line())
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def __str__(self):
        return self.render()
