"""Reference-trace characterisation.

The substitution argument of DESIGN.md rests on the synthetic
workloads having the memory behaviour the paper describes: a
fetch-dominated reference mix, phased working sets larger than the
cache but pressuring memory, write-first allocation, and sequential
file scans.  :class:`TraceStatistics` measures those properties from
any ``(kind, vaddr)`` stream, so workload claims are checkable instead
of asserted.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.workloads.base import IFETCH, READ, WRITE

#: Reuse-distance histogram bucket upper bounds (block granularity).
REUSE_BUCKETS = (16, 64, 256, 1024, 4096, 16384)


@dataclass
class TraceStatistics:
    """Aggregated statistics of one reference stream."""

    page_bytes: int
    block_bytes: int = 32
    window: int = 65536

    references: int = 0
    ifetches: int = 0
    reads: int = 0
    writes: int = 0

    distinct_pages: int = 0
    distinct_blocks: int = 0
    write_first_pages: int = 0   # pages whose first touch was a write

    #: Mean distinct pages touched per ``window`` references.
    working_set_samples: List[int] = field(default_factory=list)

    #: Histogram of block-granularity reuse distances.
    reuse_histogram: Dict[str, int] = field(default_factory=dict)
    cold_blocks: int = 0

    @property
    def ifetch_fraction(self):
        return self.ifetches / self.references if self.references else 0

    @property
    def write_fraction(self):
        """Writes as a fraction of *data* references."""
        data = self.reads + self.writes
        return self.writes / data if data else 0.0

    @property
    def write_first_fraction(self):
        if not self.distinct_pages:
            return 0.0
        return self.write_first_pages / self.distinct_pages

    @property
    def mean_working_set_pages(self):
        if not self.working_set_samples:
            return 0.0
        return (
            sum(self.working_set_samples)
            / len(self.working_set_samples)
        )

    def summary_lines(self):
        """Human-readable characterisation."""
        lines = [
            f"references        {self.references:,}",
            f"mix               ifetch {self.ifetch_fraction:.0%}, "
            f"write/data {self.write_fraction:.0%}",
            f"footprint         {self.distinct_pages:,} pages / "
            f"{self.distinct_blocks:,} blocks",
            f"write-first pages {self.write_first_fraction:.0%}",
            f"working set       {self.mean_working_set_pages:,.0f} "
            f"pages per {self.window:,}-reference window",
            "reuse distances (blocks):",
        ]
        for label in self._bucket_labels():
            lines.append(
                f"  {label:>9}: {self.reuse_histogram.get(label, 0):,}"
            )
        lines.append(f"  {'cold':>9}: {self.cold_blocks:,}")
        return lines

    @staticmethod
    def _bucket_labels():
        labels = []
        lower = 0
        for bound in REUSE_BUCKETS:
            labels.append(f"<={bound}")
            lower = bound
        labels.append(f">{REUSE_BUCKETS[-1]}")
        return labels


def analyze_trace(accesses, page_bytes, block_bytes=32,
                  window=65536, max_references=None):
    """Measure a reference stream; returns :class:`TraceStatistics`.

    Reuse distance is approximated as the number of references since
    the block was last touched (temporal distance), which is cheap to
    compute and adequate for characterising locality; exact stack
    distances would cost O(n log n) for no additional insight here.
    """
    if page_bytes <= 0 or block_bytes <= 0:
        raise ConfigurationError("sizes must be positive")
    stats = TraceStatistics(page_bytes=page_bytes,
                            block_bytes=block_bytes, window=window)
    page_shift = page_bytes.bit_length() - 1
    block_shift = block_bytes.bit_length() - 1

    first_touch = {}
    last_touch_by_block = {}
    window_pages = set()
    histogram = Counter()
    bucket_labels = TraceStatistics._bucket_labels()

    index = 0
    for kind, vaddr in accesses:
        if max_references is not None and index >= max_references:
            break
        page = vaddr >> page_shift
        block = vaddr >> block_shift

        if kind == IFETCH:
            stats.ifetches += 1
        elif kind == READ:
            stats.reads += 1
        else:
            stats.writes += 1

        if page not in first_touch:
            first_touch[page] = kind
        previous = last_touch_by_block.get(block)
        if previous is None:
            stats.cold_blocks += 1
        else:
            distance = index - previous
            for position, bound in enumerate(REUSE_BUCKETS):
                if distance <= bound:
                    histogram[bucket_labels[position]] += 1
                    break
            else:
                histogram[bucket_labels[-1]] += 1
        last_touch_by_block[block] = index

        window_pages.add(page)
        index += 1
        if index % window == 0:
            stats.working_set_samples.append(len(window_pages))
            window_pages = set()

    if window_pages:
        stats.working_set_samples.append(len(window_pages))
    stats.references = index
    stats.distinct_pages = len(first_touch)
    stats.distinct_blocks = len(last_touch_by_block)
    stats.write_first_pages = sum(
        1 for kind in first_touch.values() if kind == WRITE
    )
    stats.reuse_histogram = dict(histogram)
    return stats
