"""Stable public facade: one import surface for the whole toolkit.

Everything an experiment script needs lives here under a single,
explicitly curated namespace::

    from repro.api import (
        ExperimentRunner, RunOptions, JsonlSink, scaled_config,
        Workload1,
    )

    options = RunOptions(workers=4, cache_dir=".cache", observe=True)
    runner = ExperimentRunner(options=options)
    result = runner.run(scaled_config(memory_ratio=48),
                        Workload1(length_scale=0.1))

The facade re-exports, it never defines: each name's documentation
and behaviour live in its home module, and ``repro.api`` pins which
of those names are contract.  Anything importable here is covered by
the compatibility promise in README.md; reaching into submodules
(``repro.machine.simulator`` internals, private helpers) is not.

Groups, in import order below:

* errors and primitives (:mod:`repro.common`),
* performance counters (:mod:`repro.counters`),
* machine configuration and simulators (:mod:`repro.machine`),
* observability — time series, sinks, progress, reports
  (:mod:`repro.observe`),
* the unified execution-options object (:mod:`repro.options`),
* campaign execution and result caching (:mod:`repro.parallel`),
* the resumable campaign service — journal, drivers, streaming
  status (:mod:`repro.campaignd`),
* policy models and overhead analysis (:mod:`repro.policies`),
* workloads (:mod:`repro.workloads`),
* experiment drivers and sweeps (:mod:`repro.analysis`).
"""

from repro.common import (
    Access,
    AccessKind,
    DeterministicRng,
    Protection,
    ReproError,
)
from repro.counters import Event, PerformanceCounters
from repro.machine import (
    ExperimentRunner,
    MachineConfig,
    RunResult,
    SmpSystem,
    SpurMachine,
    paper_config,
    scaled_config,
)
from repro.observe import (
    DEFAULT_EPOCH_REFS,
    CampaignProgress,
    EpochSample,
    JsonlSink,
    MemorySink,
    NullSink,
    RunObservation,
    RunObserver,
    observe,
    read_trace,
    render_report,
    summarize_trace,
)
from repro.options import RunOptions
from repro.parallel import (
    CampaignError,
    CellFailure,
    ResultCache,
    RunCell,
    execute_cells,
)
from repro.campaignd import (
    CampaignJournal,
    CampaignService,
    LocalDriver,
    RetryPolicy,
    StatusServer,
    SubprocessDriver,
    WorkQueue,
    cell_key,
    cell_to_spec,
    read_journal,
    spec_to_cell,
    stream_events,
)
from repro.policies import (
    EventCounts,
    ExcessFaultModel,
    TimeParameters,
    make_dirty_policy,
    make_reference_policy,
    overhead,
    overhead_table,
)
from repro.workloads import (
    DEV_SYSTEM_PROFILES,
    DevSystemWorkload,
    RecordedWorkload,
    ScriptedWorkload,
    SlcWorkload,
    Workload1,
    record_workload,
    workload_by_name,
)
from repro.analysis import (
    SweepDriver,
    Table,
    build_table_3_4,
    run_table_3_3,
    run_table_3_5,
    run_table_4_1,
)

__all__ = [
    "Access",
    "AccessKind",
    "CampaignError",
    "CampaignJournal",
    "CampaignProgress",
    "CampaignService",
    "CellFailure",
    "DEFAULT_EPOCH_REFS",
    "DEV_SYSTEM_PROFILES",
    "DeterministicRng",
    "DevSystemWorkload",
    "EpochSample",
    "Event",
    "EventCounts",
    "ExcessFaultModel",
    "ExperimentRunner",
    "JsonlSink",
    "LocalDriver",
    "MachineConfig",
    "MemorySink",
    "NullSink",
    "PerformanceCounters",
    "Protection",
    "RecordedWorkload",
    "ReproError",
    "ResultCache",
    "RetryPolicy",
    "RunCell",
    "RunObservation",
    "RunObserver",
    "RunOptions",
    "RunResult",
    "ScriptedWorkload",
    "SlcWorkload",
    "SmpSystem",
    "SpurMachine",
    "StatusServer",
    "SubprocessDriver",
    "SweepDriver",
    "Table",
    "TimeParameters",
    "WorkQueue",
    "Workload1",
    "build_table_3_4",
    "cell_key",
    "cell_to_spec",
    "execute_cells",
    "make_dirty_policy",
    "make_reference_policy",
    "observe",
    "overhead",
    "overhead_table",
    "paper_config",
    "read_journal",
    "read_trace",
    "record_workload",
    "render_report",
    "run_table_3_3",
    "run_table_3_5",
    "run_table_4_1",
    "scaled_config",
    "spec_to_cell",
    "stream_events",
    "summarize_trace",
    "workload_by_name",
]
