"""SPUR's virtually addressed, direct-mapped, unified cache.

128 KB with 32-byte blocks on the prototype (Table 2.1).  Each block
frame carries the Figure 3.2(b) tag: a virtual-address tag, two
protection bits, a cached copy of the *page* dirty bit, the *block*
dirty bit, and two bits of Berkeley Ownership coherency state.

Because the protection and page-dirty bits are *copies* of PTE fields
taken at fill time, they can go stale when a fault handler updates the
PTE — the phenomenon at the heart of the paper (Figure 3.1).
"""

from repro.cache.coherence import BerkeleyOwnership, CoherencyState
from repro.cache.block import CACHE_TAG_LAYOUT, CacheLineView
from repro.cache.cache import VirtualCache
from repro.cache.flush import FlushResult, TagCheckedFlush, TaglessFlush
from repro.cache.bus import SnoopyBus

__all__ = [
    "BerkeleyOwnership",
    "CACHE_TAG_LAYOUT",
    "CacheLineView",
    "CoherencyState",
    "FlushResult",
    "SnoopyBus",
    "TagCheckedFlush",
    "TaglessFlush",
    "VirtualCache",
]
