"""Cache line (block frame) tag format, as drawn in Figure 3.2(b).

The tag word carries the virtual-address tag plus:

* ``PR`` — two protection bits, copied from the PTE at fill time,
* ``P``  — a copy of the *page* dirty bit (SPUR's extra bit; the one
  the paper concludes was not worth its 14 PLA product terms),
* ``B``  — the *block* dirty bit (has this block been modified while
  cached — ordinary write-back state),
* ``CS`` — two bits of Berkeley Ownership coherency state.

The hot simulation path keeps these fields in parallel arrays inside
:class:`repro.cache.cache.VirtualCache`; :class:`CacheLineView` is the
readable per-line facade used by tests, examples, and the Figure 3.2
renderer.
"""

from typing import NamedTuple

from repro.cache.coherence import CoherencyState
from repro.common.bitfields import BitField, BitLayout
from repro.common.types import Protection

#: Hardware layout of one cache tag word (Figure 3.2b).  Twenty-five
#: bits of virtual-address tag is enough for a 32-bit virtual space
#: with the prototype's 128 KB cache; scaled configurations use fewer
#: tag bits and leave the rest zero.
CACHE_TAG_LAYOUT = BitLayout(
    "SPUR Cache Tag",
    32,
    [
        BitField("CS", 0, 2, "Coherency State (2 Bits)"),
        BitField("B", 2, 1, "Block Dirty Bit"),
        BitField("P", 3, 1, "Page Dirty Bit"),
        BitField("PR", 4, 2, "Protection (2 bits)"),
        BitField("V", 6, 1, "Valid Bit"),
        BitField("TAG", 7, 25, "Virtual Address Tag"),
    ],
)


class CacheLineView(NamedTuple):
    """A read-only snapshot of one cache line's tag state."""

    index: int
    valid: bool
    vaddr: int
    protection: Protection
    page_dirty: bool
    block_dirty: bool
    state: CoherencyState
    filled_by_read: bool
    holds_pte: bool

    def pack_tag(self, tag_value):
        """Pack this line's state into the hardware tag word."""
        return CACHE_TAG_LAYOUT.pack(
            CS=int(self.state),
            B=int(self.block_dirty),
            P=int(self.page_dirty),
            PR=int(self.protection),
            V=int(self.valid),
            TAG=tag_value,
        )
