"""The shared backplane bus with snooping.

Every cache attaches to one :class:`SnoopyBus`.  Bus transactions
(fills, ownership acquisitions, write-backs) are broadcast to the other
caches, which react through their Berkeley Ownership snoop logic.  The
paper's prototype was a uniprocessor, so its bus carried only misses
and write-backs, but the full multiprocessor path is implemented and
tested — the protocol is part of the system the paper describes.

The bus also feeds the cache controller's mode-2 performance counters
(bus transactions, snoop hits, invalidations, ownership transfers)
when a counter bank is attached.
"""

from repro.counters.events import Event


class SnoopyBus:
    """Broadcast medium connecting the caches to memory.

    Attributes
    ----------
    transactions:
        Total bus transactions observed.
    snoop_hits:
        Transactions for which some other cache held the block.
    ownership_transfers:
        Transactions where an owner supplied the data directly.
    """

    def __init__(self, name="backplane", counters=None):
        self.name = name
        self.caches = []
        self.counters = counters
        self.transactions = 0
        self.snoop_hits = 0
        self.ownership_transfers = 0
        self.invalidations = 0

    def attach(self, cache):
        """Connect a cache to the bus."""
        if cache in self.caches:
            raise ValueError(f"{cache.name} already attached")
        self.caches.append(cache)
        cache.bus = self
        if len(self.caches) > 1:
            for peer in self.caches:
                peer.has_peers = True

    def broadcast(self, origin, bus_op, vaddr):
        """Deliver one transaction to every cache except its origin."""
        self.transactions += 1
        counters = self.counters
        if counters is not None:
            counters.increment(Event.BUS_TRANSACTION)
        for cache in self.caches:
            if cache is origin:
                continue
            had_block = cache.probe(vaddr) >= 0
            supplied, _ = cache.snoop(bus_op, vaddr)
            if had_block:
                self.snoop_hits += 1
                invalidated = cache.probe(vaddr) < 0
                self.invalidations += invalidated
                if counters is not None:
                    counters.increment(Event.SNOOP_HIT)
                    if invalidated:
                        counters.increment(Event.INVALIDATION)
            if supplied:
                self.ownership_transfers += 1
                if counters is not None:
                    counters.increment(Event.OWNERSHIP_TRANSFER)

    def reset_stats(self):
        self.transactions = 0
        self.snoop_hits = 0
        self.ownership_transfers = 0
        self.invalidations = 0
