"""The direct-mapped virtual-address cache.

Per-line tag state lives in flat parallel columns
(:class:`repro.cache.columns.ColumnStore`: ``array('q')`` for tags and
block numbers, ``bytearray`` for flags) rather than line objects,
because the simulator touches these fields on every simulated
reference; the columns are aliased as public attributes so the
machine's hot loop can read them — and the batched resolver can
classify whole chunks against them — without a method call.  All
*mutations* other than the ones the machine's hot paths perform (the
batched resolver's inlined block installs, which replay ``fill_fast``'s
exact column sequence, and the single-field block-dirty, page-dirty,
and protection refreshes) go through methods on this class, which keep
the columns mutually consistent.  The columns
are allocated once and only mutated in place, never rebound: the
sanitizer and the optional numpy views both alias the buffers.

Addresses are *global virtual* addresses throughout: SPUR's OS-level
synonym prevention guarantees one global address per datum, so the
cache never needs physical tags.
"""

from repro.cache.block import CacheLineView
from repro.cache.coherence import BerkeleyOwnership, BusOp, CoherencyState
from repro.cache.columns import ColumnStore
from repro.common.errors import ConfigurationError
from repro.common.types import Protection
from repro.counters.events import Event

# Slots in the chunked hot loop's deferred-bookkeeping tally (an
# ``array('q')`` indexed by these constants).  ``fill_fast`` records
# its stats/counter/bus increments here instead of touching the live
# dicts per event; ``SpurMachine._flush_tally`` applies them once per
# ``run_chunks`` call.  The simulator extends this block with its own
# event slots, so its numbering starts at ``TALLY_CACHE_SLOTS``.
TALLY_FILLS = 0
TALLY_EVICTIONS = 1
TALLY_WRITE_BACKS = 2
TALLY_BUS = 3
TALLY_CACHE_SLOTS = 4

_UNOWNED = CoherencyState.UNOWNED
_OWNED_EXCLUSIVE = CoherencyState.OWNED_EXCLUSIVE


class VirtualCache:
    """A direct-mapped, write-back, virtually addressed unified cache.

    Parameters
    ----------
    geometry:
        :class:`repro.common.params.CacheGeometry`.
    timing:
        :class:`repro.common.params.MemoryTiming` used to price block
        transfers.
    name:
        Identifier used by the bus and in diagnostics.
    columns:
        Optional pre-built :class:`~repro.cache.columns.ColumnStore`
        to adopt instead of allocating one — the fleet layer hands
        each member cache a store slicing its stacked 2-D buffers.
        Must match the geometry's line count and arrive in power-on
        state (all lines invalid).
    """

    def __init__(self, geometry, timing, name="cache0", columns=None):
        if geometry.associativity != 1:
            raise ConfigurationError(
                f"associativity {geometry.associativity} is plumbed "
                f"through the sweep grid but only direct-mapped "
                f"(associativity=1) caches are simulated"
            )
        self.geometry = geometry
        self.timing = timing
        self.name = name
        self.bus = None  # set when attached to a SnoopyBus
        #: True once another cache shares the bus (maintained by
        #: SnoopyBus.attach); the hot paths key the live-broadcast /
        #: deferred-tally split on this instead of re-counting peers.
        self.has_peers = False
        self.counters = None  # set by the owning SpurMachine

        num_lines = geometry.num_lines
        self.num_lines = num_lines
        self.block_bits = geometry.block_bits
        self.index_mask = num_lines - 1
        self.tag_shift = geometry.block_bits + geometry.index_bits
        self.block_transfer_cycles = timing.block_transfer_cycles(
            geometry.words_per_block
        )

        # Flat per-line tag columns (hot path reads these directly).
        # The aliases below share the store's buffers; every element
        # write through either name lands in the same memory the
        # batched resolver's numpy views observe.
        if columns is None:
            columns = ColumnStore(num_lines)
        elif columns.num_lines != num_lines:
            raise ConfigurationError(
                f"column store has {columns.num_lines} lines, "
                f"geometry needs {num_lines}"
            )
        self.columns = columns
        self.valid = self.columns.valid
        self.tags = self.columns.tags
        self.line_vaddr = self.columns.line_vaddr  # block-aligned fill address
        self.prot = self.columns.prot
        self.page_dirty = self.columns.page_dirty
        self.block_dirty = self.columns.block_dirty
        self.filled_by_read = self.columns.filled_by_read
        self.holds_pte = self.columns.holds_pte
        # Resident block number per line (``line_vaddr >> block_bits``)
        # or -1 when invalid.  Folding valid+tag into one slot lets the
        # chunked hot loop decide a hit with a single compare: block
        # numbers are non-negative, so -1 can never match a probe.
        self.line_block = self.columns.line_block
        # Berkeley Ownership state stays a list of enum members —
        # inspection, policies, and tests rely on identity/properties
        # — so it is not part of the flat column store.
        self.state = [CoherencyState.INVALID] * num_lines
        # Precomputed ``vaddr -> block-aligned address`` mask.
        self.block_offset_mask = ~((1 << self.block_bits) - 1)

        self.stats = {
            "fills": 0,
            "evictions": 0,
            "write_backs": 0,
            "invalidations": 0,
        }

    # -- lookup ----------------------------------------------------------

    def line_index(self, vaddr):
        """Direct-mapped frame index for a virtual address."""
        return (vaddr >> self.block_bits) & self.index_mask

    def tag_of(self, vaddr):
        """Virtual-address tag for a virtual address."""
        return vaddr >> self.tag_shift

    def probe(self, vaddr):
        """Return the line index if ``vaddr`` hits, else ``-1``.

        A probe is side-effect free (no LRU state exists in a
        direct-mapped cache).
        """
        index = (vaddr >> self.block_bits) & self.index_mask
        if self.valid[index] and self.tags[index] == (
            vaddr >> self.tag_shift
        ):
            return index
        return -1

    def view(self, index):
        """A read-only snapshot of one line, for tests and tools."""
        return CacheLineView(
            index=index,
            valid=self.valid[index],
            vaddr=self.line_vaddr[index],
            protection=Protection(self.prot[index]),
            page_dirty=self.page_dirty[index],
            block_dirty=self.block_dirty[index],
            state=self.state[index],
            filled_by_read=self.filled_by_read[index],
            holds_pte=self.holds_pte[index],
        )

    def resident_lines(self):
        """Indices of all valid lines."""
        return [i for i in range(self.num_lines) if self.valid[i]]

    # -- fills and evictions ----------------------------------------------

    def fill(self, vaddr, protection, page_dirty, by_write,
             holds_pte=False):
        """Bring the block containing ``vaddr`` into its frame.

        Evicts the previous occupant (writing it back if it is owned
        dirty data) and installs the new block with protection and
        page-dirty state copied from the PTE — the copy operation whose
        staleness the whole paper is about.

        Returns ``(line index, cycles)`` where cycles covers the block
        fetch and any write-back.
        """
        index = (vaddr >> self.block_bits) & self.index_mask
        cycles = 0
        if self.valid[index]:
            cycles += self._evict(index)

        self.valid[index] = True
        self.tags[index] = vaddr >> self.tag_shift
        self.line_vaddr[index] = vaddr & ~(
            (1 << self.block_bits) - 1
        )
        self.line_block[index] = vaddr >> self.block_bits
        self.prot[index] = int(protection)
        self.page_dirty[index] = page_dirty
        self.block_dirty[index] = by_write
        self.filled_by_read[index] = not by_write
        self.holds_pte[index] = holds_pte
        if by_write:
            self.state[index] = BerkeleyOwnership.on_write_fill()
            self._broadcast(BusOp.READ_OWNED, vaddr)
        else:
            self.state[index] = BerkeleyOwnership.on_read_fill(False)
            self._broadcast(BusOp.READ, vaddr)
        cycles += self.block_transfer_cycles
        self.stats["fills"] += 1
        return index, cycles

    def fill_fast(self, vaddr, protection, page_dirty, by_write,
                  holds_pte, tally):
        """Hot-path twin of :meth:`fill` with deferred bookkeeping.

        Performs the identical column mutations (fused evict +
        install) but records stats, counter, and solo-bus increments
        in ``tally`` (``TALLY_*`` slots) instead of touching the live
        dicts per event; the owning machine flushes the tally once per
        ``run_chunks`` call, which is arithmetically exact because
        counter increments are modular sums.  Bus transactions are
        broadcast live whenever a peer cache could snoop them (the
        write-back/read-owned/read ops then reach other caches in the
        same order the slow path would produce); on a private bus the
        transaction is tallied instead.

        Returns cycles only (the caller already knows the index).
        """
        index = (vaddr >> self.block_bits) & self.index_mask
        transfer = self.block_transfer_cycles
        cycles = 0
        bus = self.bus
        live_bus = self.has_peers
        if self.valid[index]:
            if self.block_dirty[index]:
                cycles += transfer
                tally[TALLY_WRITE_BACKS] += 1
                if live_bus:
                    bus.broadcast(self, BusOp.WRITE_BACK,
                                  self.line_vaddr[index])
                elif bus is not None:
                    tally[TALLY_BUS] += 1
            tally[TALLY_EVICTIONS] += 1

        self.valid[index] = 1
        self.tags[index] = vaddr >> self.tag_shift
        self.line_vaddr[index] = vaddr & self.block_offset_mask
        self.line_block[index] = vaddr >> self.block_bits
        self.prot[index] = protection
        self.page_dirty[index] = page_dirty
        self.block_dirty[index] = by_write
        self.filled_by_read[index] = not by_write
        self.holds_pte[index] = holds_pte
        if by_write:
            self.state[index] = _OWNED_EXCLUSIVE
            bus_op = BusOp.READ_OWNED
        else:
            self.state[index] = _UNOWNED
            bus_op = BusOp.READ
        if live_bus:
            bus.broadcast(self, bus_op, vaddr)
        elif bus is not None:
            tally[TALLY_BUS] += 1
        cycles += transfer
        tally[TALLY_FILLS] += 1
        return cycles

    def _evict(self, index):
        """Vacate one line, returning write-back cycles (0 if clean)."""
        cycles = 0
        if self.block_dirty[index] or self.state[index].is_owned:
            if self.block_dirty[index]:
                cycles += self.block_transfer_cycles
                self.stats["write_backs"] += 1
                if self.counters is not None:
                    self.counters.increment(Event.WRITE_BACK)
                self._broadcast(BusOp.WRITE_BACK, self.line_vaddr[index])
        self.valid[index] = False
        self.line_block[index] = -1
        self.state[index] = CoherencyState.INVALID
        self.block_dirty[index] = False
        self.stats["evictions"] += 1
        return cycles

    def invalidate(self, index, write_back=True):
        """Invalidate one line.

        Returns write-back cycles (0 if the line was clean or
        ``write_back`` is False, as when a snoop transfers ownership).
        """
        if not self.valid[index]:
            return 0
        cycles = 0
        if write_back and self.block_dirty[index]:
            cycles += self.block_transfer_cycles
            self.stats["write_backs"] += 1
            if self.counters is not None:
                self.counters.increment(Event.WRITE_BACK)
        self.valid[index] = False
        self.line_block[index] = -1
        self.state[index] = CoherencyState.INVALID
        self.block_dirty[index] = False
        self.stats["invalidations"] += 1
        return cycles

    def clear(self):
        """Invalidate every line without write-backs (power-on state)."""
        for index in range(self.num_lines):
            self.valid[index] = False
            self.line_block[index] = -1
            self.state[index] = CoherencyState.INVALID
            self.block_dirty[index] = False

    # -- write-hit coherency ------------------------------------------------

    def acquire_ownership(self, index):
        """Perform the coherency work for a processor write hit.

        Returns True if a bus transaction was required (write to an
        unowned or shared-owned block).
        """
        next_state, bus_op = BerkeleyOwnership.on_write_hit(
            self.state[index]
        )
        self.state[index] = next_state
        if bus_op is not None:
            self._broadcast(bus_op, self.line_vaddr[index])
            return True
        return False

    def acquire_ownership_fast(self, index, tally):
        """Hot-path twin of :meth:`acquire_ownership`.

        Identical state transitions (the two common ones — already
        exclusive, and the unowned upgrade — are inlined; the rest go
        through the protocol logic); the bus transaction follows the
        :meth:`fill_fast` rule — broadcast live whenever a peer cache
        could snoop it, tallied (``TALLY_BUS``) on a private bus.
        """
        state = self.state[index]
        if state is _OWNED_EXCLUSIVE:
            return False
        if state is _UNOWNED:
            self.state[index] = _OWNED_EXCLUSIVE
            bus_op = BusOp.WRITE_FOR_OWNERSHIP
        else:
            next_state, bus_op = BerkeleyOwnership.on_write_hit(state)
            self.state[index] = next_state
            if bus_op is None:
                return False
        if self.has_peers:
            self.bus.broadcast(self, bus_op, self.line_vaddr[index])
        elif self.bus is not None:
            tally[TALLY_BUS] += 1
        return True

    # -- page-granularity helpers ---------------------------------------------

    def page_line_range(self, page_vaddr, page_bytes):
        """Line indices where blocks of the given page can reside.

        In a direct-mapped cache a page's blocks occupy a contiguous
        run of ``page_bytes / block_bytes`` frames (wrapping if the
        page is larger than the cache).
        """
        blocks_per_page = page_bytes >> self.block_bits
        if blocks_per_page >= self.num_lines:
            return range(self.num_lines)
        first = (page_vaddr >> self.block_bits) & self.index_mask
        return [
            (first + offset) & self.index_mask
            for offset in range(blocks_per_page)
        ]

    def lines_of_page(self, page_vaddr, page_bytes):
        """Indices of valid lines actually holding blocks of the page."""
        limit = page_vaddr + page_bytes
        return [
            index
            for index in self.page_line_range(page_vaddr, page_bytes)
            if self.valid[index]
            and page_vaddr <= self.line_vaddr[index] < limit
        ]

    # -- bus plumbing -------------------------------------------------------

    def _broadcast(self, bus_op, vaddr):
        if self.bus is not None:
            self.bus.broadcast(self, bus_op, vaddr)

    def snoop(self, bus_op, vaddr):
        """React to another cache's bus transaction.

        Returns ``(supplied data, wrote back)`` for bus accounting.
        """
        index = self.probe(vaddr)
        if index < 0:
            return False, False
        next_state, supplies, writes_back = BerkeleyOwnership.on_snoop(
            self.state[index], bus_op
        )
        if next_state is CoherencyState.INVALID:
            # Ownership (and the dirty data) moves over the bus; no
            # memory write-back is needed.
            self.invalidate(index, write_back=False)
        else:
            self.state[index] = next_state
        return supplies, writes_back

    def __repr__(self):
        resident = sum(self.valid)
        return (
            f"VirtualCache({self.name!r}, "
            f"{self.geometry.size_bytes} bytes, "
            f"{resident}/{self.num_lines} lines valid)"
        )
