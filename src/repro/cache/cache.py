"""The direct-mapped virtual-address cache.

Per-line tag state is kept in parallel Python lists rather than line
objects because the simulator touches these fields on every simulated
reference; the lists are deliberately public so the machine's hot loop
can read them without a method call.  All *mutations* other than the
single-field updates the hot loop performs (block-dirty, page-dirty,
protection refreshes) go through methods on this class, which keep the
arrays mutually consistent.

Addresses are *global virtual* addresses throughout: SPUR's OS-level
synonym prevention guarantees one global address per datum, so the
cache never needs physical tags.
"""

from repro.cache.block import CacheLineView
from repro.cache.coherence import BerkeleyOwnership, BusOp, CoherencyState
from repro.common.types import Protection
from repro.counters.events import Event


class VirtualCache:
    """A direct-mapped, write-back, virtually addressed unified cache.

    Parameters
    ----------
    geometry:
        :class:`repro.common.params.CacheGeometry`.
    timing:
        :class:`repro.common.params.MemoryTiming` used to price block
        transfers.
    name:
        Identifier used by the bus and in diagnostics.
    """

    def __init__(self, geometry, timing, name="cache0"):
        self.geometry = geometry
        self.timing = timing
        self.name = name
        self.bus = None  # set when attached to a SnoopyBus
        self.counters = None  # set by the owning SpurMachine

        num_lines = geometry.num_lines
        self.num_lines = num_lines
        self.block_bits = geometry.block_bits
        self.index_mask = num_lines - 1
        self.tag_shift = geometry.block_bits + geometry.index_bits
        self.block_transfer_cycles = timing.block_transfer_cycles(
            geometry.words_per_block
        )

        # Parallel per-line tag arrays (hot path reads these directly).
        self.valid = [False] * num_lines
        self.tags = [0] * num_lines
        self.line_vaddr = [0] * num_lines  # block-aligned fill address
        self.prot = [int(Protection.NONE)] * num_lines
        self.page_dirty = [False] * num_lines
        self.block_dirty = [False] * num_lines
        self.state = [CoherencyState.INVALID] * num_lines
        self.filled_by_read = [False] * num_lines
        self.holds_pte = [False] * num_lines
        # Resident block number per line (``line_vaddr >> block_bits``)
        # or -1 when invalid.  Folding valid+tag into one slot lets the
        # chunked hot loop decide a hit with a single compare: block
        # numbers are non-negative, so -1 can never match a probe.
        self.line_block = [-1] * num_lines

        self.stats = {
            "fills": 0,
            "evictions": 0,
            "write_backs": 0,
            "invalidations": 0,
        }

    # -- lookup ----------------------------------------------------------

    def line_index(self, vaddr):
        """Direct-mapped frame index for a virtual address."""
        return (vaddr >> self.block_bits) & self.index_mask

    def tag_of(self, vaddr):
        """Virtual-address tag for a virtual address."""
        return vaddr >> self.tag_shift

    def probe(self, vaddr):
        """Return the line index if ``vaddr`` hits, else ``-1``.

        A probe is side-effect free (no LRU state exists in a
        direct-mapped cache).
        """
        index = (vaddr >> self.block_bits) & self.index_mask
        if self.valid[index] and self.tags[index] == (
            vaddr >> self.tag_shift
        ):
            return index
        return -1

    def view(self, index):
        """A read-only snapshot of one line, for tests and tools."""
        return CacheLineView(
            index=index,
            valid=self.valid[index],
            vaddr=self.line_vaddr[index],
            protection=Protection(self.prot[index]),
            page_dirty=self.page_dirty[index],
            block_dirty=self.block_dirty[index],
            state=self.state[index],
            filled_by_read=self.filled_by_read[index],
            holds_pte=self.holds_pte[index],
        )

    def resident_lines(self):
        """Indices of all valid lines."""
        return [i for i in range(self.num_lines) if self.valid[i]]

    # -- fills and evictions ----------------------------------------------

    def fill(self, vaddr, protection, page_dirty, by_write,
             holds_pte=False):
        """Bring the block containing ``vaddr`` into its frame.

        Evicts the previous occupant (writing it back if it is owned
        dirty data) and installs the new block with protection and
        page-dirty state copied from the PTE — the copy operation whose
        staleness the whole paper is about.

        Returns ``(line index, cycles)`` where cycles covers the block
        fetch and any write-back.
        """
        index = (vaddr >> self.block_bits) & self.index_mask
        cycles = 0
        if self.valid[index]:
            cycles += self._evict(index)

        self.valid[index] = True
        self.tags[index] = vaddr >> self.tag_shift
        self.line_vaddr[index] = vaddr & ~(
            (1 << self.block_bits) - 1
        )
        self.line_block[index] = vaddr >> self.block_bits
        self.prot[index] = int(protection)
        self.page_dirty[index] = page_dirty
        self.block_dirty[index] = by_write
        self.filled_by_read[index] = not by_write
        self.holds_pte[index] = holds_pte
        if by_write:
            self.state[index] = BerkeleyOwnership.on_write_fill()
            self._broadcast(BusOp.READ_OWNED, vaddr)
        else:
            self.state[index] = BerkeleyOwnership.on_read_fill(False)
            self._broadcast(BusOp.READ, vaddr)
        cycles += self.block_transfer_cycles
        self.stats["fills"] += 1
        return index, cycles

    def _evict(self, index):
        """Vacate one line, returning write-back cycles (0 if clean)."""
        cycles = 0
        if self.block_dirty[index] or self.state[index].is_owned:
            if self.block_dirty[index]:
                cycles += self.block_transfer_cycles
                self.stats["write_backs"] += 1
                if self.counters is not None:
                    self.counters.increment(Event.WRITE_BACK)
                self._broadcast(BusOp.WRITE_BACK, self.line_vaddr[index])
        self.valid[index] = False
        self.line_block[index] = -1
        self.state[index] = CoherencyState.INVALID
        self.block_dirty[index] = False
        self.stats["evictions"] += 1
        return cycles

    def invalidate(self, index, write_back=True):
        """Invalidate one line.

        Returns write-back cycles (0 if the line was clean or
        ``write_back`` is False, as when a snoop transfers ownership).
        """
        if not self.valid[index]:
            return 0
        cycles = 0
        if write_back and self.block_dirty[index]:
            cycles += self.block_transfer_cycles
            self.stats["write_backs"] += 1
            if self.counters is not None:
                self.counters.increment(Event.WRITE_BACK)
        self.valid[index] = False
        self.line_block[index] = -1
        self.state[index] = CoherencyState.INVALID
        self.block_dirty[index] = False
        self.stats["invalidations"] += 1
        return cycles

    def clear(self):
        """Invalidate every line without write-backs (power-on state)."""
        for index in range(self.num_lines):
            self.valid[index] = False
            self.line_block[index] = -1
            self.state[index] = CoherencyState.INVALID
            self.block_dirty[index] = False

    # -- write-hit coherency ------------------------------------------------

    def acquire_ownership(self, index):
        """Perform the coherency work for a processor write hit.

        Returns True if a bus transaction was required (write to an
        unowned or shared-owned block).
        """
        next_state, bus_op = BerkeleyOwnership.on_write_hit(
            self.state[index]
        )
        self.state[index] = next_state
        if bus_op is not None:
            self._broadcast(bus_op, self.line_vaddr[index])
            return True
        return False

    # -- page-granularity helpers ---------------------------------------------

    def page_line_range(self, page_vaddr, page_bytes):
        """Line indices where blocks of the given page can reside.

        In a direct-mapped cache a page's blocks occupy a contiguous
        run of ``page_bytes / block_bytes`` frames (wrapping if the
        page is larger than the cache).
        """
        blocks_per_page = page_bytes >> self.block_bits
        if blocks_per_page >= self.num_lines:
            return range(self.num_lines)
        first = (page_vaddr >> self.block_bits) & self.index_mask
        return [
            (first + offset) & self.index_mask
            for offset in range(blocks_per_page)
        ]

    def lines_of_page(self, page_vaddr, page_bytes):
        """Indices of valid lines actually holding blocks of the page."""
        limit = page_vaddr + page_bytes
        return [
            index
            for index in self.page_line_range(page_vaddr, page_bytes)
            if self.valid[index]
            and page_vaddr <= self.line_vaddr[index] < limit
        ]

    # -- bus plumbing -------------------------------------------------------

    def _broadcast(self, bus_op, vaddr):
        if self.bus is not None:
            self.bus.broadcast(self, bus_op, vaddr)

    def snoop(self, bus_op, vaddr):
        """React to another cache's bus transaction.

        Returns ``(supplied data, wrote back)`` for bus accounting.
        """
        index = self.probe(vaddr)
        if index < 0:
            return False, False
        next_state, supplies, writes_back = BerkeleyOwnership.on_snoop(
            self.state[index], bus_op
        )
        if next_state is CoherencyState.INVALID:
            # Ownership (and the dirty data) moves over the bus; no
            # memory write-back is needed.
            self.invalidate(index, write_back=False)
        else:
            self.state[index] = next_state
        return supplies, writes_back

    def __repr__(self):
        resident = sum(self.valid)
        return (
            f"VirtualCache({self.name!r}, "
            f"{self.geometry.size_bytes} bytes, "
            f"{resident}/{self.num_lines} lines valid)"
        )
