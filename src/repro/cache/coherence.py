"""The Berkeley Ownership cache-coherency protocol [Katz85].

SPUR's cache controller keeps every block in one of four states:

* ``INVALID`` — the frame holds no useful data.
* ``UNOWNED`` — a clean copy; memory is up to date; other caches may
  also hold copies.  Reads hit freely; a write must first acquire
  ownership on the bus.
* ``OWNED_SHARED`` — this cache owns the (dirty) block but other
  caches may hold read copies; the owner must supply data on snoops
  and write the block back on replacement.
* ``OWNED_EXCLUSIVE`` — this cache owns the block and no other copies
  exist; writes hit without bus traffic.

The experiments in the paper ran on a uniprocessor prototype, but the
protocol is implemented in full (and exercised by the multiprocessor
tests) because the flush and dirty-bit trade-offs the paper discusses
are explicitly motivated by multiprocessor cost arguments.
"""

import enum


class CoherencyState(enum.IntEnum):
    """Per-block Berkeley Ownership state (two tag bits)."""

    INVALID = 0
    UNOWNED = 1
    OWNED_SHARED = 2
    OWNED_EXCLUSIVE = 3

    @property
    def is_owned(self):
        """True if this cache is responsible for the block's data."""
        return self in (
            CoherencyState.OWNED_SHARED,
            CoherencyState.OWNED_EXCLUSIVE,
        )

    @property
    def is_valid(self):
        return self is not CoherencyState.INVALID


class BusOp(enum.Enum):
    """Bus transactions the protocol generates."""

    READ = "read"                # read miss: fetch a shared copy
    READ_OWNED = "read-owned"    # write miss: fetch with ownership
    WRITE_FOR_OWNERSHIP = "for-ownership"  # write hit on UNOWNED
    WRITE_BACK = "write-back"    # replacement of an owned block


class BerkeleyOwnership:
    """State-transition logic for one cache's view of the protocol.

    The class is pure policy: it computes next states and required bus
    operations but performs no I/O itself.  :class:`repro.cache.bus.
    SnoopyBus` applies the snoop half to the other caches.
    """

    # -- processor-side transitions ------------------------------------

    @staticmethod
    def on_read_fill(shared_with_others):
        """State for a block just fetched by a read miss."""
        # Berkeley Ownership loads read misses unowned; memory (or the
        # previous owner, which wrote back) supplies data.
        del shared_with_others
        return CoherencyState.UNOWNED

    @staticmethod
    def on_write_fill():
        """State for a block fetched by a write miss (read-owned)."""
        return CoherencyState.OWNED_EXCLUSIVE

    @staticmethod
    def on_write_hit(state):
        """(next state, bus op or None) for a processor write hit."""
        if state is CoherencyState.OWNED_EXCLUSIVE:
            return CoherencyState.OWNED_EXCLUSIVE, None
        if state is CoherencyState.OWNED_SHARED:
            # Must invalidate other copies before writing again.
            return (
                CoherencyState.OWNED_EXCLUSIVE,
                BusOp.WRITE_FOR_OWNERSHIP,
            )
        if state is CoherencyState.UNOWNED:
            return (
                CoherencyState.OWNED_EXCLUSIVE,
                BusOp.WRITE_FOR_OWNERSHIP,
            )
        raise ValueError(f"write hit on invalid block (state {state})")

    # -- snoop-side transitions ----------------------------------------

    @staticmethod
    def on_snoop(state, bus_op):
        """(next state, must supply data, must write back) for a snoop.

        ``must supply data`` models the owner servicing the request
        instead of memory; ``must write back`` arises when an owner
        downgrades on a plain read and memory must be made current.
        """
        if state is CoherencyState.INVALID:
            return CoherencyState.INVALID, False, False
        if bus_op is BusOp.READ:
            if state is CoherencyState.OWNED_EXCLUSIVE:
                return CoherencyState.OWNED_SHARED, True, False
            if state is CoherencyState.OWNED_SHARED:
                return CoherencyState.OWNED_SHARED, True, False
            return CoherencyState.UNOWNED, False, False
        if bus_op in (BusOp.READ_OWNED, BusOp.WRITE_FOR_OWNERSHIP):
            supplies = state.is_owned and bus_op is BusOp.READ_OWNED
            return CoherencyState.INVALID, supplies, False
        if bus_op is BusOp.WRITE_BACK:
            return state, False, False
        raise ValueError(f"unknown bus operation {bus_op}")
