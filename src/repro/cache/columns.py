"""Flat columnar storage for the cache's per-line tag state.

The chunked hot loop (:meth:`repro.machine.simulator.SpurMachine.
run_chunks`) classifies whole reference segments against the cache in
one vectorized pass.  That only works if the per-line tag state lives
in flat, fixed-width buffers rather than Python lists: a
:class:`ColumnStore` owns one ``array('q')`` per word-sized column and
one ``bytearray`` per flag column, and — when numpy is importable —
exposes zero-copy ``numpy`` views over the *same* buffers so the
batched classifier sees every scalar mutation the slow paths make,
with no synchronisation step.

Two invariants make this safe (checked by
``repro.sanitize.checks.check_column_store``):

* the buffers are allocated once and only ever mutated **in place**
  (``col[i] = x``), never rebound — the sanitizer and the numpy views
  both alias them directly;
* the coherency ``state`` column stays a plain Python list of
  :class:`~repro.cache.coherence.CoherencyState` members (inspection
  and policy code relies on enum identity), so it is deliberately
  *not* part of this store.

``numpy`` is optional.  Without it ``views`` is ``None`` and the
simulator's per-reference fallback loop runs against the ``array``/
``bytearray`` columns directly — same buffers, same results.
"""

from array import array

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via views=None paths
    _np = None

HAVE_NUMPY = _np is not None

#: ``array('q')`` columns: (name, initial element).
WORD_COLUMNS = (("tags", 0), ("line_vaddr", 0), ("line_block", -1))

#: ``bytearray`` flag columns (initially all zero).
FLAG_COLUMNS = ("valid", "prot", "page_dirty", "block_dirty",
                "filled_by_read", "holds_pte")


class ColumnViews:
    """Read-only numpy views over a :class:`ColumnStore`'s buffers.

    One attribute per column, each a zero-copy ``numpy`` array sharing
    memory with the backing ``array``/``bytearray`` — in-place scalar
    writes to the columns are immediately visible here.  The views are
    marked non-writeable: all mutation goes through the cache's
    methods (lint rule R002), never through a view.
    """

    __slots__ = tuple(name for name, _ in WORD_COLUMNS) + FLAG_COLUMNS


class ColumnStore:
    """Flat per-line tag columns plus optional numpy views."""

    def __init__(self, num_lines):
        self.num_lines = num_lines
        self.tags = array("q", bytes(8 * num_lines))
        self.line_vaddr = array("q", bytes(8 * num_lines))
        # Resident block number per line or -1 when invalid; block
        # numbers are non-negative, so -1 never matches a probe.
        self.line_block = array("q", [-1]) * num_lines
        self.valid = bytearray(num_lines)
        self.prot = bytearray(num_lines)
        self.page_dirty = bytearray(num_lines)
        self.block_dirty = bytearray(num_lines)
        self.filled_by_read = bytearray(num_lines)
        self.holds_pte = bytearray(num_lines)
        self.views = self._build_views()

    @classmethod
    def over_buffers(cls, num_lines, buffers):
        """Build a store whose columns alias externally owned buffers.

        ``buffers`` maps every column name to a writable buffer of
        ``num_lines`` elements (``'q'``-format for word columns,
        byte-format for flags) — in practice a ``memoryview`` slice of
        a :class:`repro.fleet.columns.FleetColumnStore`'s 2-D
        allocation, so one machine's scalar writes land directly in
        the fleet's stacked arrays.  The caller owns initial values
        (word columns zeroed except ``line_block`` at -1, flags
        zeroed, matching ``__init__``).  All store invariants apply
        unchanged: the buffers are mutated in place, never rebound.
        """
        store = cls.__new__(cls)
        store.num_lines = num_lines
        for name, _ in WORD_COLUMNS:
            column = buffers[name]
            if len(column) != num_lines:
                raise ValueError(
                    f"column {name!r} has {len(column)} elements, "
                    f"expected {num_lines}"
                )
            setattr(store, name, column)
        for name in FLAG_COLUMNS:
            column = buffers[name]
            if len(column) != num_lines:
                raise ValueError(
                    f"column {name!r} has {len(column)} elements, "
                    f"expected {num_lines}"
                )
            setattr(store, name, column)
        store.views = store._build_views()
        return store

    def _build_views(self):
        if _np is None:
            return None
        views = ColumnViews()
        for name, _ in WORD_COLUMNS:
            view = _np.frombuffer(getattr(self, name), dtype=_np.int64)
            view.flags.writeable = False
            setattr(views, name, view)
        for name in FLAG_COLUMNS:
            view = _np.frombuffer(getattr(self, name), dtype=_np.uint8)
            view.flags.writeable = False
            setattr(views, name, view)
        return views

    def columns(self):
        """``(name, buffer)`` pairs for every flat column."""
        for name, _ in WORD_COLUMNS:
            yield name, getattr(self, name)
        for name in FLAG_COLUMNS:
            yield name, getattr(self, name)


__all__ = ["ColumnStore", "ColumnViews", "HAVE_NUMPY",
           "WORD_COLUMNS", "FLAG_COLUMNS"]
