"""Page-flush strategies.

Flushing a page from the cache is the key primitive behind both the
FLUSH dirty-bit alternative and the REF (true reference bit) policy.
The paper discusses two implementations:

* :class:`TaglessFlush` — what the SPUR hardware actually provides: a
  flush operation that vacates a single cache *frame* regardless of
  its address tag.  Flushing a page means issuing one flush per frame
  the page could occupy, evicting innocent blocks from other pages
  that happen to share those frames (the paper prices this near 2000
  cycles).
* :class:`TagCheckedFlush` — the improved operation the paper assumes
  for a fair comparison: check each candidate frame's tag and flush
  only blocks that really belong to the page (two instructions of loop
  overhead per frame, one cycle to check a non-matching or clean
  block, ten to flush a dirty one — about 500 cycles per page).
"""

from typing import NamedTuple


class FlushResult(NamedTuple):
    """Outcome of flushing one page from one cache."""

    lines_checked: int
    blocks_flushed: int      # valid blocks removed from the cache
    foreign_blocks_flushed: int  # removed blocks from *other* pages
    write_backs: int
    cycles: int


class TagCheckedFlush:
    """Flush only the blocks whose tags match the target page.

    Cost model (per the paper's estimate): ``loop_cycles`` for each
    frame examined, ``check_cycles`` per frame whose block is absent or
    clean, ``flush_cycles`` per dirty block flushed.
    """

    name = "tag-checked"

    def __init__(self, loop_cycles=2, check_cycles=1, flush_cycles=10):
        self.loop_cycles = loop_cycles
        self.check_cycles = check_cycles
        self.flush_cycles = flush_cycles

    def flush_page(self, cache, page_vaddr, page_bytes):
        """Remove every block of the page from ``cache``."""
        limit = page_vaddr + page_bytes
        cycles = 0
        flushed = 0
        write_backs = 0
        frames = cache.page_line_range(page_vaddr, page_bytes)
        for index in frames:
            cycles += self.loop_cycles
            if (
                cache.valid[index]
                and page_vaddr <= cache.line_vaddr[index] < limit
            ):
                if cache.block_dirty[index]:
                    cycles += self.flush_cycles
                    write_backs += 1
                else:
                    cycles += self.check_cycles
                cache.invalidate(index, write_back=False)
                flushed += 1
            else:
                cycles += self.check_cycles
        # Dirty data must reach memory before, e.g., a page-out reads
        # the frame; the write-back transfer itself rides the bus.
        cycles += write_backs * cache.block_transfer_cycles
        return FlushResult(
            lines_checked=len(frames),
            blocks_flushed=flushed,
            foreign_blocks_flushed=0,
            write_backs=write_backs,
            cycles=cycles,
        )


class TaglessFlush:
    """SPUR's real flush: vacate every frame the page maps to.

    Blocks from unrelated pages resident in those frames are evicted
    too (and written back if dirty), which is why the paper prices
    this mechanism at roughly four times the tag-checked one.
    """

    name = "tagless"

    def __init__(self, op_cycles=12):
        # The paper prices the 128-operation tagless flush near 2000
        # cycles with a fifth of the blocks written back; that implies
        # roughly twelve cycles of issue/latency per flush operation.
        self.op_cycles = op_cycles

    def flush_page(self, cache, page_vaddr, page_bytes):
        """Vacate all frames in the page's index range."""
        limit = page_vaddr + page_bytes
        cycles = 0
        flushed = 0
        foreign = 0
        write_backs = 0
        frames = cache.page_line_range(page_vaddr, page_bytes)
        for index in frames:
            cycles += self.op_cycles
            if not cache.valid[index]:
                continue
            in_page = page_vaddr <= cache.line_vaddr[index] < limit
            if cache.block_dirty[index]:
                write_backs += 1
                cycles += cache.block_transfer_cycles
            cache.invalidate(index, write_back=False)
            flushed += 1
            if not in_page:
                foreign += 1
        return FlushResult(
            lines_checked=len(frames),
            blocks_flushed=flushed,
            foreign_blocks_flushed=foreign,
            write_backs=write_backs,
            cycles=cycles,
        )
