"""The campaign service: resumable, distributed, streaming campaigns.

``repro.campaignd`` promotes one-shot campaign execution
(:func:`repro.parallel.execute_cells`) into a long-running service
built from four separable pieces:

* a reversible **cell spec codec** (:mod:`~repro.campaignd.cells`) —
  cells serialise to JSON and back bit-exactly, which is what lets
  work cross process and host boundaries;
* a durable **journal** (:mod:`~repro.campaignd.journal`) — one
  fsynced JSON line per completed cell, written next to the result
  cache, so ``kill -9`` never loses finished work;
* a resumable **work queue** (:mod:`~repro.campaignd.queue`) keyed by
  the same content-addressed hashes the cache uses — restarting a
  half-done campaign recomputes nothing;
* interchangeable **drivers** (:mod:`~repro.campaignd.drivers`) — the
  in-process pool/fleet paths, or ``repro worker`` subprocesses
  sharing only a cache directory — under one
  :class:`~repro.campaignd.service.CampaignService` that owns retry,
  backoff, timeout, journaling, and telemetry.

Live status streams over a socket (:mod:`~repro.campaignd.stream`):
``repro campaign serve`` broadcasts the JSONL event vocabulary,
``repro campaign status`` follows it.  See ``docs/campaign.md``.
"""

from repro.campaignd.cells import (
    SPEC_FORMAT,
    SpecError,
    cell_key,
    cell_to_spec,
    spec_to_cell,
    workload_from_spec,
    workload_to_spec,
)
from repro.campaignd.drivers import (
    LocalDriver,
    RetryPolicy,
    SubprocessDriver,
)
from repro.campaignd.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    JournalReplay,
    read_journal,
)
from repro.campaignd.queue import QueuePlan, WorkQueue
from repro.campaignd.service import CampaignService
from repro.campaignd.stream import (
    StatusServer,
    follow_status,
    stream_events,
)
from repro.campaignd.worker import worker_main

__all__ = [
    "JOURNAL_FORMAT",
    "SPEC_FORMAT",
    "CampaignJournal",
    "CampaignService",
    "JournalReplay",
    "LocalDriver",
    "QueuePlan",
    "RetryPolicy",
    "SpecError",
    "StatusServer",
    "SubprocessDriver",
    "WorkQueue",
    "cell_key",
    "cell_to_spec",
    "follow_status",
    "read_journal",
    "spec_to_cell",
    "stream_events",
    "worker_main",
    "workload_from_spec",
    "workload_to_spec",
]
