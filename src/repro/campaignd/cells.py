"""Portable cell specs: serialise a :class:`RunCell` across processes.

The campaign service persists cells in its journal and ships them to
``repro worker`` subprocesses, so a cell needs a rendering that (a)
round-trips exactly — the rebuilt cell must produce the same
content-addressed cache key as the original — and (b) is plain JSON,
so journals and worker hand-off files stay greppable and host-neutral.

:func:`encode_value` is the reversible twin of the one-way canonical
rendering in :mod:`repro.parallel.cache`: the same value classes
(primitives, floats, enums, nested dataclasses, containers) with
enough type information retained — ``module:QualName`` import paths —
to reconstruct the value.  Reconstruction only imports from the
``repro`` package: a journal is data, not a code-execution vector.

Workload recipes are not dataclasses; their instance ``__dict__`` *is*
their state (the property :func:`repro.parallel.cache.workload_spec`
already relies on).  :func:`spec_to_cell` therefore rebuilds a recipe
structurally — allocate the class, restore the dict — instead of
replaying its constructor, so derived constructor state round-trips
bit-exactly.
"""

import dataclasses
import enum
import importlib
import json

from repro.parallel.cache import CacheKeyError, cache_key
from repro.parallel.executor import RunCell

#: Bump when the spec rendering changes incompatibly; readers treat a
#: mismatched spec as unreadable rather than guessing.
SPEC_FORMAT = 1

#: Only classes under this package root may be imported while decoding.
_TRUSTED_ROOT = "repro"


class SpecError(ValueError):
    """A value cannot be rendered as (or rebuilt from) a cell spec."""


def _symbol_path(cls):
    """The ``module:QualName`` import path of *cls*."""
    return f"{cls.__module__}:{cls.__qualname__}"


def _import_symbol(path):
    """Resolve a ``module:QualName`` path inside the trusted package."""
    try:
        module_name, qualname = path.split(":")
    except ValueError:
        raise SpecError(f"malformed symbol path {path!r}") from None
    root = module_name.split(".")[0]
    if root != _TRUSTED_ROOT:
        raise SpecError(
            f"refusing to import {path!r}: cell specs may only "
            f"reference {_TRUSTED_ROOT}.* classes"
        )
    try:
        target = importlib.import_module(module_name)
    except ImportError as error:
        raise SpecError(f"cannot import {path!r}: {error}") from None
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise SpecError(f"{path!r} does not resolve")
    return target


def encode_value(value):
    """Render *value* as reversible, JSON-serialisable structure.

    Covers exactly the value classes experiment inputs are made of;
    anything else raises :class:`SpecError` — a loud failure beats a
    spec that silently drops state.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"$float": repr(value)}
    if isinstance(value, enum.Enum):
        return {
            "$enum": _symbol_path(type(value)),
            "member": value.name,
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "$dataclass": _symbol_path(type(value)),
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"$list": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        rendered = sorted(
            (encode_value(item) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
        kind = "$frozenset" if isinstance(value, frozenset) else "$set"
        return {kind: rendered}
    if isinstance(value, dict):
        return {
            "$dict": [
                [encode_value(key), encode_value(val)]
                for key, val in value.items()
            ]
        }
    raise SpecError(
        f"cannot render {type(value).__qualname__!r} value "
        f"{value!r} in a cell spec"
    )


def decode_value(rendered):
    """Rebuild the value :func:`encode_value` rendered."""
    if rendered is None or isinstance(rendered, (bool, int, str)):
        return rendered
    if isinstance(rendered, list):
        raise SpecError(
            "bare lists do not appear in cell specs; expected a "
            "$list wrapper"
        )
    if not isinstance(rendered, dict) or len(rendered) == 0:
        raise SpecError(f"unreadable spec value {rendered!r}")
    if "$float" in rendered:
        return float(rendered["$float"])
    if "$enum" in rendered:
        cls = _import_symbol(rendered["$enum"])
        try:
            return cls[rendered["member"]]
        except KeyError:
            raise SpecError(
                f"{rendered['$enum']} has no member "
                f"{rendered.get('member')!r}"
            ) from None
    if "$dataclass" in rendered:
        cls = _import_symbol(rendered["$dataclass"])
        if not dataclasses.is_dataclass(cls):
            raise SpecError(
                f"{rendered['$dataclass']} is not a dataclass"
            )
        fields = {
            name: decode_value(value)
            for name, value in rendered["fields"].items()
        }
        return cls(**fields)
    if "$tuple" in rendered:
        return tuple(decode_value(item) for item in rendered["$tuple"])
    if "$list" in rendered:
        return [decode_value(item) for item in rendered["$list"]]
    if "$set" in rendered:
        return {decode_value(item) for item in rendered["$set"]}
    if "$frozenset" in rendered:
        return frozenset(
            decode_value(item) for item in rendered["$frozenset"]
        )
    if "$dict" in rendered:
        return {
            decode_value(key): decode_value(value)
            for key, value in rendered["$dict"]
        }
    raise SpecError(f"unknown spec tag in {sorted(rendered)!r}")


def workload_to_spec(workload):
    """Reversible spec of a workload recipe: class plus ``__dict__``."""
    return {
        "class": _symbol_path(type(workload)),
        "state": {
            name: encode_value(value)
            for name, value in vars(workload).items()
        },
    }


def workload_from_spec(spec):
    """Rebuild a workload recipe structurally (no constructor replay).

    The class is allocated and its instance dict restored verbatim, so
    any state the constructor derived (region layouts, phase tables)
    comes back bit-exact instead of being re-derived under possibly
    different defaults.
    """
    cls = _import_symbol(spec["class"])
    if isinstance(cls, type) and dataclasses.is_dataclass(cls):
        raise SpecError(
            f"{spec['class']} is a dataclass; encode it as a value"
        )
    workload = cls.__new__(cls)
    workload.__dict__.update({
        name: decode_value(value)
        for name, value in spec["state"].items()
    })
    return workload


def cell_to_spec(cell):
    """Render a :class:`RunCell` as a portable JSON-ready spec."""
    return {
        "format": SPEC_FORMAT,
        "config": encode_value(cell.config),
        "workload": workload_to_spec(cell.workload),
        "seed": cell.seed,
        "max_references": cell.max_references,
        "sanitize": cell.sanitize,
        "chunk_refs": cell.chunk_refs,
        "label": cell.label,
        "observe": cell.observe,
        "epoch_refs": cell.epoch_refs,
    }


def spec_to_cell(spec):
    """Rebuild the :class:`RunCell` a spec describes."""
    if not isinstance(spec, dict):
        raise SpecError(f"cell spec must be an object, got {spec!r}")
    if spec.get("format") != SPEC_FORMAT:
        raise SpecError(
            f"unsupported cell spec format {spec.get('format')!r} "
            f"(this build reads format {SPEC_FORMAT})"
        )
    return RunCell(
        config=decode_value(spec["config"]),
        workload=workload_from_spec(spec["workload"]),
        seed=spec["seed"],
        max_references=spec["max_references"],
        sanitize=spec.get("sanitize"),
        chunk_refs=spec.get("chunk_refs", 0),
        label=spec.get("label"),
        observe=spec.get("observe", False),
        epoch_refs=spec.get("epoch_refs", 1),
    )


def cell_key(cell):
    """The cell's content-addressed cache key, or ``None``.

    ``None`` means the cell's inputs have no canonical rendering
    (:class:`~repro.parallel.cache.CacheKeyError`): such a cell can be
    simulated but never skip-completed, because there is no stable
    identity to resume against.
    """
    try:
        return cache_key(
            cell.config, cell.workload, cell.seed, cell.max_references
        )
    except CacheKeyError:
        return None


__all__ = [
    "SPEC_FORMAT",
    "SpecError",
    "cell_key",
    "cell_to_spec",
    "decode_value",
    "encode_value",
    "spec_to_cell",
    "workload_from_spec",
    "workload_to_spec",
]
