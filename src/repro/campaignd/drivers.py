"""Drivers: interchangeable execution backends for the campaign service.

A driver's whole contract is one method::

    driver.run(cells, pending, record)

where ``cells`` is the full :class:`~repro.parallel.executor.RunCell`
list, ``pending`` the indices to simulate, and ``record(index,
outcome)`` the service's single-threaded callback — called once per
pending index with a :class:`~repro.machine.runner.RunResult` on
success or an exception on failure, always from the calling process.
Drivers never touch the journal, the cache of record, or the sink;
the service owns those, which is what keeps every backend's resume
and telemetry semantics identical.

Two backends ship:

:class:`LocalDriver`
    Today's in-process / process-pool / lockstep-fleet paths, via
    :func:`repro.parallel.run_pending`.  Cannot enforce per-cell
    timeouts (a stuck pool worker cannot be killed without killing
    the pool), and says so through ``supports_timeout``.
:class:`SubprocessDriver`
    Round-robin shards pending cells over ``repro worker``
    subprocesses that coordinate only through a shared cache
    directory — the multi-host sharding story, exercised on one
    host.  Workers stream results back as JSON lines; because cells
    are independent and results content-addressed, any shard count
    merges to the bit-identical campaign.

:class:`RetryPolicy` is the service-level knob bundle (attempts,
backoff, per-cell timeout) that the service applies around whichever
driver it drives.
"""

import json
import os
import queue
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.campaignd.cells import cell_to_spec
from repro.parallel.cache import result_from_payload
from repro.parallel.executor import run_pending


@dataclass(frozen=True)
class RetryPolicy:
    """How the service re-drives failed cells.

    ``retries`` extra attempts per campaign (0 = fail fast);
    ``backoff_seconds`` is the base of the exponential sleep between
    attempts (attempt *n* sleeps ``backoff_seconds * 2**(n-1)``);
    ``timeout_seconds`` bounds one worker shard's wall-clock time and
    requires a driver with ``supports_timeout``.
    """

    retries: int = 0
    backoff_seconds: float = 0.5
    timeout_seconds: Optional[float] = None

    def sleep_before(self, attempt):
        """Backoff delay (seconds) before retry *attempt* (1-based)."""
        if attempt <= 0 or self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * (2 ** (attempt - 1))


class LocalDriver:
    """Run pending cells in this process (serial, pool, or fleet).

    The campaign service's default backend: a thin adapter over
    :func:`repro.parallel.run_pending`, so service campaigns inherit
    the exact execution semantics — and bit-identical results — of
    :func:`~repro.parallel.execute_cells`.
    """

    #: A stuck pool worker cannot be killed individually, so the
    #: service refuses timeout policies on this driver up front.
    supports_timeout = False
    #: Results come back through ``record`` only; the service stores
    #: them into the cache itself.
    stores_results = False

    def __init__(self, workers=1, fleet=False, sink=None):
        self.workers = workers
        self.fleet = fleet
        self.sink = sink

    def describe(self):
        """One-line rendering for status output and logs."""
        if self.fleet:
            return "local(fleet)"
        return f"local(workers={self.workers})"

    def run(self, cells, pending, record):
        """Simulate *pending* and feed every outcome to ``record``."""
        run_pending(cells, pending, record, workers=self.workers,
                    fleet=self.fleet, sink=self.sink)


class _Shard:
    """One worker subprocess and its reporting state."""

    def __init__(self, number, indices, proc, stderr_path):
        self.number = number
        self.indices = indices
        self.proc = proc
        self.stderr_path = stderr_path
        self.reported = set()
        self.timed_out = False


def _pump(shard, events):
    """Reader thread: forward one shard's stdout lines to the queue."""
    try:
        for line in shard.proc.stdout:
            events.put((shard, line))
    finally:
        shard.proc.stdout.close()
        events.put((shard, None))


def _stderr_tail(path, limit=800):
    """Last *limit* characters of a worker's captured stderr."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError:
        return ""
    return text[-limit:].strip()


class SubprocessDriver:
    """Shard pending cells over ``repro worker`` subprocesses.

    Each worker gets a spec file (its shard of cells, round-robin in
    cell order) and the shared ``cache_dir``; results stream back as
    JSON lines on the worker's stdout and are fed to ``record`` from
    the parent — never from a thread — preserving the service's
    single-threaded record contract.  Worker stderr goes to temp
    files, not pipes, so a chatty worker can never deadlock the
    parent; the tail is attached to the diagnosis when a worker dies.

    ``worker_args`` is appended to every worker command line (e.g.
    ``("--delay-seconds", "0.2")`` in timeout tests).  A per-shard
    ``timeout_seconds`` deadline kills overdue workers and records a
    :class:`TimeoutError` for their unreported cells.
    """

    supports_timeout = True

    def __init__(self, workers=2, cache_dir=None, worker_args=(),
                 timeout_seconds=None):
        self.workers = max(1, int(workers))
        self.cache_dir = cache_dir
        self.worker_args = tuple(worker_args)
        self.timeout_seconds = timeout_seconds

    @property
    def stores_results(self):
        """Workers store into the shared cache when one is shared."""
        return self.cache_dir is not None

    def describe(self):
        """One-line rendering for status output and logs."""
        return f"subprocess(workers={self.workers})"

    def _command(self, spec_path):
        command = [
            sys.executable, "-m", "repro", "worker",
            "--cells", spec_path,
        ]
        if self.cache_dir is not None:
            command += ["--cache-dir", str(self.cache_dir)]
        command += list(self.worker_args)
        return command

    def _environment(self):
        # Workers must import the same repro the parent runs, wherever
        # the parent found it (src/ checkout or installed).
        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        return env

    def _spawn(self, number, indices, cells, workdir, env):
        spec_path = os.path.join(workdir, f"shard-{number}.jsonl")
        with open(spec_path, "w", encoding="utf-8") as handle:
            for index in indices:
                handle.write(json.dumps({
                    "index": index,
                    "cell": cell_to_spec(cells[index]),
                }, sort_keys=True) + "\n")
        stderr_path = os.path.join(workdir, f"shard-{number}.stderr")
        proc = subprocess.Popen(
            self._command(spec_path),
            stdout=subprocess.PIPE,
            stderr=open(stderr_path, "w", encoding="utf-8"),
            env=env,
            text=True,
        )
        return _Shard(number, indices, proc, stderr_path)

    def run(self, cells, pending, record):
        """Simulate *pending* across worker subprocesses."""
        if not pending:
            return
        shard_count = min(self.workers, len(pending))
        assignments = [
            pending[offset::shard_count] for offset in range(shard_count)
        ]
        events = queue.Queue()
        deadline = (
            time.monotonic() + self.timeout_seconds
            if self.timeout_seconds is not None else None
        )
        with tempfile.TemporaryDirectory(prefix="repro-shards-") as workdir:
            env = self._environment()
            shards = [
                self._spawn(number, indices, cells, workdir, env)
                for number, indices in enumerate(assignments)
            ]
            threads = [
                threading.Thread(
                    target=_pump, args=(shard, events), daemon=True
                )
                for shard in shards
            ]
            for thread in threads:
                thread.start()
            open_streams = len(shards)
            while open_streams:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                try:
                    shard, line = events.get(
                        timeout=timeout if deadline is not None else None
                    )
                except queue.Empty:
                    # Deadline passed with shards still running: kill
                    # them.  Their streams close, the pumps signal EOF,
                    # and the drain below records the timeouts.
                    for shard in shards:
                        if shard.proc.poll() is None:
                            shard.timed_out = True
                            shard.proc.kill()
                    deadline = None
                    continue
                if line is None:
                    open_streams -= 1
                    continue
                self._handle_line(shard, line, record)
            for shard in shards:
                shard.proc.wait()
            for thread in threads:
                thread.join()
            for shard in shards:
                self._drain_unreported(shard, record)

    def _handle_line(self, shard, line, record):
        """Fold one worker stdout line into the campaign (main thread)."""
        line = line.strip()
        if not line:
            return
        try:
            event = json.loads(line)
        except ValueError:
            return
        if not isinstance(event, dict):
            return
        kind = event.get("type")
        if kind == "worker_cell_done":
            index = event.get("index")
            if index not in shard.reported:
                shard.reported.add(index)
                try:
                    result = result_from_payload(event["result"])
                except (KeyError, TypeError) as error:
                    record(index, RuntimeError(
                        f"worker {shard.number} sent an undecodable "
                        f"result for cell {index}: {error}"
                    ))
                else:
                    record(index, result)
        elif kind == "worker_cell_failed":
            index = event.get("index")
            if index not in shard.reported:
                shard.reported.add(index)
                record(index, RuntimeError(
                    event.get("error", "worker reported failure")
                ))

    def _drain_unreported(self, shard, record):
        """Record an outcome for every cell the shard never reported."""
        missing = [
            index for index in shard.indices
            if index not in shard.reported
        ]
        if not missing:
            return
        if shard.timed_out:
            for index in missing:
                record(index, TimeoutError(
                    f"worker {shard.number} exceeded "
                    f"{self.timeout_seconds}s and was killed before "
                    f"reporting cell {index}"
                ))
            return
        tail = _stderr_tail(shard.stderr_path)
        detail = f" stderr: {tail}" if tail else ""
        for index in missing:
            record(index, RuntimeError(
                f"worker {shard.number} exited with code "
                f"{shard.proc.returncode} before reporting cell "
                f"{index}.{detail}"
            ))


__all__ = ["LocalDriver", "RetryPolicy", "SubprocessDriver"]
