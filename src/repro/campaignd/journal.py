"""Append-only campaign journal: the durable half of the work queue.

One JSON line per record, written next to the
:class:`~repro.parallel.cache.ResultCache`.  The journal is the
campaign's crash log and resume ledger in one file:

``campaign_planned``
    The cell grid this campaign intends to run (keys and labels) —
    informational; replays ignore unknown grids because done-ness is
    keyed by content-addressed cell key, not by position.
``cell_done``
    One completed cell, with its serialised
    :class:`~repro.machine.runner.RunResult` payload embedded, so a
    journal alone (no cache directory) can resume a campaign.
``cell_failed``
    One permanently failed cell with its diagnosis.

Appends are crash-safe: each record is written, flushed, and (by
default) fsynced before :meth:`CampaignJournal.append` returns, so a
``kill -9`` can lose at most the record being written — never a
completed one.  :func:`read_journal` is the tolerant reader: a torn
final line (the kill signature) is counted and skipped, a corrupt
record anywhere is counted and skipped, and everything after keeps
its meaning because records are self-describing.
"""

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.observe.sinks import stamp

#: Bump when record semantics change; replays ignore other formats.
JOURNAL_FORMAT = 1


@dataclass
class JournalReplay:
    """Everything a journal says about prior campaign progress.

    ``results`` maps cell key to the *latest* embedded result payload
    (append-only journals may record a key twice; last wins).
    ``failures`` maps cell key to the latest failure diagnosis, minus
    keys that later completed.  ``corrupt_records`` counts skipped
    undecodable lines; ``torn_tail`` flags a truncated final line —
    the normal signature of a killed campaign, not an error.
    """

    results: Dict[str, dict] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    records: int = 0
    corrupt_records: int = 0
    torn_tail: bool = False
    planned_cells: int = 0

    @property
    def completed(self):
        """Number of distinct completed cell keys on record."""
        return len(self.results)


def _decode_record(line):
    """Parse one journal line; ``None`` if it is not a valid record."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or "type" not in record:
        return None
    if record.get("format") != JOURNAL_FORMAT:
        return None
    return record


def read_journal(path):
    """Replay a journal file into a :class:`JournalReplay`.

    A missing file replays empty — a fresh campaign.  Corrupt records
    and a torn final line are skipped and counted rather than raised:
    recovery is the point of the journal, so the reader must survive
    exactly the crashes it exists to record.
    """
    replay = JournalReplay()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return replay
    last = len(lines) - 1
    for number, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        record = _decode_record(stripped)
        if record is None:
            if number == last and not line.endswith("\n"):
                replay.torn_tail = True
            else:
                replay.corrupt_records += 1
            continue
        replay.records += 1
        kind = record["type"]
        if kind == "cell_done":
            key = record.get("key")
            payload = record.get("result")
            if isinstance(key, str) and isinstance(payload, dict):
                replay.results[key] = payload
                replay.failures.pop(key, None)
            else:
                replay.corrupt_records += 1
        elif kind == "cell_failed":
            key = record.get("key")
            if isinstance(key, str) and key not in replay.results:
                replay.failures[key] = str(record.get("error", ""))
        elif kind == "campaign_planned":
            replay.planned_cells = max(
                replay.planned_cells, record.get("cells", 0)
            )
    return replay


class CampaignJournal:
    """Writer over one append-only journal file.

    Parameters
    ----------
    path:
        Journal file location; parent directories are created.
    fsync:
        Force each record to stable storage before returning (the
        default).  Cells take orders of magnitude longer to simulate
        than an fsync takes, so durability is effectively free here;
        pass ``False`` for throwaway journals in tests.
    """

    def __init__(self, path, fsync=True):
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._handle = None

    def _ensure_open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record):
        """Durably append one record (stamped, flushed, fsynced)."""
        record = dict(record)
        record["format"] = JOURNAL_FORMAT
        handle = self._ensure_open()
        handle.write(
            json.dumps(stamp(record), sort_keys=True,
                       separators=(",", ":"))
            + "\n"
        )
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def plan(self, keys, labels):
        """Record the campaign grid (informational, replay-ignored)."""
        self.append({
            "type": "campaign_planned",
            "cells": len(keys),
            "keys": [key for key in keys if key is not None],
            "labels": [label for label in labels if label is not None],
        })

    def cell_done(self, index, key, label, payload):
        """Record one completed cell with its embedded result."""
        self.append({
            "type": "cell_done",
            "index": index,
            "key": key,
            "label": label,
            "result": payload,
        })

    def cell_failed(self, index, key, label, error):
        """Record one permanently failed cell."""
        self.append({
            "type": "cell_failed",
            "index": index,
            "key": key,
            "label": label,
            "error": error,
        })

    def replay(self):
        """Read this journal back (see :func:`read_journal`)."""
        # Replays read the file fresh rather than any in-memory state,
        # so a writer and a post-crash reader see identical history.
        return read_journal(self.path)

    def close(self):
        """Close the underlying file handle (reopened on next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    @classmethod
    def coerce(cls, journal):
        """Accept a path, an instance, or ``None`` (journal off)."""
        if journal is None or isinstance(journal, cls):
            return journal
        return cls(journal)


__all__ = [
    "JOURNAL_FORMAT",
    "CampaignJournal",
    "JournalReplay",
    "read_journal",
]
