"""The resumable work queue: which cells still need simulating.

:class:`WorkQueue` folds three sources of done-ness into one plan:

1. the :class:`~repro.parallel.cache.ResultCache` — authoritative,
   content-addressed, shared between hosts;
2. the campaign journal's embedded result payloads — what survives
   when there is no cache directory (or the cache was cleared);
3. neither — the cell is pending and goes to a driver.

Identity is the content-addressed cell key from
:func:`repro.campaignd.cells.cell_key`: the same hash the cache files
are named by.  That makes resume robust against grid edits — adding,
removing, or reordering cells changes *which* keys the campaign wants,
never what a completed key means — and it is why restarting a
half-done campaign recomputes nothing: every completed cell's key
resolves before any driver is consulted.

Cells whose inputs cannot be canonically hashed (``cell_key`` returns
``None``) are always pending; with no stable identity there is nothing
safe to resume.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.campaignd.cells import cell_key
from repro.parallel.cache import result_from_payload


@dataclass
class QueuePlan:
    """The resolved state of a campaign's cells before driving.

    ``results`` has one slot per cell, pre-filled where a cell
    resolved from the cache (``cached`` indices) or from journal
    payloads (``resumed`` indices); ``pending`` lists the indices a
    driver must simulate, in cell order.
    """

    results: List[Optional[object]] = field(default_factory=list)
    keys: List[Optional[str]] = field(default_factory=list)
    cached: List[int] = field(default_factory=list)
    resumed: List[int] = field(default_factory=list)
    pending: List[int] = field(default_factory=list)

    @property
    def completed(self):
        """Indices resolved without simulation, in cell order."""
        return sorted(self.cached + self.resumed)


class WorkQueue:
    """Resolves a cell list against a journal and a result cache."""

    def __init__(self, cells, journal=None, cache=None):
        self.cells = list(cells)
        self.journal = journal
        self.cache = cache
        self.keys = [cell_key(cell) for cell in self.cells]

    def resolve(self):
        """Build the :class:`QueuePlan` for the current cell list.

        The cache is consulted first (it is the shared, authoritative
        store and its hit counters are what the zero-recomputation
        assertions read); journal payloads fill in for cells the cache
        does not hold.  A journal payload that no longer deserialises
        is treated as not-done — recompute, never guess.
        """
        replay = (self.journal.replay() if self.journal is not None
                  else None)
        plan = QueuePlan(
            results=[None] * len(self.cells), keys=list(self.keys)
        )
        for index, key in enumerate(self.keys):
            if key is None:
                plan.pending.append(index)
                continue
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    plan.results[index] = hit
                    plan.cached.append(index)
                    continue
            if replay is not None and key in replay.results:
                try:
                    result = result_from_payload(replay.results[key])
                except (KeyError, TypeError):
                    result = None
                if result is not None:
                    plan.results[index] = result
                    plan.resumed.append(index)
                    # Heal the cache: the journal proves the work was
                    # done, so future campaigns (and other hosts)
                    # should hit instead of resuming record by record.
                    if self.cache is not None:
                        self.cache.put(key, result)
                    continue
            plan.pending.append(index)
        return plan


__all__ = ["QueuePlan", "WorkQueue"]
