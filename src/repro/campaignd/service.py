"""The campaign service: queue + journal + driver + telemetry, in one.

:class:`CampaignService` is the long-running promotion of
:func:`~repro.parallel.execute_cells`.  Its run loop:

1. resolve the :class:`~repro.campaignd.queue.WorkQueue` — every cell
   whose content-addressed key is already in the cache or the journal
   is completed before any driver starts (this is resume);
2. journal the plan, then replay completed cells into the sink and
   progress reporter (``cell_cached`` / ``cell_resumed`` events);
3. drive the pending subset through the configured driver, journaling
   every completed cell durably *before* its events are emitted —
   kill the process at any instant and the journal still holds every
   finished result;
4. re-drive failed cells per the :class:`~repro.campaignd.drivers.
   RetryPolicy`, with exponential backoff, until they succeed or
   attempts run out;
5. raise :class:`~repro.parallel.executor.CampaignError` carrying the
   partial results if any cell failed permanently, else return the
   full result list — bit-identical to a one-shot
   ``execute_cells`` run of the same grid, whatever the driver.

The service is the only writer of the journal and the only caller of
``record``-side effects; drivers just produce outcomes.  That single
ownership is what keeps resume semantics identical across local
pools, lockstep fleets, and worker subprocesses.
"""

import time

from repro.campaignd.drivers import LocalDriver, RetryPolicy
from repro.campaignd.journal import CampaignJournal
from repro.campaignd.queue import WorkQueue
from repro.observe.progress import CampaignProgress
from repro.observe.sinks import emit_cell, emit_run, stamp
from repro.parallel.cache import result_to_payload
from repro.parallel.executor import CampaignError, _failure


class CampaignService:
    """Resumable, retrying execution of one campaign cell grid.

    Parameters
    ----------
    cells:
        Iterable of :class:`~repro.parallel.executor.RunCell`.
    journal:
        Path or :class:`~repro.campaignd.journal.CampaignJournal`;
        ``None`` disables durability (the service degrades to a
        retrying ``execute_cells``).
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache` shared
        with other campaigns and hosts.
    driver:
        Execution backend (defaults to a serial
        :class:`~repro.campaignd.drivers.LocalDriver`).
    retry:
        :class:`~repro.campaignd.drivers.RetryPolicy`; a timeout in
        the policy requires a driver with ``supports_timeout`` and is
        rejected loudly otherwise.
    sink / progress:
        Same contracts as :func:`~repro.parallel.execute_cells`.
    """

    def __init__(self, cells, journal=None, cache=None, driver=None,
                 retry=None, sink=None, progress=None):
        self.cells = list(cells)
        self.journal = CampaignJournal.coerce(journal)
        self.cache = cache
        self.driver = driver if driver is not None else LocalDriver()
        self.retry = retry if retry is not None else RetryPolicy()
        self.sink = sink
        self.progress = progress
        if self.retry.timeout_seconds is not None:
            if not getattr(self.driver, "supports_timeout", False):
                raise ValueError(
                    f"retry policy sets timeout_seconds="
                    f"{self.retry.timeout_seconds} but driver "
                    f"{self.driver.describe()} cannot enforce "
                    f"timeouts; use SubprocessDriver"
                )
            self.driver.timeout_seconds = self.retry.timeout_seconds

    def run(self):
        """Execute the campaign; returns results in cell order.

        Raises :class:`~repro.parallel.executor.CampaignError` (with
        partial results attached) if any cell fails all attempts.
        """
        plan = WorkQueue(
            self.cells, journal=self.journal, cache=self.cache
        ).resolve()
        progress = CampaignProgress.coerce(self.progress, len(self.cells))
        sink = self.sink
        if sink is not None:
            sink.emit(stamp({
                "type": "campaign_started",
                "cells": len(self.cells),
                "cached": len(plan.cached),
                "resumed": len(plan.resumed),
                "pending": len(plan.pending),
                "driver": self.driver.describe(),
            }))
        if self.journal is not None:
            self.journal.plan(
                plan.keys, [cell.label for cell in self.cells]
            )
        for index in plan.cached:
            emit_cell(sink, "cell_cached", index, self.cells[index])
            if progress is not None:
                progress.cell_cached()
        for index in plan.resumed:
            emit_cell(sink, "cell_resumed", index, self.cells[index])
            if progress is not None:
                progress.cell_resumed()

        results = plan.results
        errors = {}
        # The parent stores results unless the driver's workers
        # already share the cache directory (SubprocessDriver).
        store_here = (
            self.cache is not None
            and not getattr(self.driver, "stores_results", False)
        )
        remaining = list(plan.pending)
        attempt = 0
        while remaining:
            failed_now = []

            def record(index, outcome, _failed=failed_now,
                       _attempt=attempt):
                cell = self.cells[index]
                key = plan.keys[index]
                if isinstance(outcome, BaseException):
                    errors[index] = outcome
                    _failed.append(index)
                    emit_cell(
                        sink, "cell_attempt_failed", index, cell,
                        attempt=_attempt,
                        error=f"{type(outcome).__name__}: {outcome}",
                    )
                    return
                results[index] = outcome
                errors.pop(index, None)
                if store_here and key is not None:
                    self.cache.put(key, outcome)
                # Journal before telemetry: once a cell's events are
                # visible, its result must already be durable.
                if self.journal is not None:
                    self.journal.cell_done(
                        index, key, cell.label,
                        result_to_payload(outcome),
                    )
                emit_run(sink, outcome, label=cell.label)
                emit_cell(sink, "cell_finished", index, cell)
                if progress is not None:
                    progress.cell_finished()

            self.driver.run(self.cells, remaining, record)
            if not failed_now or attempt >= self.retry.retries:
                break
            attempt += 1
            delay = self.retry.sleep_before(attempt)
            if sink is not None:
                sink.emit(stamp({
                    "type": "campaign_retry",
                    "attempt": attempt,
                    "cells": len(failed_now),
                    "delay_seconds": round(delay, 6),
                }))
            if delay > 0:
                time.sleep(delay)
            remaining = failed_now

        failures = []
        for index in sorted(errors):
            cell = self.cells[index]
            failure = _failure(index, cell, errors[index])
            failures.append(failure)
            if self.journal is not None:
                self.journal.cell_failed(
                    index, plan.keys[index], cell.label, failure.error
                )
            emit_cell(sink, "cell_failed", index, cell,
                      error=failure.error)
            if progress is not None:
                progress.cell_failed()
        if progress is not None:
            progress.finish()
        if sink is not None:
            sink.emit(stamp({
                "type": "campaign_finished",
                "cells": len(self.cells),
                "cached": len(plan.cached),
                "resumed": len(plan.resumed),
                "computed": len(plan.pending) - len(failures),
                "failed": len(failures),
            }))
        if self.journal is not None:
            self.journal.close()
        if failures:
            raise CampaignError(failures, results)
        return results


__all__ = ["CampaignService"]
