"""Live campaign status over a socket.

:class:`StatusServer` is a trace *sink* (it satisfies the same
``emit(dict)`` contract as :class:`~repro.observe.sinks.JsonlSink`)
that broadcasts every event to connected TCP clients as JSON lines —
the JSONL trace vocabulary, extended over a socket.  A client that
connects mid-campaign first receives the full event history, then
live events, so ``repro campaign status`` always renders a coherent
picture regardless of when it attaches.

Events are emitted from the campaign's main thread (the service's
single-threaded ``record`` contract); the only other toucher is the
accept thread handing history to a new client, and a lock covers the
handoff so history + live streams never interleave out of order.
Slow or vanished clients are dropped, never waited on — status is a
spectator, and a stuck spectator must not stall the campaign.

:func:`stream_events` is the client half: a generator of decoded
events from a serving campaign, used by ``repro campaign status`` and
the tests.  :func:`follow_status` folds a stream into a rendered
progress line per event.
"""

import json
import socket
import threading

from repro.observe.progress import CampaignProgress

#: Events that end a status stream: after one of these the server has
#: nothing further to say.  ``campaign_serve_finished`` closes a
#: ``repro campaign serve`` session (which runs several table
#: campaigns back to back, so the per-campaign ``campaign_finished``
#: events are milestones, not the end); plain EOF — the server
#: closing — always terminates the stream too.
TERMINAL_EVENTS = ("campaign_serve_finished",)


class StatusServer:
    """Broadcasts campaign events to socket clients; acts as a sink.

    Parameters
    ----------
    host / port:
        Listen address; port 0 (default) picks an ephemeral port —
        read the actual one from :attr:`port` after construction.
    sink:
        Optional inner sink every event is forwarded to first, so a
        served campaign can still write its JSONL trace.
    closing_event:
        Optional event template broadcast by :meth:`close` right
        before clients are disconnected (``repro campaign serve``
        passes ``{"type": "campaign_serve_finished"}``).  The server
        fills in ``failed`` with the count of ``cell_failed`` events
        it relayed, so followers can derive an exit code.  Emitting
        on close — rather than asking the campaign code to — means
        the terminal event survives whichever layer closes the sink
        first.
    """

    def __init__(self, host="127.0.0.1", port=0, sink=None,
                 closing_event=None):
        self.sink = sink
        self.closing_event = (
            dict(closing_event) if closing_event else None
        )
        self._failed = 0
        self._server = socket.create_server((host, port))
        self._clients = []
        self._history = []
        self._lock = threading.Lock()
        self._closed = False
        self._acceptor = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._acceptor.start()

    @property
    def address(self):
        """``(host, port)`` the server is listening on."""
        return self._server.getsockname()[:2]

    @property
    def port(self):
        """The bound port (useful with ``port=0``)."""
        return self.address[1]

    def _accept_loop(self):
        while True:
            try:
                client, _ = self._server.accept()
            except OSError:
                return  # server socket closed
            with self._lock:
                try:
                    for line in self._history:
                        client.sendall(line)
                except OSError:
                    client.close()
                    continue
                self._clients.append(client)

    def emit(self, event):
        """Forward *event* to the inner sink and every client."""
        if event.get("type") == "cell_failed":
            self._failed += 1
        if self.sink is not None:
            self.sink.emit(event)
        line = (
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        with self._lock:
            self._history.append(line)
            alive = []
            for client in self._clients:
                try:
                    client.sendall(line)
                    alive.append(client)
                except OSError:
                    client.close()
            self._clients = alive

    def close(self):
        """Stop accepting, close every client, close the inner sink.

        Broadcasts the ``closing_event`` (if configured) first, so
        followers learn the session ended instead of seeing a bare
        EOF."""
        if self._closed:
            return
        self._closed = True
        if self.closing_event is not None:
            from repro.observe.sinks import stamp

            event = dict(self.closing_event)
            event.setdefault("failed", self._failed)
            self.emit(stamp(event))
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            for client in self._clients:
                try:
                    client.close()
                except OSError:
                    pass
            self._clients = []
        if self.sink is not None:
            self.sink.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def stream_events(host="127.0.0.1", port=0, timeout=None,
                  stop_after_terminal=True):
    """Yield decoded events from a serving campaign.

    Connects to a :class:`StatusServer`, yields each event dict as it
    arrives (history first, then live), and returns at EOF — or, with
    ``stop_after_terminal`` (the default), right after a
    ``campaign_finished`` event, so followers exit when the campaign
    does instead of waiting for the server to shut down.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        buffer = b""
        while True:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                return
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(event, dict):
                    continue
                yield event
                if (stop_after_terminal
                        and event.get("type") in TERMINAL_EVENTS):
                    return


def follow_status(events, stream=None):
    """Render a live progress line per event; returns the last event.

    *events* is any iterable of trace events (typically
    :func:`stream_events`).  Campaign totals come from the
    ``campaign_started`` event; each cell event advances a
    :class:`~repro.observe.progress.CampaignProgress` whose line is
    rendered to *stream* (default stderr).
    """
    progress = CampaignProgress(stream=stream)
    last = None
    for event in events:
        last = event
        kind = event.get("type")
        if kind == "campaign_started":
            progress.start(event.get("cells"))
        elif kind == "cell_cached":
            progress.cell_cached()
        elif kind == "cell_resumed":
            progress.cell_resumed()
        elif kind == "cell_finished":
            progress.cell_finished()
        elif kind == "cell_failed":
            progress.cell_failed()
    progress.finish()
    return last


__all__ = [
    "TERMINAL_EVENTS",
    "StatusServer",
    "follow_status",
    "stream_events",
]
