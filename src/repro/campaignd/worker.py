"""``repro worker``: the subprocess half of the distributed driver.

A worker is handed a shard of cell specs (one JSON object per line,
``{"index": N, "cell": {...}}``) and a shared cache directory, and
reports back over stdout — one JSON event per line, flushed per event
so the parent streams progress instead of waiting for exit:

``worker_started``
    ``{"cells": N, "pid": P}`` once, before any work.
``worker_cell_done``
    One completed cell: the parent-side index, the content-addressed
    key, the serialised result payload, and ``"cached": true`` when
    the shared cache already held it (another worker got there first —
    the skip-completed path working *across* hosts mid-campaign).
``worker_cell_failed``
    One raised cell with its diagnosis; the worker continues with the
    rest of its shard, mirroring the graceful degradation of
    :func:`~repro.parallel.execute_cells`.
``worker_finished``
    Shard summary.  The process exits 0 even when cells failed: cell
    failures are campaign *data*; a nonzero exit means the worker
    itself broke.

Results always ride inline in the done event (so the driver works
with no cache at all) *and* are stored into the shared cache when one
is configured (so other hosts and later resumes hit instead of
recomputing).
"""

import argparse
import json
import os
import sys
import time

from repro.campaignd.cells import SpecError, cell_key, spec_to_cell
from repro.parallel.cache import ResultCache, result_to_payload
from repro.parallel.executor import simulate_cell


def _emit(event):
    """Write one protocol event to stdout, flushed."""
    sys.stdout.write(
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        + "\n"
    )
    sys.stdout.flush()


def read_cell_shard(path):
    """Parse a shard file into ``(index, cell)`` pairs.

    Raises :class:`~repro.campaignd.cells.SpecError` on an unreadable
    entry: a worker fed a corrupt shard must fail loudly, not guess
    which cells it was supposed to run.
    """
    pairs = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as error:
                raise SpecError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from None
            if (not isinstance(entry, dict) or "index" not in entry
                    or "cell" not in entry):
                raise SpecError(
                    f"{path}:{number}: shard entries need 'index' "
                    f"and 'cell'"
                )
            pairs.append((entry["index"], spec_to_cell(entry["cell"])))
    return pairs


def worker_main(argv=None):
    """Entry point of ``repro worker``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "internal: simulate a shard of campaign cells and report "
            "results as JSON lines on stdout"
        ),
    )
    parser.add_argument(
        "--cells", required=True,
        help="shard file: one {'index', 'cell'} JSON object per line",
    )
    parser.add_argument(
        "--cache-dir",
        help="shared result cache; hits skip simulation, results are "
             "stored for other workers and later resumes",
    )
    parser.add_argument(
        "--delay-seconds", type=float, default=0.0,
        help="sleep this long before each cell (testing aid for "
             "timeout and kill handling)",
    )
    args = parser.parse_args(argv)

    try:
        shard = read_cell_shard(args.cells)
    except (OSError, SpecError) as error:
        print(f"repro worker: {error}", file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    _emit({
        "type": "worker_started",
        "cells": len(shard),
        "pid": os.getpid(),
    })
    failed = 0
    for index, cell in shard:
        if args.delay_seconds > 0:
            time.sleep(args.delay_seconds)
        key = cell_key(cell)
        if cache is not None and key is not None:
            hit = cache.get(key)
            if hit is not None:
                _emit({
                    "type": "worker_cell_done",
                    "index": index,
                    "key": key,
                    "cached": True,
                    "result": result_to_payload(hit),
                })
                continue
        try:
            result = simulate_cell(cell)
        except Exception as error:
            failed += 1
            _emit({
                "type": "worker_cell_failed",
                "index": index,
                "key": key,
                "error": f"{type(error).__name__}: {error}",
            })
            continue
        if cache is not None and key is not None:
            cache.put(key, result)
        _emit({
            "type": "worker_cell_done",
            "index": index,
            "key": key,
            "cached": False,
            "result": result_to_payload(result),
        })
    _emit({
        "type": "worker_finished",
        "cells": len(shard),
        "failed": failed,
    })
    return 0


__all__ = ["read_cell_shard", "worker_main"]
