"""Command-line interface: regenerate tables and run experiments.

::

    python -m repro table 3.3            # regenerate one paper table
    python -m repro table 3.4 --source paper
    python -m repro table 4.1 --reps 3 --length 0.5
    python -m repro run --workload slc --memory-ratio 48 \\
        --dirty FAULT --ref MISS
    python -m repro formats              # Figure 3.2 bit layouts
    python -m repro all --out-dir out/   # everything, to files
    python -m repro campaign --workers 4 --cache-dir .repro-cache

All commands print the rendered artefact; ``--out`` / ``--out-dir``
additionally write it to disk.  Everything is seeded and reproducible.
"""

import argparse
import pathlib
import sys

from repro.analysis.experiments import (
    build_table_3_4,
    run_table_3_3,
    run_table_3_5,
    run_table_4_1,
)
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.machine.runner import ExperimentRunner
from repro.observe.series import DEFAULT_EPOCH_REFS
from repro.options import RunOptions
from repro.workloads.base import DEFAULT_CHUNK_REFS
from repro.workloads.catalog import workload_by_name

TABLE_CHOICES = ("2.1", "3.1", "3.2", "3.3", "3.4", "3.5", "4.1")


def _options_from_args(args):
    """Build the :class:`RunOptions` the CLI flags describe.

    Opens a :class:`~repro.observe.sinks.JsonlSink` when ``--trace``
    was given; callers close it via :func:`_close_sink` when the
    command finishes.
    """
    sink = None
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.observe import JsonlSink

        sink = JsonlSink(trace_out)
    return RunOptions(
        workers=getattr(args, "workers", 1),
        fleet=getattr(args, "fleet", False),
        chunk_refs=getattr(args, "chunk_refs", DEFAULT_CHUNK_REFS) or 0,
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
        sanitize=getattr(args, "sanitize", None),
        observe=getattr(args, "observe", False),
        epoch_refs=getattr(args, "epoch_refs", DEFAULT_EPOCH_REFS),
        trace_sink=sink,
        progress=getattr(args, "progress", False) or None,
        journal=getattr(args, "journal", None),
        driver=getattr(args, "driver", None),
        retries=getattr(args, "retries", 0),
        retry_backoff_seconds=getattr(args, "retry_backoff", 0.5),
        cell_timeout_seconds=getattr(args, "cell_timeout", None),
    )


def _runner_from_args(args):
    """Build the ExperimentRunner the CLI flags describe."""
    return ExperimentRunner(options=_options_from_args(args))


def _close_sink(runner):
    """Close the runner's trace sink, if the CLI opened one."""
    sink = runner.options.trace_sink
    if sink is not None:
        sink.close()


def _report_cache(runner):
    """Print cache traffic after a cached command, if any."""
    if runner.cache is not None:
        print(runner.cache.stats_line(), file=sys.stderr)


def _finish(runner):
    """Wrap up a runner-backed command: cache stats, close the sink."""
    _report_cache(runner)
    _close_sink(runner)


def _emit(text, out=None):
    print(text)
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"\nwritten to {path}", file=sys.stderr)


def _workload_by_name(name, length_scale):
    """CLI shim over :func:`repro.workloads.workload_by_name`."""
    try:
        return workload_by_name(name, length_scale=length_scale)
    except ValueError as error:
        raise SystemExit(str(error)) from None


def cmd_table(args):
    """Regenerate one paper table by number."""
    number = args.number
    if number == "2.1":
        # Import locally: the bench module owns the renderer.
        from repro.analysis.tables import Table
        from repro.machine.config import TABLE_2_1

        table = Table("Table 2.1: SPUR System Configuration",
                      ["Parameter", "Value"])
        for label, value in TABLE_2_1:
            table.add_row(label, value)
        _emit(table.render(), args.out)
    elif number == "3.1":
        from repro.analysis.tables import Table
        from repro.policies.dirty import make_dirty_policy

        table = Table(
            "Table 3.1: Dirty Bit Implementation Alternatives",
            ["Policy", "Description"],
        )
        for name in ("FAULT", "FLUSH", "SPUR", "WRITE", "MIN"):
            doc = make_dirty_policy(name).__doc__.strip()
            table.add_row(name, doc.splitlines()[0])
        _emit(table.render(), args.out)
    elif number == "3.2":
        from repro.analysis import paper_data
        from repro.analysis.tables import Table

        times = paper_data.TABLE_3_2
        table = Table("Table 3.2: Time Parameters",
                      ["Parameter", "Cycle Count"])
        for name in ("t_ds", "t_flush", "t_dm", "t_dc"):
            table.add_row(name, getattr(times, name))
        _emit(table.render(), args.out)
    elif number == "3.3":
        runner = _runner_from_args(args)
        _, table = run_table_3_3(length_scale=args.length,
                                 seed=args.seed, runner=runner,
                                 workers=args.workers)
        _emit(table.render(), args.out)
        _finish(runner)
    elif number == "3.4":
        if args.source == "paper":
            _, table = build_table_3_4(
                exclude_zero_fill=not args.include_zero_fill
            )
        else:
            runner = _runner_from_args(args)
            rows, _ = run_table_3_3(length_scale=args.length,
                                    seed=args.seed, runner=runner,
                                    workers=args.workers)
            _, table = build_table_3_4(
                rows, exclude_zero_fill=not args.include_zero_fill
            )
            _finish(runner)
        _emit(table.render(), args.out)
    elif number == "3.5":
        runner = _runner_from_args(args)
        _, table = run_table_3_5(length_scale=args.length,
                                 seed=args.seed, runner=runner,
                                 workers=args.workers)
        _emit(table.render(), args.out)
        _finish(runner)
    elif number == "4.1":
        runner = _runner_from_args(args)
        _, table = run_table_4_1(length_scale=args.length,
                                 repetitions=args.reps, runner=runner,
                                 workers=args.workers)
        _emit(table.render(), args.out)
        _finish(runner)
    return 0


def cmd_run(args):
    """One simulation run; prints the headline measurements."""
    config = scaled_config(
        memory_ratio=args.memory_ratio,
        dirty_policy=args.dirty.upper(),
        reference_policy=args.ref.upper(),
    )
    workload = _workload_by_name(args.workload, args.length)
    runner = _runner_from_args(args)
    result = runner.run(
        config, workload, seed=args.seed,
        label=f"run/{args.workload}",
    )

    lines = [
        f"workload            {result.workload}",
        f"memory              {args.memory_ratio}x cache "
        f"({config.memory_bytes} bytes)",
        f"policies            dirty={result.dirty_policy} "
        f"ref={result.reference_policy}",
        f"references          {result.references:,}",
        f"cycles              {result.cycles:,}",
        f"elapsed (simulated) {result.elapsed_seconds:.2f} s",
        f"page-ins            {result.page_ins:,}",
        f"page-outs           {result.page_outs:,}",
        f"zero-fills          {result.zero_fills:,}",
        f"dirty faults        {result.event(Event.DIRTY_FAULT):,}"
        f" ({result.event(Event.ZERO_FILL_DIRTY_FAULT):,} zero-fill)",
        f"dirty-bit misses    "
        f"{result.event(Event.DIRTY_BIT_MISS):,}",
        f"excess faults       {result.event(Event.EXCESS_FAULT):,}",
        f"reference faults    "
        f"{result.event(Event.REFERENCE_FAULT):,}",
    ]
    observation = result.observation
    if observation is not None:
        lines.append(
            f"observation         {len(observation.samples)} samples "
            f"every {observation.epoch_refs:,} refs"
        )
        for phase in sorted(observation.phases):
            seconds = observation.phases[phase]
            rate = observation.refs_per_second(phase)
            lines.append(
                f"  phase {phase:<9} {seconds:.3f} s host"
                + (f" ({rate:,.0f} refs/s)" if rate else "")
            )
    _emit("\n".join(lines), args.out)
    _finish(runner)
    return 0


def cmd_formats(args):
    """Render the Figure 3.2 bit layouts."""
    from repro.cache.block import CACHE_TAG_LAYOUT
    from repro.translation.pte import PTE_LAYOUT

    _emit(
        "\n\n".join([PTE_LAYOUT.render(), CACHE_TAG_LAYOUT.render()]),
        args.out,
    )
    return 0


def cmd_all(args):
    """Regenerate the main tables into a directory."""
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    runner = _runner_from_args(args)
    workers = args.workers
    jobs = (
        ("table_3_3", lambda: run_table_3_3(
            length_scale=args.length, runner=runner,
            workers=workers)[1]),
        ("table_3_4_paper", lambda: build_table_3_4()[1]),
        ("table_3_5", lambda: run_table_3_5(
            length_scale=args.length, runner=runner,
            workers=workers)[1]),
        ("table_4_1", lambda: run_table_4_1(
            length_scale=args.length, repetitions=args.reps,
            runner=runner, workers=workers)[1]),
    )
    for name, job in jobs:
        print(f"regenerating {name} ...", file=sys.stderr)
        table = job()
        (out_dir / f"{name}.txt").write_text(table.render() + "\n")
    _finish(runner)
    print(f"artefacts in {out_dir}", file=sys.stderr)
    return 0


def _campaign_body(args, runner):
    """The shared campaign loop behind ``campaign`` and ``serve``."""
    from repro.parallel import CampaignError

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    try:
        print(f"table 3.3 ({args.workers} workers) ...",
              file=sys.stderr)
        rows_33, table_33 = run_table_3_3(
            length_scale=args.length, seed=args.seed, runner=runner,
            workers=args.workers,
        )
        _, table_34 = build_table_3_4(rows_33)
        print("table 3.5 ...", file=sys.stderr)
        _, table_35 = run_table_3_5(
            length_scale=args.length, seed=args.seed, runner=runner,
            workers=args.workers,
        )
        print("table 4.1 ...", file=sys.stderr)
        _, table_41 = run_table_4_1(
            length_scale=args.length, repetitions=args.reps,
            runner=runner, workers=args.workers,
        )
    except CampaignError as error:
        # Every cell had its chance (successes are cached), so a
        # re-run after the fix only simulates the failed cells.
        print("campaign FAILED:", file=sys.stderr)
        for failure in error.failures:
            print(f"  {failure.describe()}", file=sys.stderr)
        _finish(runner)
        return 1
    artefacts = (
        ("table_3_3", table_33),
        ("table_3_4_measured", table_34),
        ("table_3_5", table_35),
        ("table_4_1", table_41),
    )
    for name, table in artefacts:
        (out_dir / f"{name}.txt").write_text(table.render() + "\n")
    _finish(runner)
    print(f"artefacts in {out_dir}", file=sys.stderr)
    return 0


def cmd_campaign(args):
    """The full measured-table campaign, parallel and cached.

    Runs Tables 3.3, 3.4 (from the measured 3.3 counts), 3.5, and 4.1
    through one shared runner and cache, fanning the independent cells
    over ``--workers`` processes.  A warm cache re-runs the whole
    campaign without simulating a single cell; ``--journal`` makes it
    resumable across crashes, ``--driver subprocess`` shards cells
    over ``repro worker`` subprocesses, and the ``serve``/``status``
    subcommands stream live progress over a socket.
    """
    return _campaign_body(args, _runner_from_args(args))


def cmd_campaign_serve(args):
    """Run the campaign while serving live status over a socket."""
    from repro.campaignd.stream import StatusServer

    options = _options_from_args(args)
    server = StatusServer(
        host=args.host, port=args.port, sink=options.trace_sink,
        closing_event={"type": "campaign_serve_finished"},
    )
    host, port = server.address
    print(f"serving campaign status on {host}:{port}",
          file=sys.stderr, flush=True)
    runner = ExperimentRunner(options=options.replace(trace_sink=server))
    try:
        return _campaign_body(args, runner)
    finally:
        server.close()


def cmd_campaign_status(args):
    """Follow a serving campaign's live progress."""
    from repro.campaignd.stream import follow_status, stream_events

    try:
        last = follow_status(
            stream_events(host=args.host, port=args.port,
                          timeout=args.timeout),
            stream=sys.stderr,
        )
    except OSError as error:
        raise SystemExit(
            f"cannot reach campaign at {args.host}:{args.port}: "
            f"{error}"
        ) from None
    if last is None:
        print("no events received", file=sys.stderr)
        return 1
    if last.get("type") == "campaign_serve_finished":
        failed = last.get("failed", 0)
        print(f"campaign finished ({failed} cells failed)")
        return 1 if failed else 0
    if last.get("type") == "campaign_finished":
        print(
            f"campaign finished: {last.get('cells', 0)} cells "
            f"({last.get('computed', 0)} computed, "
            f"{last.get('cached', 0)} cached, "
            f"{last.get('resumed', 0)} resumed, "
            f"{last.get('failed', 0)} failed)"
        )
        return 1 if last.get("failed", 0) else 0
    print("stream ended before the campaign finished", file=sys.stderr)
    return 1


def cmd_characterize(args):
    """Measure a workload's reference-stream properties."""
    from repro.analysis.tracestats import analyze_trace
    from repro.machine.config import scaled_config

    page_bytes = scaled_config().page_bytes
    workload = _workload_by_name(args.workload, args.length)
    instance = workload.instantiate(page_bytes, seed=args.seed)
    stats = analyze_trace(
        instance.accesses(), page_bytes=page_bytes,
        max_references=args.max_references,
    )
    _emit(
        f"workload {instance.name} "
        f"({page_bytes}-byte pages)\n"
        + "\n".join(stats.summary_lines()),
        args.out,
    )
    return 0


def cmd_record(args):
    """Capture a workload's reference stream to disk."""
    from repro.machine.config import scaled_config
    from repro.workloads.recorded import record_workload

    page_bytes = scaled_config().page_bytes
    workload = _workload_by_name(args.workload, args.length)
    count = record_workload(
        workload, page_bytes, args.trace, seed=args.seed,
        max_references=args.max_references,
    )
    print(f"recorded {count:,} references of {workload.name} to "
          f"{args.trace} (+ .regions sidecar)", file=sys.stderr)
    return 0


def cmd_replay(args):
    """Simulate a recorded trace under chosen policies."""
    from repro.workloads.recorded import RecordedWorkload

    workload = RecordedWorkload(args.trace)
    config = scaled_config(
        memory_ratio=args.memory_ratio,
        dirty_policy=args.dirty.upper(),
        reference_policy=args.ref.upper(),
    )
    if config.page_bytes != workload.page_bytes:
        raise SystemExit(
            f"trace uses {workload.page_bytes}-byte pages; the "
            f"default machine uses {config.page_bytes}"
        )
    result = ExperimentRunner(chunk_refs=args.chunk_refs).run(
        config, workload
    )
    lines = [
        f"replayed            {result.references:,} references of "
        f"{result.workload}",
        f"policies            dirty={result.dirty_policy} "
        f"ref={result.reference_policy}",
        f"cycles              {result.cycles:,}",
        f"page-ins            {result.page_ins:,}",
        f"dirty faults        {result.event(Event.DIRTY_FAULT):,}",
        f"dirty-bit misses    "
        f"{result.event(Event.DIRTY_BIT_MISS):,}",
        f"excess faults       {result.event(Event.EXCESS_FAULT):,}",
    ]
    _emit("\n".join(lines), args.out)
    return 0


def cmd_observe_report(args):
    """Summarise a JSONL trace; optionally export CSV/JSON."""
    from repro.common.errors import TraceFormatError
    from repro.observe.report import (
        read_trace,
        render_report,
        summarize_trace,
        trajectories_json,
        write_trajectories_csv,
    )

    try:
        events = read_trace(args.trace)
    except OSError as error:
        raise SystemExit(f"cannot read trace: {error}") from None
    except TraceFormatError as error:
        raise SystemExit(str(error)) from None
    summary = summarize_trace(events)
    _emit(render_report(summary), args.out)
    if args.csv:
        count = write_trajectories_csv(events, args.csv)
        print(f"{count} trajectory rows written to {args.csv}",
              file=sys.stderr)
    if args.json:
        import json as json_module

        payload = {
            "summary": summary.to_json_dict(),
            "trajectories": trajectories_json(events),
        }
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json_module.dumps(payload, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"JSON export written to {path}", file=sys.stderr)
    return 0


def cmd_report(args):
    """Run every experiment and emit the Markdown report.

    Exits nonzero if any shape check fails."""
    from repro.analysis.report import generate_report

    text, all_passed = generate_report(
        length_scale=args.length, repetitions=args.reps,
        seed=args.seed,
    )
    _emit(text, args.out)
    return 0 if all_passed else 1


def cmd_worker(args):
    """Delegate to the campaign worker entry point.

    Like ``lint``, the worker owns its own argument surface
    (``--cells``, ``--cache-dir``...), so its tail is forwarded
    verbatim."""
    from repro.campaignd.worker import worker_main

    return worker_main(args.worker_argv)


def cmd_lint(args):
    """Delegate to the analysis CLI (:mod:`repro.lint.cli`).

    The lint tool owns its own argument surface (``--explain``,
    ``--format``, ``--baseline``...), so everything after ``lint`` is
    forwarded verbatim rather than re-declared here."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.lint_argv)


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Wood & Katz (ISCA 1989): reference and "
            "dirty bits in SPUR's virtual address cache."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, reps=False):
        p.add_argument("--length", type=float, default=1.0,
                       help="workload length multiplier (default 1.0)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--out", help="also write the artefact here")
        p.add_argument("--chunk-refs", type=int,
                       default=DEFAULT_CHUNK_REFS,
                       help="references per flat workload chunk in "
                            "the batched hot loop (0 = legacy "
                            "per-tuple stream; results are "
                            "bit-identical either way)")
        if reps:
            p.add_argument("--reps", type=int, default=2,
                           help="repetitions (paper used 5)")

    def parallel_opts(p):
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for independent runs "
                            "(default 1 = serial; results are "
                            "bit-identical either way)")
        p.add_argument("--cache-dir",
                       help="reuse results cached here; only changed "
                            "(config, workload, seed) cells simulate")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore --cache-dir for this invocation")
        p.add_argument("--fleet", action="store_true",
                       help="step the campaign's machines in lockstep "
                            "inside this process (one vectorized pass "
                            "over all cells) instead of fanning out "
                            "worker processes; results are "
                            "bit-identical either way")

    def campaignd_opts(p):
        p.add_argument("--journal", metavar="PATH",
                       help="append-only campaign journal; completed "
                            "cells are durably recorded and a rerun "
                            "resumes instead of recomputing")
        p.add_argument("--driver", choices=("local", "subprocess"),
                       help="campaign execution backend: in-process "
                            "(default) or `repro worker` subprocesses "
                            "sharing the cache directory; results are "
                            "bit-identical either way")
        p.add_argument("--retries", type=int, default=0,
                       help="extra attempts for failed cells "
                            "(default 0 = fail fast)")
        p.add_argument("--retry-backoff", type=float, default=0.5,
                       metavar="SECONDS",
                       help="base of the exponential sleep between "
                            "retry attempts (default 0.5)")
        p.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill a worker shard that exceeds this "
                            "wall-clock bound (requires "
                            "--driver subprocess)")

    def observe_opts(p):
        p.add_argument("--observe", action="store_true",
                       help="sample the counter bank on an epoch "
                            "cadence during every run (results stay "
                            "bit-identical)")
        p.add_argument("--epoch-refs", type=int,
                       default=DEFAULT_EPOCH_REFS,
                       help="references per observation epoch "
                            "(rounded up to the page-daemon poll "
                            "interval)")
        p.add_argument("--trace", dest="trace_out", metavar="PATH",
                       help="write JSON-lines trace events here "
                            "(read back with `repro observe report`); "
                            "combine with --observe for per-epoch "
                            "counter records")
        p.add_argument("--progress", action="store_true",
                       help="live cells-done/cached/failed progress "
                            "line on stderr")

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", choices=TABLE_CHOICES)
    p_table.add_argument("--source", choices=("paper", "measured"),
                         default="paper",
                         help="counts source for table 3.4")
    p_table.add_argument("--include-zero-fill", action="store_true",
                         help="keep N_zfod in the 3.4 models")
    common(p_table, reps=True)
    parallel_opts(p_table)
    observe_opts(p_table)
    campaignd_opts(p_table)
    p_table.set_defaults(func=cmd_table)

    p_run = sub.add_parser("run", help="one simulation run")
    p_run.add_argument("--workload", default="slc",
                       help="slc | workload1 | dev-<host> | spec.json")
    p_run.add_argument("--memory-ratio", type=int, default=48,
                       help="memory as a multiple of the cache "
                            "(40/48/64 = the paper's 5/6/8 MB)")
    p_run.add_argument("--dirty", default="SPUR",
                       help="FAULT|FLUSH|SPUR|PROTMISS|WRITE|MIN")
    p_run.add_argument("--ref", default="MISS",
                       help="MISS|REF|NOREF")
    common(p_run)
    observe_opts(p_run)
    p_run.set_defaults(func=cmd_run)

    p_formats = sub.add_parser(
        "formats", help="render the Figure 3.2 bit layouts"
    )
    p_formats.add_argument("--out")
    p_formats.set_defaults(func=cmd_formats)

    p_all = sub.add_parser("all", help="regenerate the main tables")
    p_all.add_argument("--out-dir", default="results")
    common(p_all, reps=True)
    parallel_opts(p_all)
    observe_opts(p_all)
    campaignd_opts(p_all)
    p_all.set_defaults(func=cmd_all)

    def campaign_flags(p):
        p.add_argument("--out-dir", default="results")
        p.add_argument(
            "--sanitize", choices=("full", "sampled", "epoch"),
            help="run every cell under the invariant sanitizer",
        )
        common(p, reps=True)
        parallel_opts(p)
        observe_opts(p)
        campaignd_opts(p)

    p_campaign = sub.add_parser(
        "campaign",
        help="the full measured-table campaign: parallel, cached, "
             "resumable, and serveable",
    )
    campaign_flags(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command")
    p_serve = campaign_sub.add_parser(
        "serve",
        help="run the campaign while streaming live status over a "
             "socket (follow with `repro campaign status`)",
    )
    campaign_flags(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="status listen address")
    p_serve.add_argument("--port", type=int, default=0,
                         help="status listen port (0 = ephemeral; "
                              "the bound port is printed)")
    p_serve.set_defaults(func=cmd_campaign_serve)
    p_status = campaign_sub.add_parser(
        "status",
        help="follow a serving campaign's live progress",
    )
    p_status.add_argument("--host", default="127.0.0.1")
    p_status.add_argument("--port", type=int, required=True,
                          help="port printed by `repro campaign serve`")
    p_status.add_argument("--timeout", type=float, default=None,
                          help="give up after this many idle seconds")
    p_status.set_defaults(func=cmd_campaign_status)

    p_worker = sub.add_parser(
        "worker", add_help=False,
        help="internal: simulate a shard of campaign cells for the "
             "subprocess driver",
    )
    p_worker.add_argument("worker_argv", nargs=argparse.REMAINDER)
    p_worker.set_defaults(func=cmd_worker)

    p_observe = sub.add_parser(
        "observe", help="observability: trace reports and exports"
    )
    observe_sub = p_observe.add_subparsers(
        dest="observe_command", required=True
    )
    p_obs_report = observe_sub.add_parser(
        "report", help="summarise a JSON-lines trace file"
    )
    p_obs_report.add_argument(
        "trace", help="trace path written by --trace"
    )
    p_obs_report.add_argument(
        "--csv", help="write counter-trajectory rows (long format) "
                      "to this CSV file"
    )
    p_obs_report.add_argument(
        "--json", help="write the summary plus trajectories to this "
                       "JSON file"
    )
    p_obs_report.add_argument("--out",
                              help="also write the report here")
    p_obs_report.set_defaults(func=cmd_observe_report)

    p_report = sub.add_parser(
        "report",
        help="run everything and emit a Markdown reproduction report",
    )
    common(p_report, reps=True)
    p_report.set_defaults(func=cmd_report)

    p_char = sub.add_parser(
        "characterize",
        help="measure a workload's reference-stream properties",
    )
    p_char.add_argument("--workload", default="slc")
    p_char.add_argument("--max-references", type=int, default=200_000)
    common(p_char)
    p_char.set_defaults(func=cmd_characterize)

    p_record = sub.add_parser(
        "record", help="capture a workload's reference stream"
    )
    p_record.add_argument("trace", help="output trace path")
    p_record.add_argument("--workload", default="slc")
    p_record.add_argument("--max-references", type=int, default=None)
    common(p_record)
    p_record.set_defaults(func=cmd_record)

    p_replay = sub.add_parser(
        "replay", help="simulate a recorded trace"
    )
    p_replay.add_argument("trace", help="trace path from `record`")
    p_replay.add_argument("--memory-ratio", type=int, default=48)
    p_replay.add_argument("--dirty", default="SPUR")
    p_replay.add_argument("--ref", default="MISS")
    common(p_replay)
    p_replay.set_defaults(func=cmd_replay)

    p_lint = sub.add_parser(
        "lint", add_help=False,
        help="whole-program static analysis (rules R001-R008)",
    )
    p_lint.add_argument("lint_argv", nargs=argparse.REMAINDER)
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # `lint` forwards its whole tail to the analysis CLI.  Done ahead
    # of argparse because REMAINDER refuses leading option-like tokens
    # (`repro lint --explain R006` would die as "unrecognized").
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    # `worker` forwards its tail to the campaign worker for the same
    # REMAINDER reason.
    if argv and argv[0] == "worker":
        from repro.campaignd.worker import worker_main

        return worker_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
