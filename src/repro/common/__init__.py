"""Shared substrate for the SPUR reproduction.

This package holds the pieces every other subsystem leans on: address
arithmetic and unit constants, bit-field packing (used by the PTE and
cache-tag formats of Figure 3.2), structured parameter records, error
types, and a deterministic random-number utility used by the synthetic
workload generators and the randomised experiment designs.
"""

from repro.common.errors import (
    AddressError,
    ConfigurationError,
    ProtectionFault,
    ReproError,
    TraceFormatError,
)
from repro.common.types import (
    Access,
    AccessKind,
    Protection,
)
from repro.common.units import (
    GB,
    KB,
    MB,
    cycles_to_seconds,
    seconds_to_cycles,
)
from repro.common.bitfields import BitField, BitLayout
from repro.common.rng import DeterministicRng

__all__ = [
    "Access",
    "AccessKind",
    "AddressError",
    "BitField",
    "BitLayout",
    "ConfigurationError",
    "DeterministicRng",
    "GB",
    "KB",
    "MB",
    "Protection",
    "ProtectionFault",
    "ReproError",
    "TraceFormatError",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
