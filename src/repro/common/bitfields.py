"""Declarative bit-field packing.

Figure 3.2 of the paper gives the exact formats of the SPUR page-table
entry and cache tag.  Rather than scattering shift-and-mask arithmetic
through the translation and cache code, both formats are declared as
:class:`BitLayout` instances and packed/unpacked through this module.
The benchmark that regenerates Figure 3.2 renders its diagram from the
same declarations, so documentation cannot drift from implementation.
"""

from typing import Dict, List, NamedTuple

from repro.common.errors import ConfigurationError


class BitField(NamedTuple):
    """A named contiguous run of bits inside a fixed-width word.

    Attributes
    ----------
    name:
        Field name used in pack/unpack dictionaries.
    lsb:
        Bit position of the least significant bit of the field.
    width:
        Number of bits in the field.
    description:
        Human-readable description, used by the Figure 3.2 renderer.
    """

    name: str
    lsb: int
    width: int
    description: str = ""

    @property
    def msb(self):
        """Bit position of the most significant bit of the field."""
        return self.lsb + self.width - 1

    @property
    def mask(self):
        """Mask of the field, already shifted into place."""
        return ((1 << self.width) - 1) << self.lsb

    @property
    def max_value(self):
        """Largest value the field can hold."""
        return (1 << self.width) - 1

    def extract(self, word):
        """Return this field's value from a packed word."""
        return (word >> self.lsb) & ((1 << self.width) - 1)

    def insert(self, word, value):
        """Return ``word`` with this field replaced by ``value``."""
        if not 0 <= value <= self.max_value:
            raise ValueError(
                f"value {value} does not fit in {self.width}-bit "
                f"field {self.name!r}"
            )
        return (word & ~self.mask) | (value << self.lsb)


class BitLayout:
    """A fixed-width word composed of non-overlapping named fields.

    Fields need not cover every bit (hardware formats frequently leave
    reserved holes) but must not overlap and must fit inside
    ``word_width`` bits.
    """

    def __init__(self, name, word_width, fields):
        self.name = name
        self.word_width = word_width
        self.fields: List[BitField] = list(fields)
        self._by_name: Dict[str, BitField] = {}
        used = 0
        for field in self.fields:
            if field.width <= 0:
                raise ConfigurationError(
                    f"{name}.{field.name}: width must be positive"
                )
            if field.msb >= word_width:
                raise ConfigurationError(
                    f"{name}.{field.name}: bits {field.lsb}..{field.msb} "
                    f"exceed word width {word_width}"
                )
            if used & field.mask:
                raise ConfigurationError(
                    f"{name}.{field.name}: overlaps an earlier field"
                )
            if field.name in self._by_name:
                raise ConfigurationError(
                    f"{name}: duplicate field name {field.name!r}"
                )
            used |= field.mask
            self._by_name[field.name] = field

    def __getitem__(self, field_name):
        return self._by_name[field_name]

    def __contains__(self, field_name):
        return field_name in self._by_name

    @property
    def field_names(self):
        return [field.name for field in self.fields]

    def pack(self, **values):
        """Pack named field values into a word.

        Unnamed fields default to zero.  Unknown names raise ``KeyError``
        rather than being ignored, so a typo cannot silently drop a bit.
        """
        word = 0
        for field_name, value in values.items():
            word = self._by_name[field_name].insert(word, value)
        return word

    def unpack(self, word):
        """Unpack a word into a ``{field name: value}`` dictionary."""
        if not 0 <= word < (1 << self.word_width):
            raise ValueError(
                f"word {word:#x} does not fit in {self.word_width} bits"
            )
        return {
            field.name: field.extract(word) for field in self.fields
        }

    def set(self, word, field_name, value):
        """Return ``word`` with one field replaced."""
        return self._by_name[field_name].insert(word, value)

    def get(self, word, field_name):
        """Return one field's value from ``word``."""
        return self._by_name[field_name].extract(word)

    def render(self):
        """Render the layout as an ASCII diagram (msb on the left).

        Used by the Figure 3.2 benchmark so the published diagram is
        regenerated from the live format declarations.
        """
        ordered = sorted(self.fields, key=lambda f: f.lsb, reverse=True)
        cells = []
        next_expected = self.word_width - 1
        for field in ordered:
            if field.msb < next_expected:
                hole = next_expected - field.msb
                cells.append((f"reserved[{hole}]", hole))
            label = field.name if field.width > 1 else field.name
            cells.append((f"{label}[{field.width}]", field.width))
            next_expected = field.lsb - 1
        if next_expected >= 0:
            cells.append((f"reserved[{next_expected + 1}]", next_expected + 1))
        boxes = " | ".join(label for label, _ in cells)
        header = f"{self.name} ({self.word_width} bits, msb..lsb)"
        return f"{header}\n| {boxes} |"

    def __repr__(self):
        return f"BitLayout({self.name!r}, {self.word_width}, {self.fields!r})"
