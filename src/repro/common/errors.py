"""Exception hierarchy for the SPUR reproduction.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures without also swallowing Python
built-ins.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A machine, cache, or experiment configuration is inconsistent.

    Raised eagerly at construction time (for example, a cache size that
    is not a power of two, or a memory size smaller than one page) so
    that misconfiguration never surfaces as a silent simulation bug.
    """


class AddressError(ReproError):
    """An address is outside the range a component can represent."""


class ProtectionFault(ReproError):
    """A memory access violated the page protection and no policy
    handler chose to resolve it.

    In normal operation protection faults are consumed by the dirty-bit
    policy machinery (they are how the FAULT and FLUSH alternatives set
    dirty bits).  This exception escapes only for genuine violations,
    such as a write to a page mapped read-only with no emulation in
    effect.
    """

    def __init__(self, vaddr, message="protection violation"):
        super().__init__(f"{message} at virtual address {vaddr:#x}")
        self.vaddr = vaddr


class TraceFormatError(ReproError):
    """A serialised trace file is malformed or truncated."""
