"""Structured parameter records for machine geometry and timing.

The paper's Table 2.1 fixes the prototype's geometry (128 KB
direct-mapped cache, 32-byte blocks, 4 KB pages) and memory timing
(3 cycles to the first word, 1 to each subsequent word).  The
reproduction keeps every such constant in one validated record so that
scaled configurations (see DESIGN.md section 2) change geometry in one
place and all derived shifts/masks follow.
"""

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import KB, MB, is_power_of_two, log2_exact

#: Word size of the SPUR processor, in bytes.
WORD_BYTES = 4


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of the direct-mapped virtual-address cache.

    Attributes
    ----------
    size_bytes:
        Total cache capacity.  The prototype's was 128 KB.
    block_bytes:
        Cache block (line) size.  The prototype's was 32 bytes.
    associativity:
        Ways per set.  The prototype (and everything the simulator
        currently models) is direct-mapped; the axis exists so sweep
        grids can be declared and validated ahead of a set-associative
        simulator — building a :class:`VirtualCache` with any other
        value fails loudly.
    """

    size_bytes: int = 128 * KB
    block_bytes: int = 32
    associativity: int = 1

    def __post_init__(self):
        if not is_power_of_two(self.size_bytes):
            raise ConfigurationError(
                f"cache size {self.size_bytes} must be a power of two"
            )
        if not is_power_of_two(self.block_bytes):
            raise ConfigurationError(
                f"block size {self.block_bytes} must be a power of two"
            )
        if self.block_bytes < WORD_BYTES:
            raise ConfigurationError(
                f"block size {self.block_bytes} smaller than one word"
            )
        if self.size_bytes < self.block_bytes:
            raise ConfigurationError(
                "cache smaller than one block"
            )
        if not is_power_of_two(self.associativity):
            raise ConfigurationError(
                f"associativity {self.associativity} must be a power "
                f"of two"
            )
        if self.associativity > self.size_bytes // self.block_bytes:
            raise ConfigurationError(
                f"associativity {self.associativity} exceeds the "
                f"{self.size_bytes // self.block_bytes} blocks in the "
                f"cache"
            )

    @property
    def num_sets(self):
        """Number of sets (``num_lines`` when direct-mapped)."""
        return self.num_lines // self.associativity

    @property
    def num_lines(self):
        """Number of block frames (lines) in the cache."""
        return self.size_bytes // self.block_bytes

    @property
    def block_bits(self):
        """Number of block-offset bits in an address."""
        return log2_exact(self.block_bytes)

    @property
    def index_bits(self):
        """Number of line-index bits in an address."""
        return log2_exact(self.num_lines)

    @property
    def words_per_block(self):
        return self.block_bytes // WORD_BYTES

    def line_index(self, vaddr):
        """Direct-mapped line index for a virtual address."""
        return (vaddr >> self.block_bits) & (self.num_lines - 1)

    def tag(self, vaddr):
        """Virtual-address tag stored with a line."""
        return vaddr >> (self.block_bits + self.index_bits)

    def block_address(self, vaddr):
        """Block-aligned address containing ``vaddr``."""
        return vaddr & ~(self.block_bytes - 1)


@dataclass(frozen=True)
class PageGeometry:
    """Virtual-memory page geometry.

    The prototype used 4 KB pages; scaled configurations shrink the
    page (and memory) while preserving the ratios the paper's results
    depend on.
    """

    page_bytes: int = 4 * KB
    block_bytes: int = 32

    def __post_init__(self):
        if not is_power_of_two(self.page_bytes):
            raise ConfigurationError(
                f"page size {self.page_bytes} must be a power of two"
            )
        if self.page_bytes < self.block_bytes:
            raise ConfigurationError("page smaller than one cache block")

    @property
    def page_bits(self):
        return log2_exact(self.page_bytes)

    @property
    def blocks_per_page(self):
        return self.page_bytes // self.block_bytes

    def page_number(self, vaddr):
        """Virtual page number containing ``vaddr``."""
        return vaddr >> self.page_bits

    def page_address(self, page_number):
        """Base virtual address of a page number."""
        return page_number << self.page_bits

    def offset(self, vaddr):
        """Byte offset of ``vaddr`` within its page."""
        return vaddr & (self.page_bytes - 1)


@dataclass(frozen=True)
class MemoryGeometry:
    """Physical memory size expressed in page frames."""

    size_bytes: int = 8 * MB
    page_bytes: int = 4 * KB

    def __post_init__(self):
        if self.size_bytes < self.page_bytes:
            raise ConfigurationError("memory smaller than one page")
        if self.size_bytes % self.page_bytes:
            raise ConfigurationError(
                "memory size must be a whole number of pages"
            )

    @property
    def num_frames(self):
        return self.size_bytes // self.page_bytes


@dataclass(frozen=True)
class MemoryTiming:
    """Main-memory and bus timing from Table 2.1, in processor cycles.

    A block fetch costs ``first_word + (words - 1) * next_word`` memory
    cycles plus a fixed bus-arbitration overhead.  The prototype's
    backplane ran at 125 ns against a 150 ns processor cycle; we fold
    that ratio into the cycle counts rather than simulating two clock
    domains, which is well within the fidelity the paper's analysis
    needs.
    """

    first_word_cycles: int = 3
    next_word_cycles: int = 1
    bus_arbitration_cycles: int = 2

    def block_transfer_cycles(self, words_per_block):
        """Cycles to move one block between memory and the cache."""
        if words_per_block < 1:
            raise ConfigurationError("block must contain at least one word")
        return (
            self.bus_arbitration_cycles
            + self.first_word_cycles
            + (words_per_block - 1) * self.next_word_cycles
        )


@dataclass(frozen=True)
class FaultTiming:
    """Software-visible fault and handler costs, in processor cycles.

    The four headline parameters are Table 3.2 of the paper:

    ====================  =====  ==========================================
    ``dirty_fault``        1000  handler sets a dirty bit (``t_ds``)
    ``page_flush``          500  tag-checked flush of one page (``t_flush``)
    ``dirty_bit_miss``       25  refresh a stale cached dirty bit (``t_dm``)
    ``dirty_check``           5  check the PTE dirty bit on a write hit
                                 (``t_dc``, WRITE policy only)
    ====================  =====  ==========================================

    The remaining parameters are needed by the closed-loop simulation
    but not by the paper's analytic models: ``reference_fault`` is the
    fault that sets a reference bit (same handler path as a dirty
    fault), ``page_fault_service`` is the CPU cost of servicing a page
    fault excluding disk latency, and ``page_io`` is the effective
    per-page disk transfer cost.
    """

    dirty_fault: int = 1000
    page_flush: int = 500
    dirty_bit_miss: int = 25
    dirty_check: int = 5
    reference_fault: int = 1000
    page_fault_service: int = 2000
    page_io: int = 120_000
    daemon_page_scan: int = 30

    def __post_init__(self):
        for name in (
            "dirty_fault",
            "page_flush",
            "dirty_bit_miss",
            "dirty_check",
            "reference_fault",
            "page_fault_service",
            "page_io",
            "daemon_page_scan",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
