"""Deterministic random-number utilities.

Every stochastic component in the reproduction (workload generators,
the randomised experiment design of Section 4.2) draws from a
:class:`DeterministicRng`, which is a thin wrapper over
:class:`random.Random` that adds named substreams.  Substreams let two
components share one experiment seed without their draws interleaving,
so adding a draw to the workload generator does not perturb the
experiment-ordering shuffle.
"""

import random
import zlib


class DeterministicRng:
    """A seeded random source with named, independent substreams.

    Parameters
    ----------
    seed:
        Master seed.  Equal seeds produce identical draw sequences on
        every platform (``random.Random`` guarantees this for its
        Mersenne Twister core).
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._random = random.Random(seed)

    def substream(self, name):
        """Return an independent :class:`DeterministicRng` for ``name``.

        The substream seed mixes the master seed with a CRC of the
        name, so distinct names yield uncorrelated streams and the
        mapping is stable across runs and platforms.
        """
        mixed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2**63)
        return DeterministicRng(mixed)

    # -- draw helpers -------------------------------------------------

    def random(self):
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low, high):
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def randrange(self, stop):
        """Uniform integer in [0, stop)."""
        return self._random.randrange(stop)

    def choice(self, sequence):
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(sequence)

    def shuffle(self, sequence):
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(sequence)

    def sample(self, population, k):
        """Sample ``k`` distinct elements."""
        return self._random.sample(population, k)

    def expovariate(self, rate):
        """Exponential variate with the given rate."""
        return self._random.expovariate(rate)

    def geometric(self, p):
        """Geometric variate: number of failures before first success.

        Used by tests of the footnote-3 excess-fault model.  ``p`` must
        be in (0, 1].
        """
        if not 0 < p <= 1:
            raise ValueError("p must be in (0, 1]")
        if p == 1:
            return 0
        count = 0
        while self._random.random() >= p:
            count += 1
        return count

    def zipf_index(self, n, skew=1.0):
        """Draw an index in [0, n) with a Zipf-like popularity skew.

        Workload generators use this to model the hot/cold page
        behaviour of real programs: low indices are drawn far more
        often than high ones.  ``skew=0`` degenerates to uniform.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew <= 0:
            return self._random.randrange(n)
        # Inverse-power transform: cheap, monotone, adequate skew shape
        # for locality modelling (we do not need exact Zipf moments).
        u = self._random.random()
        index = int(n * (u ** (1.0 + skew)))
        return min(index, n - 1)

    def getstate(self):
        """Snapshot the generator state (pair with setstate)."""
        return self._random.getstate()

    def setstate(self, state):
        """Restore a state captured by :meth:`getstate`."""
        self._random.setstate(state)
