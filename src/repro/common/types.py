"""Core value types shared across the simulator.

The simulator's unit of work is the :class:`Access`: one processor
reference (instruction fetch, data read, or data write) to a *global*
virtual address.  SPUR prevents virtual-address synonyms by forcing
processes that share memory to use the same global virtual address
[Hill86]; workload generators therefore emit global virtual addresses
directly, and per-process segment layout lives in
:mod:`repro.vm.segments`.
"""

import enum
from typing import NamedTuple


class AccessKind(enum.IntEnum):
    """Kind of processor memory reference.

    The SPUR cache controller's performance counters distinguish
    instruction fetches, processor reads, and processor writes; the
    simulator preserves that taxonomy.
    """

    IFETCH = 0
    READ = 1
    WRITE = 2

    @property
    def is_write(self):
        """True for accesses that modify memory."""
        return self is AccessKind.WRITE


class Protection(enum.IntEnum):
    """Page protection levels, encoded in two bits as in Figure 3.2.

    SPUR's PTE and cache tag both carry a two-bit protection field.
    The reproduction needs only the levels the paper discusses: no
    access, read-only, and read-write.  ``KERNEL`` rounds out the
    two-bit encoding and marks pages only the kernel may touch (wired
    second-level page tables, for instance).
    """

    NONE = 0
    READ_ONLY = 1
    READ_WRITE = 2
    KERNEL = 3

    def allows(self, kind):
        """Return True if this protection level permits ``kind``."""
        if self is Protection.NONE:
            return False
        if self is Protection.READ_ONLY:
            return kind is not AccessKind.WRITE
        return True


class Access(NamedTuple):
    """A single processor reference to a global virtual address."""

    kind: AccessKind
    vaddr: int

    @property
    def is_write(self):
        return self.kind is AccessKind.WRITE


class PageKind(enum.IntEnum):
    """Origin of a virtual page, used for Sprite-style accounting.

    ``ZERO_FILL`` pages are newly allocated stack and heap pages that
    the kernel initialises to zero and maps with the dirty bit off;
    the paper's :math:`N_{zfod}` counts dirty-bit faults on them.
    ``FILE`` pages are backed by an executable or data file (code is
    read-only and never dirtied).  ``SWAP`` pages have been written to
    the swap device at least once.
    """

    ZERO_FILL = 0
    FILE = 1
    SWAP = 2
