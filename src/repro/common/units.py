"""Size and time unit helpers.

The paper reports cache and memory sizes in kilobytes and megabytes and
times in processor cycles (150 ns each on the prototype, Table 2.1).
These helpers keep unit conversions explicit at call sites.
"""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Processor cycle time of the SPUR prototype (Table 2.1), in seconds.
SPUR_CYCLE_TIME_SECONDS = 150e-9

#: Backplane (bus) cycle time of the SPUR prototype (Table 2.1).
SPUR_BUS_CYCLE_TIME_SECONDS = 125e-9


def cycles_to_seconds(cycles, cycle_time=SPUR_CYCLE_TIME_SECONDS):
    """Convert a processor cycle count to wall-clock seconds.

    Parameters
    ----------
    cycles:
        Number of processor cycles.
    cycle_time:
        Seconds per cycle; defaults to the SPUR prototype's 150 ns.
    """
    return cycles * cycle_time


def seconds_to_cycles(seconds, cycle_time=SPUR_CYCLE_TIME_SECONDS):
    """Convert wall-clock seconds to an integral processor cycle count."""
    return int(round(seconds / cycle_time))


def is_power_of_two(value):
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value):
    """Return ``log2(value)`` for an exact power of two.

    Raises
    ------
    ValueError
        If ``value`` is not a positive power of two.  Cache geometry
        code relies on exact shifts, so a silent floor would corrupt
        address arithmetic.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
