"""Model of the SPUR cache controller's on-chip performance counters.

The cache controller chip [Wood87] contains sixteen 32-bit counters
and a mode register that selects one of four event sets to measure.
The paper's entire methodology rests on these counters: every event
frequency in Table 3.3 was read from them.  The reproduction wires the
same counters into the simulator, so experiments read their results
exactly the way the paper did — by programming a mode, running the
workload, and reading the counter bank.
"""

from repro.counters.events import Event, MODE_SETS, NUM_COUNTERS, NUM_MODES
from repro.counters.counters import CounterSnapshot, PerformanceCounters
from repro.counters.methodology import (
    InconsistentRunsError,
    MeasurementCampaign,
)

__all__ = [
    "CounterSnapshot",
    "Event",
    "InconsistentRunsError",
    "MeasurementCampaign",
    "MODE_SETS",
    "NUM_COUNTERS",
    "NUM_MODES",
    "PerformanceCounters",
]
