"""The sixteen-counter bank with mode selection and 32-bit wraparound.

Two usage styles are supported:

* **Hardware-faithful**: program a mode with :meth:`set_mode`, run, and
  read the sixteen visible counters.  Events outside the selected mode
  are dropped, exactly as on the chip — this is what forces the paper's
  multiple-runs-per-measurement methodology.
* **Omniscient** (``mode=None``): every event is recorded.  The
  experiment drivers use this so one simulation pass yields the whole
  of Table 3.3; tests verify the two styles agree on shared events.
"""

from typing import Dict, Optional

from repro.counters.events import Event, MODE_SETS, NUM_COUNTERS, NUM_MODES

#: Counters are 32 bits wide on the chip and wrap silently.
COUNTER_MODULUS = 2**32


class CounterSnapshot:
    """An immutable copy of counter values at a point in time.

    Supports subtraction, producing the per-interval deltas the
    experiment drivers report.  Deltas honour 32-bit wraparound: a
    counter that wrapped once between snapshots still yields the true
    interval count, provided fewer than 2**32 events occurred (the same
    assumption the SPUR measurement scripts made).
    """

    def __init__(self, values):
        self._values: Dict[Event, int] = dict(values)

    def __getitem__(self, event):
        return self._values.get(event, 0)

    def __contains__(self, event):
        return event in self._values

    def events(self):
        return self._values.keys()

    def __sub__(self, earlier):
        if not isinstance(earlier, CounterSnapshot):
            return NotImplemented
        deltas = {}
        for event, value in self._values.items():
            before = earlier[event]
            deltas[event] = (value - before) % COUNTER_MODULUS
        return CounterSnapshot(deltas)

    def as_dict(self):
        """Return a plain ``{Event: count}`` dictionary copy."""
        return dict(self._values)

    def as_name_dict(self):
        """Return ``{event name: count}``, sorted by name.

        The JSON-friendly rendering trace sinks and reports use;
        inverse of ``{Event[name]: count for ...}``.
        """
        return {
            event.name: count
            for event, count in sorted(
                self._values.items(), key=lambda item: item[0].name
            )
        }

    def __repr__(self):
        parts = ", ".join(
            f"{event.name}={value}"
            for event, value in sorted(self._values.items())
        )
        return f"CounterSnapshot({parts})"


class PerformanceCounters:
    """The cache controller's counter bank.

    Parameters
    ----------
    mode:
        Counter mode (0..3) selecting one of :data:`MODE_SETS`, or
        ``None`` for the omniscient simulation-only mode that counts
        every event.
    """

    def __init__(self, mode: Optional[int] = None):
        self._counts: Dict[Event, int] = {}
        self._mode: Optional[int] = None
        self._visible = None
        self.set_mode(mode)

    @property
    def mode(self):
        return self._mode

    def set_mode(self, mode: Optional[int]):
        """Select a counter mode.

        Changing modes does *not* clear the counters (the hardware did
        not either); call :meth:`reset` explicitly.
        """
        if mode is not None and mode not in MODE_SETS:
            raise ValueError(
                f"mode must be None or 0..{NUM_MODES - 1}, got {mode!r}"
            )
        self._mode = mode
        self._visible = None if mode is None else frozenset(MODE_SETS[mode])

    def increment(self, event, amount=1):
        """Count ``amount`` occurrences of ``event``.

        Events not in the selected mode's set are dropped, mirroring
        the hardware.
        """
        if self._visible is not None and event not in self._visible:
            return
        current = self._counts.get(event, 0)
        self._counts[event] = (current + amount) % COUNTER_MODULUS

    def read(self, event):
        """Read one counter (0 if never incremented or not visible)."""
        return self._counts.get(event, 0)

    def snapshot(self):
        """Capture all counters as a :class:`CounterSnapshot`."""
        return CounterSnapshot(self._counts)

    def reset(self):
        """Zero every counter."""
        self._counts.clear()

    def visible_events(self):
        """Events countable under the current mode."""
        if self._visible is None:
            return tuple(Event)
        return tuple(MODE_SETS[self._mode])

    def register_layout(self):
        """Map physical counter registers to events for the mode.

        Returns a list of ``(register index, Event or None)`` pairs of
        length :data:`NUM_COUNTERS`; unused registers map to ``None``.
        Only meaningful for hardware modes.
        """
        if self._mode is None:
            raise ValueError("omniscient mode has no physical layout")
        events = MODE_SETS[self._mode]
        layout = []
        for register in range(NUM_COUNTERS):
            event = events[register] if register < len(events) else None
            layout.append((register, event))
        return layout
