"""Event taxonomy for the performance counters.

The events mirror those the paper says the hardware measured: the
number of instruction fetches, processor reads and writes, the number
of times each reference type misses in the cache, the behaviour of the
in-cache translation algorithm, the Berkeley Ownership protocol, and
the dirty/reference-bit machinery this paper studies.

Each of the four counter modes maps sixteen of these events onto the
sixteen physical counters (the hardware could not count everything at
once; neither does the model unless a test asks it to).
"""

import enum

#: Number of physical counters on the cache controller chip.
NUM_COUNTERS = 16

#: Number of selectable counter modes.
NUM_MODES = 4


class Event(enum.IntEnum):
    """Countable events, grouped by subsystem."""

    # -- processor reference mix --------------------------------------
    INSTRUCTION_FETCH = 0
    PROCESSOR_READ = 1
    PROCESSOR_WRITE = 2

    # -- cache behaviour ----------------------------------------------
    IFETCH_MISS = 3
    READ_MISS = 4
    WRITE_MISS = 5
    WRITE_HIT_CLEAN_BLOCK = 6
    WRITE_BACK = 7
    BLOCK_FILL = 8
    FLUSH_OPERATION = 9
    FLUSH_WRITE_BACK = 10

    # -- in-cache translation -----------------------------------------
    TRANSLATION = 11
    PTE_CACHE_HIT = 12
    PTE_CACHE_MISS = 13
    SECOND_LEVEL_LOOKUP = 14
    SECOND_LEVEL_CACHE_HIT = 15
    SECOND_LEVEL_MEMORY_ACCESS = 16

    # -- coherency (Berkeley Ownership) ---------------------------------
    BUS_TRANSACTION = 17
    SNOOP_HIT = 18
    INVALIDATION = 19
    OWNERSHIP_TRANSFER = 20

    # -- dirty-bit machinery (Section 3) --------------------------------
    DIRTY_FAULT = 21            # necessary faults, N_ds
    ZERO_FILL_DIRTY_FAULT = 22  # the N_zfod subset of DIRTY_FAULT
    EXCESS_FAULT = 23           # stale-protection faults, N_ef
    DIRTY_BIT_MISS = 24         # SPUR refreshes, N_dm
    DIRTY_CHECK = 25            # WRITE-policy PTE checks
    WRITE_TO_READ_FILLED_BLOCK = 26  # N_w-hit
    WRITE_MISS_FILL = 27             # N_w-miss

    # -- reference-bit machinery (Section 4) ----------------------------
    REFERENCE_FAULT = 28
    REFERENCE_CLEAR = 29
    DAEMON_PAGE_SCAN = 30

    # -- virtual memory --------------------------------------------------
    PAGE_FAULT = 31
    PAGE_IN = 32
    PAGE_OUT = 33
    ZERO_FILL_PAGE = 34
    PAGE_RECLAIM = 35
    # Segmented-FIFO extension (not on the 1989 chip): soft-evictions
    # to the inactive list and fault-time rescues from it.
    PAGE_DEACTIVATE = 36
    PAGE_REACTIVATE = 37


#: The four hardware counter modes.  Mode 0 measures the reference mix
#: and cache behaviour; mode 1 the translation algorithm; mode 2 the
#: coherency protocol; mode 3 the dirty/reference-bit events this paper
#: studies.  Each set has at most ``NUM_COUNTERS`` events.
MODE_SETS = {
    0: (
        Event.INSTRUCTION_FETCH,
        Event.PROCESSOR_READ,
        Event.PROCESSOR_WRITE,
        Event.IFETCH_MISS,
        Event.READ_MISS,
        Event.WRITE_MISS,
        Event.WRITE_HIT_CLEAN_BLOCK,
        Event.WRITE_BACK,
        Event.BLOCK_FILL,
        Event.FLUSH_OPERATION,
        Event.FLUSH_WRITE_BACK,
        Event.PAGE_FAULT,
        Event.PAGE_IN,
        Event.PAGE_OUT,
        Event.ZERO_FILL_PAGE,
        Event.PAGE_RECLAIM,
    ),
    1: (
        Event.TRANSLATION,
        Event.PTE_CACHE_HIT,
        Event.PTE_CACHE_MISS,
        Event.SECOND_LEVEL_LOOKUP,
        Event.SECOND_LEVEL_CACHE_HIT,
        Event.SECOND_LEVEL_MEMORY_ACCESS,
        Event.IFETCH_MISS,
        Event.READ_MISS,
        Event.WRITE_MISS,
        Event.BLOCK_FILL,
        Event.WRITE_BACK,
        Event.PAGE_FAULT,
    ),
    2: (
        Event.BUS_TRANSACTION,
        Event.SNOOP_HIT,
        Event.INVALIDATION,
        Event.OWNERSHIP_TRANSFER,
        Event.WRITE_BACK,
        Event.BLOCK_FILL,
        Event.FLUSH_OPERATION,
        Event.FLUSH_WRITE_BACK,
        # The segmented-FIFO extension events ride in mode 2's spare
        # registers: the coherency mode uses only eight of the sixteen
        # counters, and the soft-eviction traffic is bus-adjacent (every
        # deactivation flushes the page from all caches).
        Event.PAGE_DEACTIVATE,
        Event.PAGE_REACTIVATE,
    ),
    3: (
        Event.DIRTY_FAULT,
        Event.ZERO_FILL_DIRTY_FAULT,
        Event.EXCESS_FAULT,
        Event.DIRTY_BIT_MISS,
        Event.DIRTY_CHECK,
        Event.WRITE_TO_READ_FILLED_BLOCK,
        Event.WRITE_MISS_FILL,
        Event.REFERENCE_FAULT,
        Event.REFERENCE_CLEAR,
        Event.DAEMON_PAGE_SCAN,
        Event.PAGE_FAULT,
        Event.PAGE_IN,
        Event.PAGE_OUT,
        Event.ZERO_FILL_PAGE,
        Event.PAGE_RECLAIM,
        Event.PROCESSOR_WRITE,
    ),
}


def _validate_mode_sets():
    for mode, events in MODE_SETS.items():
        if not 0 <= mode < NUM_MODES:
            raise ValueError(f"mode {mode} out of range")
        if len(events) > NUM_COUNTERS:
            raise ValueError(
                f"mode {mode} assigns {len(events)} events to "
                f"{NUM_COUNTERS} counters"
            )
        if len(set(events)) != len(events):
            raise ValueError(f"mode {mode} lists an event twice")


_validate_mode_sets()
