"""The paper's measurement methodology, as an executable procedure.

The hardware could only count sixteen events at once, selected by the
mode register; measuring everything the analysis needs therefore took
*multiple runs of the same workload* with different modes — which is
exactly why the paper needed repeatable synthetic scripts.

:class:`MeasurementCampaign` executes that procedure: one cold-start
run per requested mode, with identical configuration and seed, and an
assembled cross-mode snapshot at the end.  It also verifies the
assumption the methodology rests on — that repeated runs see the same
events — by comparing any event measured in more than one mode.
"""

from typing import Dict, Iterable

from repro.counters.counters import PerformanceCounters
from repro.counters.events import Event, MODE_SETS

# SpurMachine is imported lazily inside execute(): this module is
# re-exported by the counters package, which the machine package
# itself depends on — a top-level import would make package import
# order load-bearing.


class InconsistentRunsError(RuntimeError):
    """Two modes measured different values for a shared event.

    Under this simulator that indicates non-determinism (a bug); on
    the real prototype it would have indicated an unrepeatable
    workload.
    """

    def __init__(self, event, values):
        super().__init__(
            f"{event.name} disagrees across modes: {values}"
        )
        self.event = event
        self.values = values


class MeasurementCampaign:
    """Measure a workload the way the prototype had to.

    Parameters
    ----------
    config:
        Machine configuration for every run.
    workload:
        Workload recipe (re-instantiated per run with ``seed``).
    modes:
        Counter modes to run; defaults to all four.
    """

    def __init__(self, config, workload, modes=None, seed=0):
        self.config = config
        self.workload = workload
        self.modes = tuple(modes) if modes is not None else (0, 1, 2, 3)
        self.seed = seed
        self.runs: Dict[int, PerformanceCounters] = {}
        self.machines: Dict[int, object] = {}

    def execute(self, max_references=None):
        """Run once per mode; returns the assembled event dict."""
        from repro.machine.simulator import SpurMachine

        for mode in self.modes:
            instance = self.workload.instantiate(
                self.config.page_bytes, seed=self.seed
            )
            counters = PerformanceCounters(mode=mode)
            machine = SpurMachine(
                self.config, instance.space_map, counters=counters
            )
            accesses = instance.accesses()
            if max_references is not None:
                import itertools

                accesses = itertools.islice(accesses, max_references)
            machine.run(accesses)
            self.runs[mode] = counters
            self.machines[mode] = machine
        return self.assemble()

    def assemble(self):
        """Merge per-mode counters into one event dictionary.

        Events visible in several modes are cross-checked; any
        disagreement raises :class:`InconsistentRunsError`.
        """
        assembled: Dict[Event, int] = {}
        sources: Dict[Event, Dict[int, int]] = {}
        for mode, counters in self.runs.items():
            for event in MODE_SETS[mode]:
                value = counters.read(event)
                sources.setdefault(event, {})[mode] = value
        for event, values in sources.items():
            distinct = set(values.values())
            if len(distinct) > 1:
                raise InconsistentRunsError(event, values)
            assembled[event] = distinct.pop()
        return assembled

    def coverage(self):
        """Events measurable with the selected modes."""
        covered = set()
        for mode in self.modes:
            covered.update(MODE_SETS[mode])
        return covered

    def runs_needed_for(self, events: Iterable[Event]):
        """Minimal set of modes covering ``events`` (greedy).

        The scheduling question the SPUR experimenters faced: which
        modes must the workload be re-run under to observe a given
        event list?
        """
        wanted = set(events)
        unknown = wanted - set().union(*MODE_SETS.values())
        if unknown:
            names = ", ".join(e.name for e in unknown)
            raise ValueError(f"not measurable in any mode: {names}")
        chosen = []
        remaining = set(wanted)
        while remaining:
            best = max(
                MODE_SETS,
                key=lambda mode: len(remaining & set(MODE_SETS[mode])),
            )
            gain = remaining & set(MODE_SETS[best])
            if not gain:
                break
            chosen.append(best)
            remaining -= gain
        return tuple(sorted(chosen))
