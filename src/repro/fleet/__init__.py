"""Lockstep fleet simulation: many machines per process, one pass.

The paper's result tables are grids of *independent* single-machine
simulations, which makes the campaign data-parallel inside one
interpreter: :class:`~repro.fleet.columns.FleetColumnStore` stacks N
caches' per-line tag state into machines x lines columns,
:class:`~repro.fleet.lockstep.MachineFleet` steps the machines in
lockstep chunk by chunk (one vectorized classifier pass across the
whole fleet, per-machine resolvers only where a chunk actually has
events), and :func:`~repro.fleet.runner.simulate_cells_fleet` maps a
campaign's :class:`~repro.parallel.executor.RunCell` list onto fleets.

The non-negotiable contract is bit-identity: a fleet run produces
exactly the counters, cycles, cache state, and cached-result keys of
per-machine :meth:`~repro.machine.simulator.SpurMachine.run_chunks`.
The process pool stays for cross-host scale; ``RunOptions(fleet=True)``
or ``repro campaign --fleet`` selects this path.
"""

from repro.fleet.columns import FleetColumnStore
from repro.fleet.lockstep import FleetMember, MachineFleet
from repro.fleet.runner import simulate_cells_fleet

__all__ = [
    "FleetColumnStore",
    "FleetMember",
    "MachineFleet",
    "simulate_cells_fleet",
]
