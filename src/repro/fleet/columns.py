"""Stacked machines x lines tag state for lockstep fleets.

A fleet steps N independent caches at once, so their per-line tag
state must be classifiable in one vectorized pass.
:class:`FleetColumnStore` makes that a memory-layout fact rather than
a gather loop: every column from
:class:`~repro.cache.columns.ColumnStore` gets one flat allocation
covering the whole fleet, machine ``m`` owning elements
``[m * num_lines, (m + 1) * num_lines)``.  Each member machine is
handed an ordinary :class:`~repro.cache.columns.ColumnStore` built
over ``memoryview`` slices of those buffers
(:meth:`~repro.cache.columns.ColumnStore.over_buffers`), so the
member's scalar resolvers mutate the fleet's memory directly and the
2-D views here observe every write with no synchronisation step —
the same aliasing contract the 1-D store makes with its own views.

``numpy`` is optional, as everywhere: without it ``views`` is ``None``
and the fleet falls back to per-member stepping against the identical
buffers.
"""

from array import array

try:
    import numpy as _np
except ImportError:  # pragma: no cover - CI runs without numpy
    _np = None

from repro.cache.columns import ColumnStore, FLAG_COLUMNS, WORD_COLUMNS


class FleetViews:
    """Read-only 2-D numpy views (machines x lines) over a fleet store.

    One attribute per column, each a zero-copy view reshaped over the
    fleet's flat allocation; row ``m`` aliases machine ``m``'s member
    store exactly.  Non-writeable, like
    :class:`~repro.cache.columns.ColumnViews`: mutation goes through
    the member caches only.
    """

    __slots__ = tuple(name for name, _ in WORD_COLUMNS) + FLAG_COLUMNS


class FleetColumnStore:
    """machines x lines tag columns with per-member store slices.

    Attributes
    ----------
    members:
        Tuple of per-machine :class:`~repro.cache.columns.ColumnStore`
        instances, one per row, each aliasing this store's buffers.
        Member stores carry ``fleet`` / ``member_row`` backrefs so the
        sanitizer can verify the 2-D aliasing invariant.
    views:
        :class:`FleetViews` of 2-D numpy views, or ``None`` without
        numpy.
    """

    def __init__(self, num_machines, num_lines):
        if num_machines < 1:
            raise ValueError(
                f"fleet needs at least one machine, got {num_machines}"
            )
        if num_lines < 1:
            raise ValueError(
                f"fleet lines must be >= 1, got {num_lines}"
            )
        self.num_machines = num_machines
        self.num_lines = num_lines
        total = num_machines * num_lines
        self.tags = array("q", bytes(8 * total))
        self.line_vaddr = array("q", bytes(8 * total))
        self.line_block = array("q", [-1]) * total
        self.valid = bytearray(total)
        self.prot = bytearray(total)
        self.page_dirty = bytearray(total)
        self.block_dirty = bytearray(total)
        self.filled_by_read = bytearray(total)
        self.holds_pte = bytearray(total)
        self.views = self._build_views()
        self.members = tuple(
            self._member_store(row) for row in range(num_machines)
        )

    def _build_views(self):
        if _np is None:
            return None
        shape = (self.num_machines, self.num_lines)
        views = FleetViews()
        for name, _ in WORD_COLUMNS:
            view = _np.frombuffer(
                getattr(self, name), dtype=_np.int64
            ).reshape(shape)
            view.flags.writeable = False
            setattr(views, name, view)
        for name in FLAG_COLUMNS:
            view = _np.frombuffer(
                getattr(self, name), dtype=_np.uint8
            ).reshape(shape)
            view.flags.writeable = False
            setattr(views, name, view)
        return views

    def _member_store(self, row):
        lo = row * self.num_lines
        hi = lo + self.num_lines
        buffers = {}
        for name, _ in WORD_COLUMNS:
            buffers[name] = memoryview(getattr(self, name))[lo:hi]
        for name in FLAG_COLUMNS:
            buffers[name] = memoryview(getattr(self, name))[lo:hi]
        store = ColumnStore.over_buffers(self.num_lines, buffers)
        store.fleet = self
        store.member_row = row
        return store

    def columns(self):
        """``(name, buffer)`` pairs for every flat fleet column."""
        for name, _ in WORD_COLUMNS:
            yield name, getattr(self, name)
        for name in FLAG_COLUMNS:
            yield name, getattr(self, name)


__all__ = ["FleetColumnStore", "FleetViews"]
