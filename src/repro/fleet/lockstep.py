"""Lockstep stepping of many independent SPUR machines.

:class:`MachineFleet` advances N machines one workload chunk at a
time.  Per round, every live member fetches its next chunk; members
whose chunk is poll-free are grouped by length and classified in one
2-D numpy pass against the fleet's stacked columns — a chunk whose
every reference hits a settled line is provably event-free under
either per-machine path, so the member just advances its deferred
counts.  Members whose chunk contains misses, unsettled write hits, a
poll boundary, or that cannot join a group drop to the machine's own
segment machinery (:meth:`~repro.machine.simulator.SpurMachine.
_run_segment`) for that chunk only, then rejoin the next round.

Bit-identity with per-machine
:meth:`~repro.machine.simulator.SpurMachine.run_chunks` rests on
three facts:

* the fleet replays ``run_chunks``'s exact poll-free segmentation
  with a *stream-cumulative* ``processed`` count, so the daemon poll
  schedule is the one an uninterrupted ``run_chunks`` over the whole
  stream would produce (calling ``run_chunks`` per chunk would
  restart the schedule each call and diverge);
* the fleet classifier is only a conservative filter: flagged chunks
  re-classify live inside ``_run_segment``, and machines share no
  cache state (each owns a private bus, vm, and column row), so a
  skip decision can never go stale across members;
* all deferred bookkeeping (cycles, references, kind mix, counter
  tally) commits as deltas, and counter arithmetic is modular — the
  totals are identical no matter where the commit boundaries fall.
  On a member failure the tally is flushed but uncommitted cycles,
  references, and mix are dropped, exactly like ``run_chunks``'s
  ``finally`` on an exception.
"""

from array import array

try:
    import numpy as _np
except ImportError:  # pragma: no cover - CI runs without numpy
    _np = None

from repro.machine.cpu import ReferenceMix
from repro.machine.simulator import (
    _KIND_WRITE_BYTES,
    _KIND_ZERO_BYTES,
    _RW,
    _TALLY_SLOTS,
    _WRITE,
)

TALLY_SLOTS = _TALLY_SLOTS


# Module-level helpers for the lockstep hot loops.  R008 proves the
# fleet's round loop pure by resolving every call inside it through
# the call graph; a bare ``.append``/``.setdefault``/numpy call on a
# local is statically unresolvable there, so the loops route container
# pushes and per-row numpy work through these named project functions.


def _enqueue(groups, pairs, entry):
    """Append *entry* to the *pairs* classify group, creating it."""
    groups.setdefault(pairs, []).append(entry)


def _push(seq, entry):
    """``seq.append(entry)`` behind a resolvable project name."""
    seq.append(entry)


def _fill_row(np_module, mat, row, chunk, width):
    """Copy one member's chunk into classify-matrix row *row*."""
    mat[row] = np_module.frombuffer(
        chunk, dtype=np_module.int64
    )[:width]


def _event_positions(np_module, mask_row):
    """Flagged reference positions of one member's classify row."""
    return np_module.flatnonzero(mask_row).tolist()


def make_tally_matrix(num_machines):
    """The fleet's machines x counters tally allocation plus row views.

    One flat ``array('q')`` covers every member's deferred-counter
    tally; row ``m`` is handed to member ``m`` as a ``memoryview``
    slice, so the per-machine resolvers tally straight into the shared
    matrix.
    """
    flat = array("q", bytes(8 * TALLY_SLOTS * num_machines))
    base = memoryview(flat)
    rows = tuple(
        base[row * TALLY_SLOTS:(row + 1) * TALLY_SLOTS]
        for row in range(num_machines)
    )
    return flat, rows


class FleetMember:
    """One machine's stream state inside a lockstep fleet.

    Holds the chunk iterator, the member's tally row, the
    stream-cumulative reference count that drives the poll schedule,
    and the deferred bookkeeping (:meth:`commit` lands it on the
    machine, exact at any chunk boundary).
    """

    __slots__ = (
        "machine", "chunks", "tally", "row", "interval", "poll",
        "processed", "committed_refs", "poll_cycles", "extra",
        "ifetches", "reads", "writes", "done", "failure",
    )

    def __init__(self, machine, chunks, tally, row):
        self.machine = machine
        self.chunks = iter(chunks)
        self.tally = tally
        self.row = row
        interval = machine.config.daemon_poll_refs
        self.interval = interval
        self.poll = machine.vm.daemon.poll if interval else None
        self.processed = 0
        self.committed_refs = 0
        self.poll_cycles = 0
        self.extra = 0
        self.ifetches = 0
        self.reads = 0
        self.writes = 0
        self.done = False
        self.failure = None

    def next_chunk(self):
        """The member's next non-empty chunk, or ``None`` at stream end."""
        for chunk in self.chunks:
            if len(chunk) >= 2:
                return chunk
        return None

    def poll_free(self, pairs):
        """True when the next *pairs* references cross no poll boundary."""
        if self.poll is None:
            return True
        return (
            self.interval - 1 - (self.processed % self.interval) >= pairs
        )

    def tally_kinds(self, chunk, pairs):
        """Fold one chunk's kind mix into the deferred counts.

        Same byte-pattern counts as ``run_chunks``; returns the
        chunk's uniform-kind code (-1 mixed / 0 ifetch / 1 read) for
        the segment loops.
        """
        kind_bytes = chunk[0::2].tobytes()
        chunk_ifetches = kind_bytes.count(_KIND_ZERO_BYTES)
        chunk_writes = kind_bytes.count(_KIND_WRITE_BYTES)
        self.ifetches += chunk_ifetches
        self.writes += chunk_writes
        self.reads += pairs - chunk_ifetches - chunk_writes
        if chunk_writes:
            return -1
        if chunk_ifetches == 0:
            return 1
        if chunk_ifetches == pairs:
            return 0
        return -1

    def skip_settled(self, pairs):
        """Advance past a chunk the fleet classifier proved event-free.

        An all-hit, all-settled chunk produces zero extra cycles, no
        column mutation, and no tally under either per-machine path
        (the vectorized pass returns 0 on an empty event set; the
        per-reference loop takes only ``continue`` branches), so only
        the reference count moves.
        """
        self.processed += pairs

    def walk_chunk(self, chunk, pairs, blocks, idx, is_write,
                   positions):
        """Resolve a fleet-flagged poll-free chunk's events.

        Hands the machine's shared event walk
        (:meth:`~repro.machine.simulator.SpurMachine._walk_events`)
        the positions the 2-D classify already found — same resolvers,
        same staleness handling, no second classification pass.
        """
        try:
            self.extra += self.machine._walk_events(
                chunk, 0, pairs, self.tally, blocks, idx, is_write,
                positions,
            )
        except Exception as error:
            self.fail(error)
            return
        self.processed += pairs

    def run_chunk(self, chunk, pairs, uniform):
        """Run one chunk through the machine's own segment machinery.

        Replays the ``run_chunks`` inner loop — poll-free segments cut
        arithmetically against the stream-cumulative ``processed``,
        each handed to ``_run_segment`` — so flagged chunks and every
        chunk of the no-numpy fallback stay bit-identical to the
        per-machine path.
        """
        run_segment = self.machine._run_segment
        tally = self.tally
        interval = self.interval
        poll = self.poll
        start = 0
        while start < pairs:
            if poll is None:
                stop = pairs
            else:
                stop = start + interval - 1 - (self.processed % interval)
                if stop > pairs:
                    stop = pairs
            if stop > start:
                self.extra += run_segment(chunk, start, stop, tally,
                                          uniform)
                self.processed += stop - start
                start = stop
            if start < pairs:
                self.poll_cycles += poll()
                self.extra += run_segment(chunk, start, start + 1,
                                          tally, uniform)
                self.processed += 1
                start += 1

    def commit(self):
        """Land the deferred bookkeeping on the machine.

        Mirrors ``run_chunks``'s end-of-call accounting — base cycle
        per reference, poll and resolver cycles, one kind-mix flush,
        one tally flush — but in deltas, so it is exact at any chunk
        boundary (observer epochs cut here).
        """
        machine = self.machine
        delta = self.processed - self.committed_refs
        machine.cycles += self.poll_cycles + self.extra + delta
        machine.references += delta
        self.committed_refs = self.processed
        self.poll_cycles = 0
        self.extra = 0
        if self.ifetches or self.reads or self.writes:
            mix = ReferenceMix(
                ifetches=self.ifetches, reads=self.reads,
                writes=self.writes,
            )
            mix.flush_to_counters(machine.counters)
            machine.reference_mix.add(mix.ifetches, mix.reads,
                                      mix.writes)
            self.ifetches = 0
            self.reads = 0
            self.writes = 0
        tally = self.tally
        machine._flush_tally(tally)
        for slot in range(TALLY_SLOTS):
            tally[slot] = 0

    def finish(self):
        """Stream exhausted: final commit, member leaves the fleet."""
        self.commit()
        self.done = True

    def fail(self, error):
        """A resolver raised mid-chunk.

        Flush the tally (exactly ``run_chunks``'s ``finally``) but
        drop uncommitted cycles/references/mix, then leave the fleet.
        """
        self.failure = error
        self.done = True
        self.machine._flush_tally(self.tally)


class MachineFleet:
    """N independent machines stepped in lockstep, chunk by chunk."""

    def __init__(self, store, members, use_numpy=None):
        members = list(members)
        if not members:
            raise ValueError("fleet needs at least one member")
        geometry = members[0].machine.cache.geometry
        for member in members:
            if member.machine.cache.geometry != geometry:
                raise ValueError(
                    "fleet members must share one cache geometry"
                )
        self.store = store
        self.members = members
        self.live = list(members)
        self._views = store.views
        if use_numpy is None:
            use_numpy = _np is not None and store.views is not None
        self._use_numpy = use_numpy
        cache = members[0].machine.cache
        self._block_bits = cache.block_bits
        self._index_mask = cache.index_mask

    def run_round(self):
        """Fetch and process one chunk per live member.

        Poll-free chunks of equal length form vectorized classify
        groups; everything else steps through the member's own segment
        machinery.  Returns the members that advanced, finished, or
        failed this round (the runner hooks observers and sanitizers
        off this list); ``self.live`` shrinks as streams end.
        """
        groups = {}
        solo = []
        for member in self.live:
            try:
                chunk = member.next_chunk()
            except Exception as error:
                member.fail(error)
                continue
            if chunk is None:
                member.finish()
                continue
            pairs = len(chunk) >> 1
            uniform = member.tally_kinds(chunk, pairs)
            if self._use_numpy and member.poll_free(pairs):
                _enqueue(groups, pairs, (member, chunk, uniform))
            else:
                _push(solo, (member, chunk, pairs, uniform))
        for pairs, group in groups.items():
            if len(group) >= 2:
                self._classify_group(pairs, group)
            else:
                member, chunk, uniform = group[0]
                self._step_member(member, chunk, pairs, uniform)
        for member, chunk, pairs, uniform in solo:
            self._step_member(member, chunk, pairs, uniform)
        stepped = self.live
        self.live = [m for m in stepped if not m.done]
        return stepped

    def _classify_group(self, pairs, group):
        """One 2-D classify across a same-length group of chunks.

        Gathers each member's own column row (machines are
        independent; no cross-member state exists) and flags members
        whose chunk contains any miss or unsettled write hit.  Clean
        members skip the chunk outright; flagged members walk exactly
        the flagged positions through the machine's own event walk,
        whose live staleness re-verification makes this pass a
        conservative filter, never an oracle.
        """
        count = len(group)
        width = pairs << 1
        mat = _np.empty((count, width), dtype=_np.int64)
        for i, (member, chunk, _uniform) in enumerate(group):
            _fill_row(_np, mat, i, chunk, width)
        kinds = mat[:, 0::2]
        vaddrs = mat[:, 1::2]
        blocks = vaddrs >> self._block_bits
        idx = blocks & self._index_mask
        rows = _np.array(
            [member.row for member, _, _ in group], dtype=_np.intp
        )
        sel = (rows[:, None], idx)
        views = self._views
        miss = _np.not_equal(views.line_block[sel], blocks)
        is_write = _np.equal(kinds, _WRITE)
        if bool(is_write.any()):
            event_mask = miss | (
                is_write
                & ~miss
                & ~(
                    (views.block_dirty[sel] != 0)
                    & (views.page_dirty[sel] != 0)
                    & (views.prot[sel] == _RW)
                )
            )
        else:
            event_mask = miss
        flags = event_mask.any(axis=1).tolist()
        for i, (member, chunk, _uniform) in enumerate(group):
            if flags[i]:
                member.walk_chunk(
                    chunk, pairs, blocks[i], idx[i], is_write[i],
                    _event_positions(_np, event_mask[i]),
                )
            else:
                member.skip_settled(pairs)

    def _step_member(self, member, chunk, pairs, uniform):
        """Run one member's chunk, capturing per-member failures."""
        try:
            member.run_chunk(chunk, pairs, uniform)
        except Exception as error:
            member.fail(error)


__all__ = ["FleetMember", "MachineFleet", "TALLY_SLOTS",
           "make_tally_matrix"]
