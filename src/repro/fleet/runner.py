"""Map campaign cells onto lockstep fleets.

:func:`simulate_cells_fleet` is the fleet-side twin of
:func:`repro.parallel.executor.simulate_cell`: it takes a campaign's
cell list plus the pending indices, groups them by cache geometry
(the 2-D classifier needs uniform row shapes), builds one
:class:`~repro.fleet.columns.FleetColumnStore`-backed machine per
cell, steps each group in lockstep, and delivers every cell's
:class:`~repro.machine.runner.RunResult` (or exception) through the
same ``record`` callback the serial and pooled paths use — so trace
events, progress, failure reports, and cache stores are identical.

Per-cell telemetry rides along unchanged: a sanitizer attaches per
member (the fleet drives ``check_now`` — per chunk in ``full`` mode,
at stream end otherwise), and an observer attaches passively, sampled
at committed chunk boundaries
(:meth:`~repro.observe.observer.RunObserver.sample_boundary`).

``host_seconds`` is the one knowingly shared figure: the fleet's
wall-clock is a joint cost, so each member reports an equal share of
its group's wall time.  Like every host diagnostic it is excluded
from result equality.
"""

import time

from repro.fleet.columns import FleetColumnStore
from repro.fleet.lockstep import FleetMember, MachineFleet, make_tally_matrix
from repro.machine.runner import RunResult, _take_chunks
from repro.machine.simulator import SpurMachine
from repro.workloads.base import DEFAULT_CHUNK_REFS


class _FleetCell:
    """One campaign cell's member machine plus its telemetry."""

    __slots__ = ("index", "cell", "member", "instance", "observer",
                 "sanitizer")

    def __init__(self, index, cell, member, instance, observer,
                 sanitizer):
        self.index = index
        self.cell = cell
        self.member = member
        self.instance = instance
        self.observer = observer
        self.sanitizer = sanitizer


def simulate_cells_fleet(cells, indices, record):
    """Simulate the pending cells of a campaign in lockstep fleets.

    ``cells`` is the full campaign cell list, ``indices`` the pending
    subset; ``record(index, outcome)`` receives each cell's result or
    exception exactly once, in fleet completion order (callers already
    tolerate the pool's arbitrary order).
    """
    groups = {}
    for index in indices:
        groups.setdefault(cells[index].config.cache, []).append(index)
    for geometry, group in groups.items():
        _run_fleet_group(cells, group, geometry, record)


def _build_fleet_cell(index, cell, store, tally, row):
    """Instantiate one cell's workload, machine, and telemetry."""
    instance = cell.workload.instantiate(
        cell.config.page_bytes, seed=cell.seed
    )
    machine = SpurMachine(
        cell.config, instance.space_map,
        column_store=store.members[row],
    )
    sanitizer = None
    if cell.sanitize:
        from repro.sanitize.sanitizer import Sanitizer

        sanitizer = Sanitizer(mode=cell.sanitize)
        sanitizer.attach(machine)
    observer = None
    if cell.observe:
        from repro.observe.observer import RunObserver

        observer = RunObserver(
            epoch_refs=cell.epoch_refs, label=cell.label
        )
        observer.attach_passive(machine)
    # chunk_refs=0 selects the legacy tuple stream elsewhere; the
    # fleet always steps chunks (bit-identical by the run/run_chunks
    # contract), so it substitutes the default chunking.
    chunks = instance.access_chunks(cell.chunk_refs or DEFAULT_CHUNK_REFS)
    if cell.max_references is not None:
        chunks = _take_chunks(chunks, cell.max_references)
    member = FleetMember(machine, chunks, tally, row)
    return _FleetCell(index, cell, member, instance, observer,
                      sanitizer)


def _run_fleet_group(cells, indices, geometry, record):
    """Run one geometry-uniform group of cells as a lockstep fleet."""
    store = FleetColumnStore(len(indices), geometry.num_lines)
    _tallies, tally_rows = make_tally_matrix(len(indices))
    fleet_cells = []
    for row, index in enumerate(indices):
        try:
            fleet_cells.append(_build_fleet_cell(
                index, cells[index], store, tally_rows[row], row
            ))
        except Exception as error:
            record(index, error)
    if not fleet_cells:
        return
    by_member = {id(fc.member): fc for fc in fleet_cells}
    fleet = MachineFleet(store, [fc.member for fc in fleet_cells])
    started = time.perf_counter()
    while fleet.live:
        for member in fleet.run_round():
            fc = by_member[id(member)]
            if member.done:
                continue
            if fc.observer is not None:
                member.commit()
                fc.observer.sample_boundary()
            if fc.sanitizer is not None and fc.sanitizer.mode == "full":
                fc.sanitizer.check_now()
    share = (time.perf_counter() - started) / len(fleet_cells)
    for fc in fleet_cells:
        record(fc.index, _assemble(fc, share))


def _assemble(fc, host_share):
    """Build one member's RunResult, mirroring ExperimentRunner.run."""
    member = fc.member
    if member.failure is not None:
        return member.failure
    machine = member.machine
    try:
        if fc.sanitizer is not None:
            fc.sanitizer.check_now()
        observation = None
        if fc.observer is not None:
            observation = fc.observer.finish()
        swap_stats = machine.swap.stats
        return RunResult(
            workload=fc.instance.name,
            config_name=fc.cell.config.name,
            memory_bytes=fc.cell.config.memory_bytes,
            dirty_policy=machine.dirty_policy.name,
            reference_policy=machine.reference_policy.name,
            seed=fc.cell.seed,
            references=machine.references,
            cycles=machine.cycles,
            events=machine.counters.snapshot().as_dict(),
            page_ins=swap_stats.page_ins,
            page_outs=swap_stats.page_outs,
            zero_fills=swap_stats.zero_fills,
            potentially_modified=swap_stats.potentially_modified,
            not_modified=swap_stats.not_modified,
            host_seconds=host_share,
            scalar_bailouts=machine.scalar_bailouts,
            observation=observation,
        )
    except Exception as error:
        return error


__all__ = ["simulate_cells_fleet"]
