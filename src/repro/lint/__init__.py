"""Repo-specific static analysis for the SPUR reproduction.

Eight rules encode discipline the simulator depends on but generic
linters cannot check::

    python -m repro.lint src/

Syntactic (per-file):

* **R001** hot-path purity in ``SpurMachine.run``'s inner loop
* **R002** parallel tag-array write discipline
* **R003** ``Event`` exhaustiveness (mode maps + increment sites)
* **R004** ``Event`` documentation coverage in ``docs/events.md``

Whole-program (symbol table + call graph + effect inference over the
scanned tree):

* **R005** determinism audit of everything reachable from the
  simulator hot loops
* **R006** cache-key soundness for ``MachineConfig``/``RunOptions``
  field reads on the simulation path
* **R007** worker safety for callables submitted to process pools
* **R008** transitive hot-path purity (R001's call ban as a proof)

See ``docs/analysis.md`` for the full catalogue, the effect lattice,
and suppression syntax.
"""

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.lint.callgraph import CallGraph, CallSite
from repro.lint.catalog import RULES, explain
from repro.lint.effects import NONDET, EffectTable, classify
from repro.lint.engine import (
    Module,
    Project,
    build_project,
    run_lint,
)
from repro.lint.findings import Finding, LintConfig
from repro.lint.flowrules import (
    FLOW_RULES,
    check_cache_key,
    check_determinism,
    check_transitive_purity,
    check_worker_safety,
)
from repro.lint.rules import (
    ALL_RULES,
    check_event_docs,
    check_event_exhaustiveness,
    check_hot_loops,
    check_tag_array_writes,
)
from repro.lint.symbols import SymbolTable

__all__ = [
    "ALL_RULES",
    "CallGraph",
    "CallSite",
    "EffectTable",
    "FLOW_RULES",
    "Finding",
    "LintConfig",
    "Module",
    "NONDET",
    "Project",
    "RULES",
    "SymbolTable",
    "apply_baseline",
    "build_project",
    "check_cache_key",
    "check_determinism",
    "check_event_docs",
    "check_event_exhaustiveness",
    "check_hot_loops",
    "check_tag_array_writes",
    "check_transitive_purity",
    "check_worker_safety",
    "classify",
    "explain",
    "load_baseline",
    "render_baseline",
    "run_lint",
]
