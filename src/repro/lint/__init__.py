"""Repo-specific static analysis for the SPUR reproduction.

Four rules encode discipline the simulator depends on but generic
linters cannot check::

    python -m repro.lint src/

* **R001** hot-path purity in ``SpurMachine.run``'s inner loop
* **R002** parallel tag-array write discipline
* **R003** ``Event`` exhaustiveness (mode maps + increment sites)
* **R004** ``Event`` documentation coverage in ``docs/events.md``

See ``docs/invariants.md`` for the full catalogue and rationale.
"""

from repro.lint.engine import Module, run_lint
from repro.lint.findings import Finding, LintConfig
from repro.lint.rules import (
    ALL_RULES,
    check_event_docs,
    check_event_exhaustiveness,
    check_hot_loops,
    check_tag_array_writes,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "Module",
    "run_lint",
    "check_event_docs",
    "check_event_exhaustiveness",
    "check_hot_loops",
    "check_tag_array_writes",
]
