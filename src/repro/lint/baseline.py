"""Suppression mechanics: inline comments and the baseline file.

Two ways to accept a finding, both deliberate and reviewable:

* an inline ``# lint: disable=R005`` (comma-separated rules) on the
  flagged line — for one-off, locally-justified exceptions;
* a committed baseline file — JSON with a justification string per
  entry — for findings that are understood and accepted as a set:

  .. code-block:: json

      {"version": 1, "findings": [
        {"rule": "R005", "path": "src/repro/x.py",
         "message": "...", "justification": "why this is fine"}
      ]}

Baseline entries match on ``(rule, path, message)`` — line numbers
drift with every edit and are deliberately excluded.  A stale entry
(matching nothing) is reported so the baseline shrinks over time
instead of fossilising.
"""

import json
import re

_DISABLE_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9, ]+)")

BASELINE_VERSION = 1


def inline_disabled_rules(source_line):
    """Rule names disabled by an inline comment on *source_line*."""
    match = _DISABLE_RE.search(source_line)
    if not match:
        return frozenset()
    return frozenset(
        part.strip() for part in match.group(1).split(",")
        if part.strip()
    )


def filter_inline_suppressions(findings, modules):
    """Drop findings whose source line carries a disable comment."""
    lines_by_path = {
        module.path: module.source.splitlines()
        for module in modules
    }
    kept = []
    for finding in findings:
        lines = lines_by_path.get(finding.path)
        if lines and 1 <= finding.line <= len(lines):
            disabled = inline_disabled_rules(lines[finding.line - 1])
            if finding.rule in disabled:
                continue
        kept.append(finding)
    return kept


def load_baseline(path):
    """Parse a baseline file into a list of entry dicts.

    Raises ``ValueError`` on a malformed file — a silently ignored
    baseline would un-suppress everything or suppress nothing.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(
            f"baseline {path}: expected an object with a "
            f"'findings' list"
        )
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: unsupported version "
            f"{data.get('version')!r} (expected {BASELINE_VERSION})"
        )
    entries = data["findings"]
    for entry in entries:
        for key in ("rule", "path", "message"):
            if key not in entry:
                raise ValueError(
                    f"baseline {path}: entry missing {key!r}: "
                    f"{entry!r}"
                )
    return entries


def apply_baseline(findings, entries):
    """Split findings against baseline entries.

    Returns ``(new, accepted, stale_entries)``: findings not in the
    baseline, findings the baseline accepts, and entries that matched
    nothing (candidates for removal).
    """
    def key(rule, path, message):
        return (rule, path.replace("\\", "/"), message)

    wanted = {}
    for entry in entries:
        wanted.setdefault(
            key(entry["rule"], entry["path"], entry["message"]), []
        ).append(entry)
    new = []
    accepted = []
    used = set()
    for finding in findings:
        k = key(finding.rule, finding.path, finding.message)
        if k in wanted:
            accepted.append(finding)
            used.add(k)
        else:
            new.append(finding)
    stale = [
        entry for k, group in wanted.items() if k not in used
        for entry in group
    ]
    return new, accepted, stale


def render_baseline(findings, justification=""):
    """A baseline JSON document accepting *findings* as-is."""
    return json.dumps(
        {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path.replace("\\", "/"),
                    "message": finding.message,
                    "justification": justification,
                }
                for finding in findings
            ],
        },
        indent=2,
    ) + "\n"


__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "filter_inline_suppressions",
    "inline_disabled_rules",
    "load_baseline",
    "render_baseline",
]
