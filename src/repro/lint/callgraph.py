"""Call-graph construction over the project symbol table.

Every call site in every scanned function is resolved to one of:

``function``
    A direct project function/method hit — a module-level call, a
    constructor, a ``self``/typed-receiver method whose class (or base
    chain) defines it, or a pre-bound local (``miss = self._miss``
    before a hot loop) traced back to its definition.

``dynamic``
    The dynamic-dispatch fallback: the receiver's class could not be
    recovered, so the candidate pool is *every* project method with
    that name.  Names in ``LintConfig.dynamic_skip_names`` (generic
    container verbs like ``get``/``append`` that would false-match
    stdlib calls onto unrelated project methods) skip the pool and
    resolve as ``unresolved`` instead.

``external``
    A dotted call whose root is an imported module alias
    (``time.perf_counter()``) or an IO-shaped builtin (``print``);
    carries the dotted name for the effect tables.

``builtin``
    A plain builtin (``len``, ``iter``, ``zip`` ...): effect-free.

``unresolved``
    Nothing provable.  Consumers choose their polarity: the
    determinism audit (R005) treats unresolved as silent, the hot-path
    proof (R008) treats it as a failure to prove purity.

Edges are keyed by qualified name (``Class.method``); same-named
definitions in different modules share a node and their effects union
— a deliberate, conservative merge.
"""

import ast
import builtins
from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.lint.symbols import dotted_parts

_BUILTIN_NAMES = frozenset(dir(builtins))

#: Builtins with observable effects; resolved as ``external`` with a
#: ``builtins.``-prefixed dotted name so the effect tables see them.
_EFFECT_BUILTINS = frozenset({"print", "open", "input", "exec", "eval",
                              "breakpoint", "globals", "vars"})


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    node: ast.Call
    kind: str                      # function|dynamic|external|builtin|unresolved
    display: str                   # how to name the callee in findings
    candidates: Tuple[str, ...] = ()   # callee qualnames (project)
    external: Optional[str] = None     # dotted name for externals
    path: str = ""                     # module the call appears in

    @property
    def lineno(self):
        return self.node.lineno


def _local_method_bindings(func_node):
    """Pre-bound locals: ``{name: (method/attr names,)}``.

    ``miss = self._miss`` binds ``miss`` to the attribute name
    ``_miss``; conditional forms (``poll = a.poll if x else None``)
    contribute every arm.  Only the *outermost* attribute of each
    chain is a candidate callable — ``self.vm.daemon.poll`` binds
    ``poll``, not ``vm``.
    """
    bindings = {}

    def outer_attrs(expr):
        names = []
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Attribute):
                names.append(node.attr)
                continue  # never descend into the chain's value
            if isinstance(node, ast.Call):
                continue  # call results are values, not callables
            stack.extend(ast.iter_child_nodes(node))
        return names

    for node in ast.walk(func_node):
        if not isinstance(node, ast.Assign):
            continue
        names = outer_attrs(node.value)
        if not names:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                merged = bindings.get(target.id, ()) + tuple(
                    name for name in names
                    if name not in bindings.get(target.id, ())
                )
                bindings[target.id] = merged
    return bindings


class CallGraph:
    """Call sites, edges, and reachability over a symbol table."""

    def __init__(self, symbols, config):
        self.symbols = symbols
        self.config = config
        #: qualname -> [CallSite] (unioned over same-named defs).
        self.sites = {}
        #: qualname -> frozenset of callee qualnames.
        self.edges = {}
        #: qualname -> frozenset of external dotted names.
        self.externals = {}
        for qualname, infos in symbols.functions.items():
            sites = []
            for info in infos:
                sites.extend(self._resolve_function(info))
            self.sites[qualname] = sites
            callees = set()
            external = set()
            for site in sites:
                callees.update(site.candidates)
                if site.external:
                    external.add(site.external)
            self.edges[qualname] = frozenset(callees)
            self.externals[qualname] = frozenset(external)

    # -- resolution ----------------------------------------------------

    def _resolve_function(self, info):
        bindings = _local_method_bindings(info.node)
        local_classes = self.symbols.local_class_bindings(info.node)
        sites = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                site = self._resolve_call(
                    node, info, bindings, local_classes
                )
                site.path = info.module_path
                sites.append(site)
        return sites

    def _method_candidates(self, method_name, class_names):
        found = []
        for class_name in class_names:
            for candidate in self.symbols.method_in_class(
                class_name, method_name
            ):
                if candidate.qualname not in found:
                    found.append(candidate.qualname)
        return tuple(found)

    def _dynamic_candidates(self, method_name):
        if method_name in self.config.dynamic_skip_names:
            return None
        infos = self.symbols.by_name.get(method_name, [])
        return tuple(sorted({info.qualname for info in infos}))

    def _resolve_call(self, node, info, bindings, local_classes):
        func = node.func
        symbols = self.symbols

        if isinstance(func, ast.Name):
            name = func.id
            if name in bindings:
                candidates = ()
                for attr in bindings[name]:
                    dynamic = self._dynamic_candidates(attr)
                    if dynamic:
                        candidates += tuple(
                            q for q in dynamic if q not in candidates
                        )
                if candidates:
                    return CallSite(node, "function", f"{name}()",
                                    candidates=candidates)
                return CallSite(node, "unresolved", f"{name}()")
            target = symbols.module_functions.get(
                (info.module_path, name)
            )
            if target is not None:
                return CallSite(node, "function", f"{name}()",
                                candidates=(target.qualname,))
            if name in symbols.classes:
                candidates = self._method_candidates(
                    "__init__", (name,)
                )
                return CallSite(node, "function", f"{name}()",
                                candidates=candidates)
            imported = symbols.import_target(info.module_path, name)
            if imported is not None:
                return self._imported_call(node, name, imported)
            if name in _EFFECT_BUILTINS:
                return CallSite(node, "external", f"{name}()",
                                external=f"builtins.{name}")
            if name in _BUILTIN_NAMES:
                return CallSite(node, "builtin", f"{name}()")
            return CallSite(node, "unresolved", f"{name}()")

        if isinstance(func, ast.Attribute):
            attr = func.attr
            if (isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super"
                    and info.class_name):
                bases = ()
                for cinfo in symbols.class_infos(info.class_name):
                    bases += tuple(
                        base for base in cinfo.bases
                        if base not in bases
                    )
                candidates = self._method_candidates(attr, bases)
                if candidates:
                    return CallSite(node, "function",
                                    f"super().{attr}()",
                                    candidates=candidates)
                return CallSite(node, "unresolved",
                                f"super().{attr}()")
            chain = dotted_parts(func)
            if chain is not None and len(chain) >= 2:
                root = chain[0]
                imported = symbols.import_target(
                    info.module_path, root
                )
                if imported is not None:
                    dotted = ".".join((imported,) + chain[1:])
                    return self._imported_call(node, attr, dotted)
                receiver = symbols.receiver_classes(
                    chain[:-1], info.class_name
                )
                if receiver is None and chain[0] in local_classes:
                    receiver = ()
                    for class_name in local_classes[chain[0]]:
                        if class_name not in receiver:
                            receiver += (class_name,)
                    receiver = symbols.receiver_classes(
                        (receiver[0],) + chain[1:-1], None
                    ) if len(chain) > 2 else receiver
                if receiver:
                    candidates = self._method_candidates(
                        attr, receiver
                    )
                    if candidates:
                        return CallSite(
                            node, "function", f".{attr}()",
                            candidates=candidates,
                        )
            dynamic = self._dynamic_candidates(attr)
            if dynamic is None:
                return CallSite(node, "unresolved", f".{attr}()")
            if dynamic:
                return CallSite(node, "dynamic", f".{attr}()",
                                candidates=dynamic)
            return CallSite(node, "unresolved", f".{attr}()")

        return CallSite(node, "unresolved", "<expr>()")

    def _imported_call(self, node, name, dotted):
        """A call through an import: project re-import or external."""
        root = dotted.split(".")[0]
        if root in self.config.project_packages:
            dynamic = self._dynamic_candidates(dotted.split(".")[-1])
            if dynamic:
                return CallSite(node, "function", f"{name}()",
                                candidates=dynamic)
            return CallSite(node, "unresolved", f"{name}()")
        return CallSite(node, "external", f"{name}()",
                        external=dotted)

    # -- reachability --------------------------------------------------

    def reachable(self, roots):
        """``{qualname: parent}`` for everything reachable from roots.

        Roots map to ``None``; every other entry's parent chain walks
        back to a root (shortest path, BFS order), which findings use
        to show *why* a function is on the audited surface.
        """
        parents = {}
        queue = deque()
        for root in roots:
            if root in self.edges and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    def path_to_root(self, parents, qualname):
        """Call chain from a root down to *qualname* (inclusive)."""
        path = []
        current = qualname
        while current is not None:
            path.append(current)
            current = parents.get(current)
        path.reverse()
        return path

    def sites_for(self, qualname):
        """Every :class:`CallSite` inside *qualname*'s bodies."""
        return self.sites.get(qualname, [])


__all__ = ["CallGraph", "CallSite"]
