"""The rule catalog: one entry per rule, used by ``--explain``.

Each entry is the prose a developer needs at the moment a rule fires:
what invariant it protects, why the repo cares, and how to fix or —
when justified — suppress a finding.  ``docs/analysis.md`` renders
the same material at length.
"""

RULES = {
    "E000": (
        "Syntax errors",
        "A file that does not parse cannot be analysed; the finding\n"
        "carries the parser's message.  Fix the syntax — there is no\n"
        "suppression for this rule.",
    ),
    "R001": (
        "Hot-loop allocation and call discipline",
        "The per-reference loops named in `hot_loops` and\n"
        "`chunked_hot_loops` are the simulator's throughput budget:\n"
        "no attribute calls (pre-bind methods to locals before the\n"
        "loop), no comprehensions, no list/dict/set literals, and in\n"
        "chunked loops no per-reference tuple boxing.  Chunked loops\n"
        "must keep the two-level chunk/reference shape.  For\n"
        "functions also in `effect_hot_loops`, the attribute-call ban\n"
        "is handled by R008's call-graph proof instead of a spelling\n"
        "ban.",
    ),
    "R002": (
        "Parallel tag-array write discipline",
        "The cache's tag arrays are parallel lists indexed by line;\n"
        "a write from an unsanctioned module can desynchronise them\n"
        "without failing any unit test until much later.  Route the\n"
        "update through VirtualCache, or extend\n"
        "`tag_array_writers` when a module legitimately owns a field.",
    ),
    "R003": (
        "Event exhaustiveness",
        "Every Event member must belong to a MODE_SETS mode (else no\n"
        "campaign can count it) and must be incremented somewhere in\n"
        "the scanned sources (else it is dead weight in every table).",
    ),
    "R004": (
        "Event documentation coverage",
        "docs/events.md must mention every Event member; reviewers\n"
        "navigate the Table 3-2 reproduction by that page.",
    ),
    "R005": (
        "Determinism audit of the simulation path",
        "Code reachable from the hot-loop roots may not iterate sets\n"
        "(arbitrary order), call unseeded `random`, or read the\n"
        "wall clock / environment: the parallel campaign cache and\n"
        "lockstep fleet assume two runs of the same cell are\n"
        "bit-identical.  The campaign resume machinery\n"
        "(`resume_identity_roots`: cell keying, spec codec, journal\n"
        "replay) is audited the same way — a resumed campaign must\n"
        "derive identical keys on every run or it recomputes work\n"
        "its journal already holds.  Fixes: iterate `sorted(...)`,\n"
        "thread an explicit seeded generator, hoist clock reads to\n"
        "the runner (host timing is declared cache-inert there).\n"
        "Membership tests on sets are fine — only iteration order\n"
        "leaks.",
    ),
    "R006": (
        "Cache-key soundness",
        "Every MachineConfig/RunOptions/RunCell field read on the\n"
        "simulation path must be covered by the cache_key spec or\n"
        "declared in `cache_inert_fields`.  A field that changes\n"
        "results but not the key silently serves stale cached\n"
        "counters.  Coverage is derived, not trusted: the rule parses\n"
        "which parameters cache_key's body reads and which attributes\n"
        "call sites forward into it.",
    ),
    "R007": (
        "Worker safety",
        "A callable handed to `pool.submit` crosses a process\n"
        "boundary: lambdas and nested functions cannot be pickled,\n"
        "and module-global mutation happens in the child and is\n"
        "silently lost.  Submit a module-level function and return\n"
        "the data.  The named campaign worker entry points\n"
        "(`worker_entry_points`: the pool work function and the\n"
        "`repro worker` CLI) are held to the same no-global-mutation\n"
        "proof even when no submit call is in view — their results\n"
        "must travel back as return values or protocol events.",
    ),
    "R008": (
        "Transitive hot-path purity",
        "Every call inside a hot loop is resolved through the\n"
        "project call graph and its transitive effects inferred: a\n"
        "callee may count (`counters`) and write tag arrays\n"
        "(`tag-write`) but may not reach IO, clock/env/random reads,\n"
        "set iteration, or global mutation.  A helper that the\n"
        "analysis proves pure passes without being hand-allowlisted —\n"
        "this is R001's attribute-call ban upgraded from spelling to\n"
        "proof.  A call the graph cannot resolve fails the proof:\n"
        "pre-bind a project helper or extend the allowlist.",
    ),
}


def explain(rule):
    """Render the catalog entry for *rule*, or ``None`` if unknown."""
    entry = RULES.get(rule.upper())
    if entry is None:
        return None
    title, body = entry
    return f"{rule.upper()} — {title}\n\n{body}"


__all__ = ["RULES", "explain"]
