"""``python -m repro.lint``: run the repo-specific lint rules.

::

    python -m repro.lint            # lint src/
    python -m repro.lint src tests  # explicit targets

Exit status 0 when clean, 1 when any rule fires.  See
``docs/invariants.md`` for what each rule enforces.
"""

import argparse
import sys

from repro.lint.engine import run_lint


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Repo-specific static checks: hot-path purity (R001), "
            "parallel tag-array write discipline (R002), Event "
            "exhaustiveness (R003), Event documentation (R004)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line; print findings only",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        findings = run_lint(args.paths)
    except FileNotFoundError as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if not args.quiet:
        count = len(findings)
        noun = "finding" if count == 1 else "findings"
        print(f"repro.lint: {count} {noun} in {' '.join(args.paths)}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
