"""``python -m repro.lint``: run the repo-specific analysis.

::

    python -m repro.lint                      # lint src/
    python -m repro.lint src tests            # explicit targets
    python -m repro.lint --explain R006       # what a rule means
    python -m repro.lint --format sarif src   # CI artifact output
    python -m repro.lint --baseline lint-baseline.json src

Exit status 0 when clean (or every finding is baselined), 1 when any
new finding fires, 2 on usage errors.  See ``docs/analysis.md`` for
the full R001-R008 catalogue.
"""

import argparse
import json
import sys

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.lint.catalog import RULES, explain
from repro.lint.engine import run_lint


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Repo-specific static analysis: syntactic discipline "
            "(R001-R004) plus whole-program flow rules (R005 "
            "determinism, R006 cache-key soundness, R007 worker "
            "safety, R008 transitive hot-path purity)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the summary line; print findings only",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print the catalogue entry for RULE and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="accept findings listed in this baseline file; only "
             "new findings fail the run",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current findings as a baseline file and "
             "exit 0 (fill in the justification fields before "
             "committing)",
    )
    return parser


def _as_json(findings):
    return json.dumps(
        {
            "count": len(findings),
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                }
                for f in findings
            ],
        },
        indent=2,
    )


def _as_sarif(findings):
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": title},
            "fullDescription": {"text": body},
        }
        for rule, (title, body) in sorted(RULES.items())
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {"startLine": f.line},
                    }
                }
            ],
        }
        for f in findings
    ]
    return json.dumps(
        {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro.lint",
                            "informationUri":
                                "docs/analysis.md",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        },
        indent=2,
    )


def main(argv=None):
    args = build_parser().parse_args(argv)

    if args.explain:
        text = explain(args.explain)
        if text is None:
            known = ", ".join(sorted(RULES))
            print(
                f"repro.lint: unknown rule {args.explain!r} "
                f"(known: {known})",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    try:
        findings = run_lint(args.paths)
    except FileNotFoundError as error:
        print(f"repro.lint: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as out:
            out.write(render_baseline(findings))
        print(
            f"repro.lint: wrote {len(findings)} baseline "
            f"entr{'y' if len(findings) == 1 else 'ies'} to "
            f"{args.write_baseline}"
        )
        return 0

    accepted = []
    stale = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"repro.lint: {error}", file=sys.stderr)
            return 2
        findings, accepted, stale = apply_baseline(findings, entries)

    if args.format == "json":
        print(_as_json(findings))
    elif args.format == "sarif":
        print(_as_sarif(findings))
    else:
        for finding in findings:
            print(finding.render())
        if not args.quiet:
            count = len(findings)
            noun = "finding" if count == 1 else "findings"
            summary = (
                f"repro.lint: {count} {noun} in "
                f"{' '.join(args.paths)}"
            )
            if accepted:
                summary += f" ({len(accepted)} baselined)"
            print(summary)
            for entry in stale:
                print(
                    f"repro.lint: stale baseline entry "
                    f"{entry['rule']} {entry['path']} — remove it"
                )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
