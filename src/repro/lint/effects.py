"""Per-function effect inference over the call graph.

Each function gets a frozenset of effect *flags*, the union of what
its own body does (the intrinsic scan) and what everything it can
reach through the call graph does (a monotone fixpoint, so cycles and
recursion converge).  The flags:

``clock`` / ``env`` / ``random`` / ``unordered-iter``
    The nondeterminism family (``NONDET``): wall-clock reads,
    environment reads, unseeded randomness, iteration over a set.
    Any of these reachable from the simulator loop breaks the
    bit-equivalence the parallel and lockstep layers rest on (R005).

``io``
    Writes to the outside world: ``print``, ``open``, stdout/stderr.

``global-mutation``
    Rebinding or mutating a module-level name — unsafe in a worker
    function that may run in a forked pool (R007).

``counters``
    Scalar attribute writes (``self.misses += 1``): the sanctioned
    bookkeeping effect of the hot path.

``tag-write``
    Subscript stores into the parallel tag arrays (R002's territory),
    tracked transitively so a helper that pokes ``valid[...]`` marks
    its callers.

``unknown-call``
    The function (or something it reaches) makes a call the graph
    could not resolve.  This is the asymmetry knob: the determinism
    *audit* (R005) ignores it, the purity *proof* (R008) treats it as
    failure to prove.

Display classification (the lattice's readable face) is
:func:`classify`: nondeterministic > io > tag-array-writer >
counters-only > pure.
"""

import ast

from repro.lint.symbols import dotted_parts

IO = "io"
CLOCK = "clock"
ENV = "env"
RANDOM = "random"
UNORDERED_ITER = "unordered-iter"
GLOBAL_MUTATION = "global-mutation"
COUNTERS = "counters"
TAG_WRITE = "tag-write"
UNKNOWN_CALL = "unknown-call"

#: The flags that break run-to-run bit-equivalence.
NONDET = frozenset({CLOCK, ENV, RANDOM, UNORDERED_ITER})

#: Dotted-name prefixes of external callables, mapped to their flags.
#: Longest prefix wins; an empty flag set means "known benign".
_EXTERNAL_EFFECTS = (
    ("time.", frozenset({CLOCK})),
    ("datetime.", frozenset({CLOCK})),
    ("random.Random", frozenset()),       # seedable instance
    ("random.seed", frozenset()),
    ("random.", frozenset({RANDOM})),
    ("numpy.random.", frozenset({RANDOM})),
    # Array arithmetic/indexing is pure; the hot loop's vectorized
    # classifier depends on this signature for its R008 proof.
    ("numpy.", frozenset()),
    ("secrets.", frozenset({RANDOM})),
    ("uuid.", frozenset({RANDOM})),
    ("os.urandom", frozenset({RANDOM})),
    ("os.environ", frozenset({ENV})),
    ("os.getenv", frozenset({ENV})),
    ("os.cpu_count", frozenset({ENV})),
    ("os.getpid", frozenset({ENV})),
    ("os.", frozenset({IO})),
    ("sys.stdout", frozenset({IO})),
    ("sys.stderr", frozenset({IO})),
    ("sys.", frozenset()),
    ("builtins.print", frozenset({IO})),
    ("builtins.open", frozenset({IO})),
    ("builtins.input", frozenset({IO})),
    ("builtins.breakpoint", frozenset({IO})),
    ("builtins.", frozenset()),
    ("pathlib.", frozenset({IO})),
    ("shutil.", frozenset({IO})),
    ("tempfile.", frozenset({IO})),
    ("subprocess.", frozenset({IO})),
    ("socket.", frozenset({IO})),
    ("logging.", frozenset({IO})),
    ("concurrent.", frozenset({IO})),
    ("multiprocessing.", frozenset({IO})),
    ("pickle.", frozenset({IO})),
)

#: Pure-by-construction stdlib surface: calls here carry no flags and
#: do not poison a purity proof.
_BENIGN_ROOTS = frozenset({
    "abc", "array", "bisect", "collections", "contextlib", "copy",
    "dataclasses", "enum", "functools", "hashlib", "heapq",
    "itertools", "json", "math", "operator", "re", "string", "struct",
    "textwrap", "types", "typing", "warnings", "argparse", "ast",
    "difflib", "fnmatch", "statistics",
})

#: Non-call attribute reads with effects (no Call node to resolve).
_ATTR_EFFECTS = {
    "os.environ": frozenset({ENV}),
    "sys.argv": frozenset({ENV}),
    "sys.stdout": frozenset({IO}),
    "sys.stderr": frozenset({IO}),
    "sys.stdin": frozenset({IO}),
}

#: Mutating method names on a module-global receiver.
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "remove",
    "discard", "pop", "popleft", "appendleft", "clear", "setdefault",
})


def external_effects(dotted):
    """Flags for an external dotted callable, or ``None`` if unknown."""
    for prefix, flags in _EXTERNAL_EFFECTS:
        if dotted == prefix or dotted.startswith(prefix):
            return flags
    if dotted.split(".")[0] in _BENIGN_ROOTS:
        return frozenset()
    return None


def _is_set_expr(node, set_names, set_attrs, class_name):
    """Whether *node* statically looks like a set being iterated."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_parts(node.func)
        if parts and parts[-1] in ("set", "frozenset"):
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute):
        chain = dotted_parts(node)
        if (chain and len(chain) == 2 and chain[0] == "self"
                and class_name is not None):
            return chain[1] in set_attrs.get(class_name, frozenset())
    if isinstance(node, (ast.BinOp, ast.BoolOp)):
        children = (node.values if isinstance(node, ast.BoolOp)
                    else (node.left, node.right))
        return any(
            _is_set_expr(child, set_names, set_attrs, class_name)
            for child in children
        )
    return False


def _set_constructor(value):
    """Whether an assigned value constructs a set/frozenset."""
    if isinstance(value, ast.Set):
        return True
    if isinstance(value, ast.SetComp):
        return True
    if isinstance(value, ast.Call):
        parts = dotted_parts(value.func)
        return bool(parts) and parts[-1] in ("set", "frozenset")
    return False


def _collect_set_attrs(symbols):
    """``{class name: {attrs assigned a set anywhere in the class}}``."""
    set_attrs = {}
    for class_name, infos in symbols.classes.items():
        attrs = set()
        for info in infos:
            for method in info.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not _set_constructor(node.value):
                        continue
                    for target in node.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            attrs.add(target.attr)
        if attrs:
            set_attrs[class_name] = frozenset(attrs)
    return set_attrs


class EffectTable:
    """Intrinsic + transitive effects for every project function."""

    def __init__(self, symbols, callgraph, config):
        self.symbols = symbols
        self.callgraph = callgraph
        self.config = config
        self._set_attrs = _collect_set_attrs(symbols)
        #: qualname -> frozenset of flags from the function body alone.
        self.intrinsic = {}
        #: qualname -> [(path, lineno, flag, detail)] finding evidence.
        self.evidence = {}
        for qualname, infos in symbols.functions.items():
            flags = set()
            evidence = []
            for info in infos:
                self._scan_body(info, flags, evidence)
            self._scan_calls(qualname, flags, evidence)
            self.intrinsic[qualname] = frozenset(flags)
            self.evidence[qualname] = evidence
        self.transitive = self._fixpoint()

    # -- intrinsic scan ------------------------------------------------

    def _scan_body(self, info, flags, evidence):
        set_names = set()
        declared_global = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                if _set_constructor(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
            elif isinstance(node, ast.Global):
                declared_global.update(node.names)

        def note(lineno, flag, detail):
            flags.add(flag)
            evidence.append((info.module_path, lineno, flag, detail))

        for node in ast.walk(info.node):
            if isinstance(node, ast.For):
                if _is_set_expr(node.iter, set_names, self._set_attrs,
                                info.class_name):
                    note(node.lineno, UNORDERED_ITER,
                         "iterates a set in arbitrary order")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter, set_names,
                                    self._set_attrs, info.class_name):
                        note(node.lineno, UNORDERED_ITER,
                             "comprehension over a set in "
                             "arbitrary order")
            elif isinstance(node, ast.Attribute):
                chain = dotted_parts(node)
                if chain and len(chain) >= 2:
                    imported = self.symbols.import_target(
                        info.module_path, chain[0]
                    )
                    if imported is not None:
                        dotted = ".".join((imported,) + chain[1:])
                        for name, attr_flags in _ATTR_EFFECTS.items():
                            if dotted.startswith(name):
                                for flag in attr_flags:
                                    note(node.lineno, flag,
                                         f"reads `{name}`")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._scan_store(node, info, declared_global, note)

    def _scan_store(self, node, info, declared_global, note):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if isinstance(target, ast.Name):
                if (target.id in declared_global
                        or (isinstance(node, ast.AugAssign)
                            and self.symbols.is_module_global(
                                info.module_path, target.id))):
                    note(node.lineno, GLOBAL_MUTATION,
                         f"rebinds module global `{target.id}`")
            elif isinstance(target, ast.Subscript):
                base = target.value
                if (isinstance(base, ast.Name)
                        and self.symbols.is_module_global(
                            info.module_path, base.id)
                        and base.id not in _local_params(info.node)
                        and base.id not in _local_assigned(info.node)):
                    note(node.lineno, GLOBAL_MUTATION,
                         f"writes into module global `{base.id}`")
                elif isinstance(base, ast.Attribute):
                    if base.attr in self.config.tag_arrays:
                        note(node.lineno, TAG_WRITE,
                             f"stores into tag array `.{base.attr}`")
                    else:
                        note(node.lineno, COUNTERS,
                             f"stores into `.{base.attr}[...]`")
            elif isinstance(target, ast.Attribute):
                note(node.lineno, COUNTERS,
                     f"writes attribute `.{target.attr}`")

    def _scan_calls(self, qualname, flags, evidence):
        for site in self.callgraph.sites_for(qualname):
            if site.kind == "external":
                external = external_effects(site.external)
                if external is None:
                    flags.add(UNKNOWN_CALL)
                    evidence.append((site.path, site.lineno,
                                     UNKNOWN_CALL,
                                     f"calls external "
                                     f"`{site.external}`"))
                else:
                    for flag in external:
                        flags.add(flag)
                        evidence.append((site.path, site.lineno, flag,
                                         f"calls `{site.external}`"))
            elif site.kind == "unresolved":
                flags.add(UNKNOWN_CALL)
                evidence.append((site.path, site.lineno, UNKNOWN_CALL,
                                 f"unresolvable call {site.display}"))
            # A mutating method on a module-global receiver is a
            # global mutation regardless of how (or whether) the
            # call itself resolved.
            func = site.node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _MUTATING_METHODS):
                for info in self.symbols.functions.get(qualname, []):
                    if (info.module_path == site.path
                            and self.symbols.is_module_global(
                                info.module_path, func.value.id)
                            and func.value.id
                            not in _local_params(info.node)
                            and func.value.id
                            not in _local_assigned(info.node)):
                        flags.add(GLOBAL_MUTATION)
                        evidence.append(
                            (site.path, site.lineno, GLOBAL_MUTATION,
                             f"mutates module global "
                             f"`{func.value.id}`")
                        )
                        break

    # -- propagation ---------------------------------------------------

    def _fixpoint(self):
        """Union effects over call edges until stable (cycles OK)."""
        effects = {q: set(flags) for q, flags in self.intrinsic.items()}
        changed = True
        while changed:
            changed = False
            for qualname, callees in self.callgraph.edges.items():
                mine = effects[qualname]
                before = len(mine)
                for callee in callees:
                    mine.update(effects.get(callee, ()))
                if len(mine) != before:
                    changed = True
        return {q: frozenset(flags) for q, flags in effects.items()}

    # -- queries -------------------------------------------------------

    def effects_of(self, qualname):
        """Transitive flags of *qualname* (empty set if unscanned)."""
        return self.transitive.get(qualname, frozenset())

    def intrinsic_of(self, qualname):
        """*qualname*'s own flags, before call-graph propagation."""
        return self.intrinsic.get(qualname, frozenset())

    def evidence_of(self, qualname):
        """``(path, lineno, flag, detail)`` records behind the flags."""
        return self.evidence.get(qualname, [])


def _local_assigned(func_node):
    """Names (re)bound inside the function: locals shadow globals."""
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, (ast.comprehension,)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _local_params(func_node):
    args = func_node.args
    names = set()
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.update(arg.arg for arg in group)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def classify(flags):
    """Human-readable effect class, most severe wins."""
    if flags & NONDET:
        return "nondeterministic"
    if IO in flags:
        return "io"
    if TAG_WRITE in flags:
        return "tag-array-writer"
    if flags & {COUNTERS, GLOBAL_MUTATION}:
        return "counters-only"
    return "pure"


__all__ = [
    "CLOCK", "COUNTERS", "ENV", "GLOBAL_MUTATION", "IO", "NONDET",
    "RANDOM", "TAG_WRITE", "UNKNOWN_CALL", "UNORDERED_ITER",
    "EffectTable", "classify", "external_effects",
]
