"""Collect sources, parse once, run every rule."""

import ast
import os
from dataclasses import dataclass

from repro.lint.findings import Finding, LintConfig
from repro.lint.rules import ALL_RULES


@dataclass(frozen=True)
class Module:
    """One parsed source file handed to the rules."""

    path: str
    tree: ast.Module
    source: str


_SKIP_DIRS = {"__pycache__", ".git", ".egg-info"}


def collect_files(paths):
    """Every ``.py`` file under *paths* (files or directories).

    A path that does not exist raises ``FileNotFoundError`` — a typo'd
    target must not report a clean 0-findings run.
    """
    files = []
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"lint target does not exist: {path}"
            )
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return files


def parse_modules(files):
    """Parse *files*; syntax errors become findings, not crashes.

    Returns ``(modules, findings)``.
    """
    modules = []
    findings = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            findings.append(Finding(
                "E000", path, error.lineno or 1,
                f"syntax error: {error.msg}",
            ))
            continue
        modules.append(Module(path=path, tree=tree, source=source))
    return modules, findings


def run_lint(paths, config=None):
    """Lint *paths* and return findings sorted by location."""
    if config is None:
        config = LintConfig()
    modules, findings = parse_modules(collect_files(paths))
    for rule in ALL_RULES:
        findings.extend(rule(modules, config))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


__all__ = ["Module", "collect_files", "parse_modules", "run_lint"]
