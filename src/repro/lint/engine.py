"""Collect sources, parse once, build the analysis, run every rule."""

import ast
import os
from dataclasses import dataclass, field
from typing import List

from repro.lint.baseline import filter_inline_suppressions
from repro.lint.callgraph import CallGraph
from repro.lint.effects import EffectTable
from repro.lint.findings import Finding, LintConfig
from repro.lint.flowrules import FLOW_RULES
from repro.lint.rules import ALL_RULES
from repro.lint.symbols import SymbolTable


@dataclass(frozen=True)
class Module:
    """One parsed source file handed to the rules."""

    path: str
    tree: ast.Module
    source: str


@dataclass
class Project:
    """The whole-program analysis context every rule receives.

    The syntactic rules (R001-R004) read only ``modules``; the flow
    rules (R005-R008) consume the symbol table, call graph, and
    effect table built over the same parsed set.
    """

    modules: List[Module]
    config: LintConfig
    symbols: SymbolTable = field(repr=False)
    callgraph: CallGraph = field(repr=False)
    effects: EffectTable = field(repr=False)


_SKIP_DIRS = {"__pycache__", ".git", ".egg-info"}


def collect_files(paths):
    """Every ``.py`` file under *paths* (files or directories).

    A path that does not exist raises ``FileNotFoundError`` — a typo'd
    target must not report a clean 0-findings run.
    """
    files = []
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"lint target does not exist: {path}"
            )
        if os.path.isfile(path):
            files.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return files


def parse_modules(files):
    """Parse *files*; syntax errors become findings, not crashes.

    Returns ``(modules, findings)``.
    """
    modules = []
    findings = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            findings.append(Finding(
                "E000", path, error.lineno or 1,
                f"syntax error: {error.msg}",
            ))
            continue
        modules.append(Module(path=path, tree=tree, source=source))
    return modules, findings


def build_project(modules, config=None):
    """Build the symbol table, call graph, and effect table once."""
    if config is None:
        config = LintConfig()
    symbols = SymbolTable(modules)
    callgraph = CallGraph(symbols, config)
    effects = EffectTable(symbols, callgraph, config)
    return Project(
        modules=modules,
        config=config,
        symbols=symbols,
        callgraph=callgraph,
        effects=effects,
    )


def run_lint(paths, config=None):
    """Lint *paths* and return findings sorted by location.

    Inline ``# lint: disable=RXXX`` suppressions are applied here;
    baseline filtering is the CLI's concern (the baseline is a
    workflow artifact, not part of the analysis).
    """
    if config is None:
        config = LintConfig()
    modules, findings = parse_modules(collect_files(paths))
    project = build_project(modules, config)
    for rule in ALL_RULES + FLOW_RULES:
        findings.extend(rule(project, config))
    findings = filter_inline_suppressions(findings, modules)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


__all__ = [
    "Module",
    "Project",
    "build_project",
    "collect_files",
    "parse_modules",
    "run_lint",
]
