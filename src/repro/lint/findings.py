"""Finding and configuration records for the repo lint pass."""

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, renderable as ``path:line: RULE message``."""

    rule: str
    path: str
    line: int
    message: str

    def render(self):
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Repo-specific knowledge the rules key on.

    Every field has the production default; tests override individual
    fields to aim the rules at crafted fixtures.
    """

    #: ``ClassName.method`` functions whose loops are hot paths (R001).
    hot_loops: tuple = ("SpurMachine.run",)

    #: Attribute-call names permitted inside a hot loop (R001).  Empty
    #: by default: the hot loop must pre-bind every callable and
    #: container it touches.
    hot_loop_attr_allowlist: frozenset = frozenset()

    #: ``ClassName.method`` functions shaped as two-level chunked hot
    #: loops (R001): an outer loop over flat chunks whose per-chunk
    #: level may use ``chunk_loop_attr_allowlist`` calls, and inner
    #: per-reference loops held to the strict hot-loop rules plus a
    #: ban on tuple allocation.
    chunked_hot_loops: tuple = ("SpurMachine.run_chunks",)

    #: Attribute-call names permitted at the per-chunk (outer) level
    #: of a chunked hot loop (R001).  ``tobytes``/``count`` cover the
    #: C-speed reference-mix tallies on each chunk's kind slice.
    chunk_loop_attr_allowlist: frozenset = frozenset(
        {"count", "tobytes"}
    )

    #: The cache's parallel tag arrays (R002); writes to
    #: ``<obj>.<field>[...]`` outside the sanctioned modules flag.
    tag_arrays: frozenset = frozenset({
        "valid",
        "tags",
        "line_vaddr",
        "line_block",
        "prot",
        "page_dirty",
        "block_dirty",
        "state",
        "filled_by_read",
        "holds_pte",
    })

    #: Module basename -> fields it may write (R002).  ``"*"`` means
    #: every field.  cache.py owns the arrays; the machine's hot loop
    #: and the dirty policies perform the documented single-field
    #: updates (see the docstring of ``repro/cache/cache.py``).
    tag_array_writers: tuple = (
        ("cache.py", "*"),
        ("simulator.py", frozenset({"block_dirty", "filled_by_read"})),
        ("dirty.py", frozenset({"prot", "page_dirty"})),
    )

    #: Basename of the module defining the Event enum and mode maps
    #: (R003 parses it from the scanned file set).
    events_module: str = "events.py"

    #: Names of the enum class and the mode-map constant in it.
    event_class: str = "Event"
    mode_sets_name: str = "MODE_SETS"

    #: Path of the event documentation page (R004).
    events_doc: str = "docs/events.md"

    def replace(self, **overrides):
        """A copy with the given fields overridden."""
        values = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        values.update(overrides)
        return LintConfig(**values)


__all__ = ["Finding", "LintConfig"]
