"""Finding and configuration records for the repo lint pass."""

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, renderable as ``path:line: RULE message``."""

    rule: str
    path: str
    line: int
    message: str

    def render(self):
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintConfig:
    """Repo-specific knowledge the rules key on.

    Every field has the production default; tests override individual
    fields to aim the rules at crafted fixtures.
    """

    #: ``ClassName.method`` functions whose loops are hot paths (R001).
    hot_loops: tuple = ("SpurMachine.run",)

    #: Attribute-call names permitted inside a hot loop (R001).  Empty
    #: by default: the hot loop must pre-bind every callable and
    #: container it touches.
    hot_loop_attr_allowlist: frozenset = frozenset()

    #: ``ClassName.method`` functions shaped as two-level chunked hot
    #: loops (R001): an outer loop over flat chunks whose per-chunk
    #: level may use ``chunk_loop_attr_allowlist`` calls, and inner
    #: per-reference loops held to the strict hot-loop rules plus a
    #: ban on tuple allocation.
    chunked_hot_loops: tuple = ("SpurMachine.run_chunks",)

    #: Attribute-call names permitted at the per-chunk (outer) level
    #: of a chunked hot loop (R001).  ``tobytes``/``count`` cover the
    #: C-speed reference-mix tallies on each chunk's kind slice.
    chunk_loop_attr_allowlist: frozenset = frozenset(
        {"count", "tobytes"}
    )

    #: The cache's parallel tag arrays (R002); writes to
    #: ``<obj>.<field>[...]`` outside the sanctioned modules flag.
    tag_arrays: frozenset = frozenset({
        "valid",
        "tags",
        "line_vaddr",
        "line_block",
        "prot",
        "page_dirty",
        "block_dirty",
        "state",
        "filled_by_read",
        "holds_pte",
    })

    #: Module basename -> fields it may write (R002).  ``"*"`` means
    #: every field.  cache.py owns the arrays; the machine's batched
    #: resolver performs full inlined block installs (the same column
    #: sequence as ``fill_fast``) plus the documented single-field
    #: updates, and the dirty policies refresh their two cached-copy
    #: fields (see the docstring of ``repro/cache/cache.py``).
    tag_array_writers: tuple = (
        ("cache.py", "*"),
        ("simulator.py", "*"),
        ("dirty.py", frozenset({"prot", "page_dirty"})),
    )

    #: Basename of the module defining the Event enum and mode maps
    #: (R003 parses it from the scanned file set).
    events_module: str = "events.py"

    #: Names of the enum class and the mode-map constant in it.
    event_class: str = "Event"
    mode_sets_name: str = "MODE_SETS"

    #: Path of the event documentation page (R004).
    events_doc: str = "docs/events.md"

    # -- whole-program flow analysis (R005-R008) ----------------------

    #: Root qualnames of the simulation surface: the functions whose
    #: transitive callees the determinism audit (R005) and hot-path
    #: purity proof (R008) cover.  R001 cedes its attribute-call check
    #: to R008 for these functions (allocation discipline stays).
    effect_hot_loops: tuple = (
        "SpurMachine.run",
        "SpurMachine.run_chunks",
        "SpurMachine._run_segment",
        "SpurMachine._run_segment_columns",
        "SpurMachine._walk_events",
        "SpurMachine._run_refs",
        "SpurMachine._resolve_miss",
        "SpurMachine._resolve_write_hit",
        "MachineFleet.run_round",
        "MachineFleet._classify_group",
        "FleetMember.run_chunk",
        "FleetMember.walk_chunk",
        "FleetMember.skip_settled",
    )

    #: Root qualnames whose reachable code the cache-key soundness
    #: rule (R006) audits: everything that can influence a cached
    #: result, including machine construction from the runner.
    cache_roots: tuple = (
        "simulate_cell",
        "ExperimentRunner.run",
        "SpurMachine.run",
        "SpurMachine.run_chunks",
    )

    #: Top-level package names whose imports resolve to *project*
    #: functions rather than external callables.
    project_packages: frozenset = frozenset({"repro"})

    #: Method names excluded from the dynamic-dispatch fallback:
    #: generic container/string verbs that would otherwise join every
    #: same-named project method into one candidate pool (a stdlib
    #: ``.append`` is not ``SegmentedFifoDaemon.note_resident``'s
    #: problem).  Calls on these names resolve as *unresolved*.
    dynamic_skip_names: frozenset = frozenset({
        "__init__",
        "add", "append", "appendleft", "cancel", "clear", "close",
        "copy", "count", "decode", "discard", "done", "dump", "dumps",
        "encode", "endswith", "extend", "extendleft", "flush",
        "format", "get", "group", "hexdigest", "index", "insert",
        "items", "join", "keys", "load", "loads", "lower", "match",
        "mkdir", "open", "pop", "popleft", "put", "read", "remove",
        "replace", "result", "rstrip", "search", "setdefault",
        "shutdown", "sort", "split", "startswith", "strip", "sub",
        "submit", "tobytes", "update", "upper", "values", "write",
    })

    #: Name of the module-level function that derives the result
    #: cache key (R006 parses which of its parameters it actually
    #: reads, and which attributes call sites forward into it).
    cache_key_function: str = "cache_key"

    #: The frozen machine-configuration dataclass: every field read of
    #: it on the simulation path must be cache-key-covered (R006).
    config_class: str = "MachineConfig"

    #: Option/cell dataclasses whose field reads R006 audits the same
    #: way.
    option_classes: tuple = ("RunOptions", "RunCell")

    #: Receiver spellings that identify an audited class when static
    #: typing cannot (``options.workers`` reads RunOptions even though
    #: ``options`` is an untyped parameter).
    option_aliases: tuple = (
        ("config", "MachineConfig"),
        ("options", "RunOptions"),
        ("opts", "RunOptions"),
        ("cell", "RunCell"),
    )

    #: Fields declared inert for caching: they steer *how* a run
    #: executes (parallelism, chunking, observation) but can never
    #: change its counters, so they are legitimately absent from the
    #: cache key.
    cache_inert_fields: frozenset = frozenset({
        "workers", "fleet", "chunk_refs", "cache_dir", "use_cache",
        "sanitize", "observe", "epoch_refs", "trace_sink", "progress",
        "label", "journal", "driver", "retries",
        "retry_backoff_seconds", "cell_timeout_seconds",
    })

    #: Method names that hand a callable to a worker pool (R007).
    submit_methods: frozenset = frozenset({"submit"})

    #: Module-level functions that run inside campaign worker
    #: processes (R007): the pool work function and the ``repro
    #: worker`` entry point.  Their transitive code must not mutate
    #: module globals — the mutation happens in the child and is
    #: silently lost.  Names absent from the scanned file set are
    #: skipped, so partial-tree lints stay clean.
    worker_entry_points: tuple = ("simulate_cell", "worker_main")

    #: Root qualnames of the campaign resume machinery (R005): cell
    #: identity and journal replay must be deterministic, or a
    #: restarted campaign derives different keys and recomputes (or
    #: worse, mismatches) completed work.  Audited with the same
    #: nondeterminism evidence as the simulation path; names absent
    #: from the scanned file set are skipped.
    resume_identity_roots: tuple = (
        "cell_key", "cell_to_spec", "spec_to_cell", "read_journal",
    )

    #: Effect flags a hot-loop callee may not have, even transitively
    #: (R008).  ``counters`` and ``tag-write`` are the sanctioned
    #: bookkeeping effects and stay out of this set.
    effect_forbidden_flags: frozenset = frozenset({
        "io", "clock", "env", "random", "unordered-iter",
        "global-mutation",
    })

    def replace(self, **overrides):
        """A copy with the given fields overridden."""
        values = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        values.update(overrides)
        return LintConfig(**values)


__all__ = ["Finding", "LintConfig"]
