"""R005-R008: the whole-program flow rules.

Unlike R001-R004 (syntactic, per-file), these rules consume the
project analysis built by the engine — symbol table, call graph,
effect table — and reason about what code *reachable from* the
simulation surface does:

R005
    Determinism audit.  Any nondeterministic effect (set iteration,
    unseeded ``random``, wall-clock or environment reads) in code
    reachable from the hot-loop roots breaks the bit-equivalence that
    the parallel campaign cache and the planned lockstep fleet rest
    on.  Unresolvable calls are *not* findings here: an audit that
    cried wolf on every untypable receiver would be ignored.

R006
    Cache-key soundness.  A field of ``MachineConfig``/``RunOptions``/
    ``RunCell`` read on the simulation path but absent from the
    ``cache_key`` spec (and not declared inert) means two runs that
    differ in that field share a cache entry — the stale-result bug
    class.  The rule derives coverage from the key function itself:
    which parameters its body reads, plus which attributes call sites
    forward into it.

R007
    Worker safety.  A callable handed to ``pool.submit`` must survive
    pickling into another process and must not smuggle results out
    through module globals (the mutation happens in the child and is
    silently lost).

R008
    Transitive hot-path purity.  R001's attribute-call ban, escalated:
    every call inside a hot loop is resolved through the call graph
    and its *transitive* effects checked against the forbidden set.
    A helper proven pure (or counters/tag-write only) passes without
    being hand-allowlisted; a call that cannot be resolved at all is
    a finding — this is a proof, so "unknown" fails it.
"""

import ast

from repro.lint import effects as fx
from repro.lint.findings import Finding
from repro.lint.rules import _direct_loops, _own_level_nodes
from repro.lint.symbols import dotted_parts


def _chain(callgraph, parents, qualname):
    return " -> ".join(callgraph.path_to_root(parents, qualname))


# -- R005: determinism audit -------------------------------------------


def check_determinism(project, config):
    findings = []
    callgraph = project.callgraph
    seen = set()

    def audit(roots, describe):
        parents = callgraph.reachable(roots)
        for qualname in sorted(parents):
            for path, lineno, flag, detail in (
                project.effects.evidence_of(qualname)
            ):
                if flag not in fx.NONDET:
                    continue
                key = (path, lineno, flag)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    "R005", path, lineno,
                    describe(qualname, detail,
                             _chain(callgraph, parents, qualname)),
                ))

    audit(
        config.effect_hot_loops,
        lambda qualname, detail, chain: (
            f"nondeterminism on the simulation path: {qualname} "
            f"{detail} (reached via {chain}); parallel and lockstep "
            f"runs must stay bit-identical"
        ),
    )
    # The resume machinery gets the same audit with its own message:
    # cell keys and journal replays must come out identical on every
    # run, or a resumed campaign recomputes (or mismatches) work its
    # journal already holds.  Roots absent from the scanned file set
    # simply contribute nothing, keeping partial-tree lints clean.
    audit(
        config.resume_identity_roots,
        lambda qualname, detail, chain: (
            f"nondeterminism on the resume-identity path: {qualname} "
            f"{detail} (reached via {chain}); a resumable campaign "
            f"must derive identical cell keys and journal replays on "
            f"every run"
        ),
    )
    return findings


# -- R006: cache-key soundness -----------------------------------------


def _param_names(func_node):
    args = func_node.args
    names = set()
    for group in (args.posonlyargs, args.args, args.kwonlyargs):
        names.update(arg.arg for arg in group)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _read_params(func_node):
    """Parameters the function body actually reads (Name loads)."""
    params = _param_names(func_node)
    read = set()
    for node in ast.walk(func_node):
        if (isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in params):
            read.add(node.id)
    return read


def _forwarded_attrs(project, key_qualname):
    """Attribute names passed as arguments into the key function.

    ``cache_key(cell.config, cell.workload, cell.seed, ...)`` marks
    ``config``/``workload``/``seed`` as key-covered field names.
    """
    covered = set()
    for sites in project.callgraph.sites.values():
        for site in sites:
            if key_qualname not in site.candidates:
                continue
            arguments = list(site.node.args)
            arguments += [kw.value for kw in site.node.keywords]
            for arg in arguments:
                if isinstance(arg, ast.Attribute):
                    covered.add(arg.attr)
    return covered


def check_cache_key(project, config):
    symbols = project.symbols
    key_info = None
    for (_, name), info in sorted(symbols.module_functions.items()):
        if name == config.cache_key_function:
            key_info = info
            break
    if key_info is None:
        return []

    read = _read_params(key_info.node)
    covered = read | _forwarded_attrs(project, key_info.qualname)
    covered |= set(config.cache_inert_fields)
    config_covered = "config" in read

    aliases = dict(config.option_aliases)
    audited = {config.config_class} | set(config.option_classes)
    fields_of = {
        name: set(symbols.dataclass_fields(name)) for name in audited
    }

    parents = project.callgraph.reachable(config.cache_roots)
    findings = []
    seen = set()
    for qualname in sorted(parents):
        for info in symbols.functions.get(qualname, []):
            for node in ast.walk(info.node):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)):
                    continue
                chain = dotted_parts(node)
                if chain is None or len(chain) < 2:
                    continue
                receiver, attr = chain[-2], chain[-1]
                classes = ()
                if receiver in aliases:
                    classes = (aliases[receiver],)
                else:
                    resolved = symbols.receiver_classes(
                        chain[:-1], info.class_name
                    )
                    if resolved:
                        classes = tuple(
                            name for name in resolved
                            if name in audited
                        )
                for class_name in classes:
                    if attr not in fields_of.get(class_name, ()):
                        continue
                    if (class_name == config.config_class
                            and config_covered):
                        continue
                    if attr in covered:
                        continue
                    key = (info.module_path, node.lineno,
                           class_name, attr)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(Finding(
                        "R006", info.module_path, node.lineno,
                        f"{qualname} reads {class_name}.{attr} on "
                        f"the simulation path, but the field is "
                        f"neither covered by "
                        f"{config.cache_key_function}() nor declared "
                        f"cache-inert; a cached result could go "
                        f"stale when it changes",
                    ))
    return findings


# -- R007: worker safety -----------------------------------------------


def check_worker_safety(project, config):
    findings = []
    symbols = project.symbols
    seen = set()
    # Named worker entry points: functions that run inside campaign
    # worker processes whether or not a `submit` call is in view.
    # Unknown names are skipped so partial-tree lints stay clean.
    for name in config.worker_entry_points:
        for info in symbols.by_name.get(name, []):
            flags = project.effects.effects_of(info.qualname)
            if fx.GLOBAL_MUTATION not in flags:
                continue
            finding = Finding(
                "R007", info.module_path, info.node.lineno,
                f"worker entry point {info.qualname} (or a callee) "
                f"mutates module globals; the mutation happens in "
                f"the worker process and is silently lost — return "
                f"the data instead",
            )
            if finding not in seen:
                seen.add(finding)
                findings.append(finding)
    for infos in symbols.functions.values():
        for info in infos:
            nested = {
                child.name
                for child in ast.walk(info.node)
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                and child is not info.node
            }
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in config.submit_methods
                        and node.args):
                    continue
                finding = _judge_worker(
                    project, config, info, node.args[0],
                    node.lineno, nested,
                )
                if finding is not None and finding not in seen:
                    seen.add(finding)
                    findings.append(finding)
    return findings


def _judge_worker(project, config, info, work, lineno, nested):
    path = info.module_path
    if isinstance(work, ast.Lambda):
        return Finding(
            "R007", path, work.lineno,
            "lambda submitted to a worker pool; a lambda cannot be "
            "pickled into a process pool worker — submit a "
            "module-level function",
        )
    if not isinstance(work, ast.Name):
        return None
    if work.id in nested:
        return Finding(
            "R007", path, lineno,
            f"nested function `{work.id}` submitted to a worker "
            f"pool; its closure is not picklable — hoist it to "
            f"module level",
        )
    symbols = project.symbols
    target = symbols.module_functions.get((path, work.id))
    if target is None:
        imported = symbols.import_target(path, work.id)
        if imported is not None:
            candidates = symbols.by_name.get(
                imported.split(".")[-1], []
            )
            target = candidates[0] if candidates else None
    if target is None:
        return None
    flags = project.effects.effects_of(target.qualname)
    if fx.GLOBAL_MUTATION in flags:
        return Finding(
            "R007", path, lineno,
            f"worker function {target.qualname} (or a callee) "
            f"mutates module globals; the mutation happens in the "
            f"worker process and is silently lost — return the data "
            f"instead",
        )
    return None


# -- R008: transitive hot-path purity ----------------------------------


def check_transitive_purity(project, config):
    findings = []
    chunked = set(config.chunked_hot_loops)
    forbidden = set(config.effect_forbidden_flags)
    for qualname in sorted(set(config.effect_hot_loops)):
        for info in project.symbols.functions.get(qualname, []):
            findings.extend(_check_hot_function(
                project, config, info, qualname,
                qualname in chunked, forbidden,
            ))
    return findings


def _check_hot_function(project, config, info, qualname, is_chunked,
                        forbidden):
    sites = {
        id(site.node): site
        for site in project.callgraph.sites_for(qualname)
        if site.path == info.module_path
    }
    findings = []
    seen = set()

    def judge(call, allow):
        func = call.func
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            name = None
        if name is not None and name in allow:
            return
        site = sites.get(id(call))
        if site is None:
            return
        finding = _judge_site(project, config, site, qualname,
                              forbidden)
        if finding is not None and finding not in seen:
            seen.add(finding)
            findings.append(finding)

    def visit(loop, depth):
        if is_chunked and depth == 0:
            allow = (config.chunk_loop_attr_allowlist
                     | config.hot_loop_attr_allowlist)
        else:
            allow = config.hot_loop_attr_allowlist
        for node in _own_level_nodes(loop):
            if isinstance(node, ast.Call):
                judge(node, allow)
        for child in _direct_loops(loop):
            visit(child, depth + 1)

    for loop in _direct_loops(info.node):
        visit(loop, 0)
    return findings


def _judge_site(project, config, site, qualname, forbidden):
    if site.kind == "builtin":
        return None
    if site.kind == "external":
        flags = fx.external_effects(site.external)
        if flags is None:
            return Finding(
                "R008", site.path, site.lineno,
                f"external call `{site.external}` in the hot loop of "
                f"{qualname} has no known effect signature; purity "
                f"is unprovable",
            )
        bad = flags & forbidden
        if bad:
            return Finding(
                "R008", site.path, site.lineno,
                f"external call `{site.external}` in the hot loop of "
                f"{qualname} has effects {_render_flags(bad)}",
            )
        return None
    if site.kind == "unresolved":
        return Finding(
            "R008", site.path, site.lineno,
            f"call {site.display} in the hot loop of {qualname} "
            f"cannot be statically resolved, so its purity is "
            f"unprovable; pre-bind a project helper or extend the "
            f"allowlist",
        )
    flags = set()
    for candidate in site.candidates:
        flags |= project.effects.effects_of(candidate)
    bad = flags & forbidden
    if bad:
        worst = _worst_candidate(project, site.candidates, forbidden)
        return Finding(
            "R008", site.path, site.lineno,
            f"call {site.display} in the hot loop of {qualname} "
            f"reaches {worst} whose transitive effects include "
            f"{_render_flags(bad)}; the hot path may only count and "
            f"write tag arrays",
        )
    return None


def _worst_candidate(project, candidates, forbidden):
    for candidate in sorted(candidates):
        if project.effects.effects_of(candidate) & forbidden:
            return candidate
    return sorted(candidates)[0] if candidates else "<unknown>"


def _render_flags(flags):
    return "{" + ", ".join(sorted(flags)) + "}"


FLOW_RULES = (
    check_determinism,
    check_cache_key,
    check_worker_safety,
    check_transitive_purity,
)

__all__ = [
    "FLOW_RULES",
    "check_cache_key",
    "check_determinism",
    "check_transitive_purity",
    "check_worker_safety",
]
