"""Pytest fixtures for the repo lint analysis.

Imported from ``tests/conftest.py`` the same way the sanitizer plugin
is::

    from repro.lint.pytest_plugin import repro_lint, assert_lint_clean

``repro_lint`` runs the analysis with per-test config overrides;
``assert_lint_clean`` fails the test with rendered findings when the
target is not clean — the shape the live-tree gate and fixture tests
both want.
"""

import pytest

from repro.lint import LintConfig, run_lint


@pytest.fixture
def repro_lint():
    """Run the lint analysis: ``repro_lint(paths, **overrides)``.

    Keyword overrides are applied to a fresh :class:`LintConfig` (or
    to an explicit ``config=`` if given), so a test can aim the rules
    at a crafted fixture package in two lines.
    """
    def run(paths, config=None, **overrides):
        cfg = config if config is not None else LintConfig()
        if overrides:
            cfg = cfg.replace(**overrides)
        return run_lint(paths, cfg)

    return run


@pytest.fixture
def assert_lint_clean(repro_lint):
    """Assert a target has zero findings, rendering any it has."""
    def check(paths, config=None, **overrides):
        findings = repro_lint(paths, config=config, **overrides)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"lint findings:\n{rendered}"

    return check


__all__ = ["assert_lint_clean", "repro_lint"]
