"""The four syntactic repo lint rules (R001-R004).

Each rule is a function ``(project, config) -> list[Finding]`` where
``project`` is the engine's analysis context (parsed modules plus the
whole-program tables — these four only use ``project.modules``; the
flow rules in :mod:`repro.lint.flowrules` use the rest).  The rules
encode repo-specific discipline that generic linters cannot see:

R001
    Hot-path purity.  The inner loops of the functions named in
    ``config.hot_loops`` may not make attribute calls (``obj.m()``),
    build comprehensions, or allocate list/dict/set literals — every
    callable and container must be pre-bound to a local before the
    loop.  The simulator's throughput lives and dies on this.

    Functions named in ``config.chunked_hot_loops`` are held to the
    two-level batched shape instead: they must contain a reference
    loop nested inside the chunk loop; the per-chunk (outer) level
    may additionally call the ``config.chunk_loop_attr_allowlist``
    methods (C-speed whole-chunk operations like ``.count``); and the
    per-reference (inner) levels obey the strict rules above plus a
    ban on tuple allocation — nothing may be boxed per reference.

    Functions also named in ``config.effect_hot_loops`` cede the
    attribute-call check to R008, which proves each call's transitive
    purity through the call graph instead of banning it by spelling;
    the allocation discipline here still applies.

R002
    Parallel-array write discipline.  The cache's tag arrays are
    parallel lists indexed by line; a write to one from an
    unsanctioned module can desynchronise them without tripping any
    unit test until much later.  Only the writers named in
    ``config.tag_array_writers`` may assign ``<obj>.<field>[...]``.

R003
    Event exhaustiveness.  Every ``Event`` member must appear in some
    ``MODE_SETS`` entry (else no measurement campaign can count it)
    and must be incremented somewhere in the scanned sources (else it
    is dead weight in every results table).

R004
    Event documentation.  ``docs/events.md`` must name every ``Event``
    member; Table 3-2 reviewers navigate by that page.
"""

import ast
import os

from repro.lint.findings import Finding

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
_DISPLAYS = (ast.List, ast.Dict, ast.Set)


# -- R001: hot-path purity ---------------------------------------------


def _qualified_functions(tree):
    """Yield (qualname, FunctionDef) for every function in *tree*."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


def _loop_bodies(func):
    """Yield every For/While node in *func*, including nested ones."""
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
            yield node


def check_hot_loops(project, config):
    findings = []
    wanted = set(config.hot_loops)
    chunked = set(config.chunked_hot_loops)
    effect_checked = set(config.effect_hot_loops)
    allow = config.hot_loop_attr_allowlist
    for module in project.modules:
        for qualname, func in _qualified_functions(module.tree):
            attr_calls = qualname not in effect_checked
            if qualname in wanted:
                for loop in _loop_bodies(func):
                    # The iterable of a ``for`` is evaluated once;
                    # only the body (and ``while`` tests,
                    # re-evaluated each iteration) are hot.
                    hot_nodes = list(loop.body) + list(loop.orelse)
                    if isinstance(loop, ast.While):
                        hot_nodes.append(loop.test)
                    for stmt in hot_nodes:
                        for node in ast.walk(stmt):
                            finding = _classify_hot_node(
                                node, qualname, module.path, allow,
                                attr_calls=attr_calls,
                            )
                            if finding is not None:
                                findings.append(finding)
            if qualname in chunked:
                findings.extend(_check_chunked_function(
                    func, qualname, module.path, config,
                    attr_calls=attr_calls,
                ))
    return findings


def _direct_loops(node):
    """Loops in *node* not nested inside another loop (or function)."""
    loops = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.For, ast.While, ast.AsyncFor)):
            loops.append(child)
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return loops


def _own_level_nodes(loop):
    """AST nodes that execute at *loop*'s own nesting level.

    Stops at child loops — their bodies are the next level down —
    but keeps each child ``for``'s iterable, which is evaluated once
    per iteration of *this* loop.  A child ``while``'s test runs at
    the child's level and is skipped with it.
    """
    roots = list(loop.body) + list(loop.orelse)
    if isinstance(loop, ast.While):
        roots.append(loop.test)
    nodes = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.For, ast.AsyncFor)):
            stack.append(node.iter)
            continue
        if isinstance(node, ast.While):
            continue
        nodes.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def _check_chunked_function(func, qualname, path, config,
                            attr_calls=True):
    """R001 for a two-level chunked hot loop.

    Depth 0 (the per-chunk level) may call the chunk allowlist's
    methods; depth >= 1 (the per-reference levels) is held to the
    strict hot-loop rules and may not allocate tuples either.
    """
    findings = []
    top_loops = _direct_loops(func)
    if top_loops and not any(_direct_loops(loop)
                             for loop in top_loops):
        findings.append(Finding(
            "R001", path, func.lineno,
            f"{qualname} is a chunked hot loop but has no nested "
            f"reference loop; expected the two-level chunk/reference "
            f"shape",
        ))

    def visit(loop, depth):
        allow = (config.chunk_loop_attr_allowlist if depth == 0
                 else config.hot_loop_attr_allowlist)
        for node in _own_level_nodes(loop):
            finding = _classify_hot_node(node, qualname, path, allow,
                                         attr_calls=attr_calls)
            if finding is not None:
                findings.append(finding)
            elif (depth >= 1 and isinstance(node, ast.Tuple)
                    and isinstance(node.ctx, ast.Load)):
                findings.append(Finding(
                    "R001", path, node.lineno,
                    f"tuple literal allocates inside the "
                    f"per-reference loop of {qualname}; nothing may "
                    f"be boxed per reference",
                ))
        for child in _direct_loops(loop):
            visit(child, depth + 1)

    for loop in top_loops:
        visit(loop, 0)
    return findings


def _classify_hot_node(node, qualname, path, allow, attr_calls=True):
    if isinstance(node, ast.Call):
        if not attr_calls:
            return None
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr not in allow:
            return Finding(
                "R001", path, node.lineno,
                f"attribute call `.{func.attr}(...)` inside the hot "
                f"loop of {qualname}; pre-bind the method to a local "
                f"before the loop",
            )
    elif isinstance(node, _COMPREHENSIONS):
        return Finding(
            "R001", path, node.lineno,
            f"comprehension allocates inside the hot loop of "
            f"{qualname}; hoist it out of the loop",
        )
    elif isinstance(node, _DISPLAYS):
        return Finding(
            "R001", path, node.lineno,
            f"{type(node).__name__.lower()} literal allocates inside "
            f"the hot loop of {qualname}; hoist it out of the loop",
        )
    return None


# -- R002: parallel-array write discipline -----------------------------


def _sanctioned_fields(basename, writers):
    for name, fields in writers:
        if name == basename:
            return fields
    return frozenset()


def _assignment_targets(node):
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def check_tag_array_writes(project, config):
    findings = []
    for module in project.modules:
        basename = os.path.basename(module.path)
        sanctioned = _sanctioned_fields(
            basename, config.tag_array_writers
        )
        if sanctioned == "*":
            continue
        for node in ast.walk(module.tree):
            for target in _assignment_targets(node):
                field = _tag_array_field(target, config.tag_arrays)
                if field is None or field in sanctioned:
                    continue
                findings.append(Finding(
                    "R002", module.path, target.lineno,
                    f"write to parallel tag array `.{field}` outside "
                    f"its sanctioned writers; route the update "
                    f"through VirtualCache so the parallel arrays "
                    f"stay in lock-step",
                ))
    return findings


def _tag_array_field(target, tag_arrays):
    """The tag-array field *target* writes, or None.

    Matches element writes — ``<expr>.field[...] = ...`` — only.
    Those are the desynchronisation hazard: one array mutates while
    its siblings keep the old line.  Plain attribute binds are
    deliberately ignored; names like ``valid`` and ``state`` are
    scalar fields on PTEs and other records all over the tree.
    """
    if not isinstance(target, ast.Subscript):
        return None
    value = target.value
    if isinstance(value, ast.Attribute) and value.attr in tag_arrays:
        return value.attr
    return None


# -- R003: Event exhaustiveness ----------------------------------------


def _find_events_module(modules, config):
    for module in modules:
        if os.path.basename(module.path) == config.events_module:
            return module
    return None


def _event_members(events_module, config):
    """``{name: lineno}`` for every member of the Event enum."""
    members = {}
    for node in events_module.tree.body:
        if (isinstance(node, ast.ClassDef)
                and node.name == config.event_class):
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            members[target.id] = item.lineno
    return members


def _mode_set_members(events_module, config):
    """Every ``Event.X`` name referenced inside ``MODE_SETS``."""
    names = set()
    for node in events_module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(t, ast.Name)
                   and t.id == config.mode_sets_name
                   for t in node.targets):
            continue
        for sub in ast.walk(node.value):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == config.event_class):
                names.add(sub.attr)
    return names


def _incremented_members(modules, config):
    """Every ``Event.X`` passed to an ``increment(...)`` call."""
    names = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "increment"):
                continue
            for arg in node.args + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if (isinstance(sub, ast.Attribute)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == config.event_class):
                        names.add(sub.attr)
    return names


def check_event_exhaustiveness(project, config):
    modules = project.modules
    events_module = _find_events_module(modules, config)
    if events_module is None:
        return []
    members = _event_members(events_module, config)
    in_modes = _mode_set_members(events_module, config)
    incremented = _incremented_members(modules, config)

    findings = []
    for name, lineno in members.items():
        if name not in in_modes:
            findings.append(Finding(
                "R003", events_module.path, lineno,
                f"{config.event_class}.{name} is not assigned to any "
                f"{config.mode_sets_name} mode; no measurement "
                f"campaign can count it",
            ))
        if name not in incremented:
            findings.append(Finding(
                "R003", events_module.path, lineno,
                f"{config.event_class}.{name} is never passed to "
                f"increment() anywhere in the scanned sources",
            ))
    return findings


# -- R004: Event documentation -----------------------------------------


def _resolve_events_doc(events_module, config):
    """Locate ``config.events_doc`` from cwd or the module's ancestors.

    Tries the path relative to the working directory first (the
    normal ``python -m repro.lint src/`` invocation from the repo
    root), then walks up from the events module so the rule also
    works when lint is pointed at the tree from elsewhere.
    """
    candidate = config.events_doc
    if os.path.isabs(candidate):
        return candidate if os.path.exists(candidate) else None
    if os.path.exists(candidate):
        return candidate
    directory = os.path.dirname(os.path.abspath(events_module.path))
    while True:
        probe = os.path.join(directory, candidate)
        if os.path.exists(probe):
            return probe
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def check_event_docs(project, config):
    events_module = _find_events_module(project.modules, config)
    if events_module is None:
        return []
    members = _event_members(events_module, config)
    if not members:
        return []
    doc_path = _resolve_events_doc(events_module, config)
    if doc_path is None:
        return [Finding(
            "R004", events_module.path, 1,
            f"event documentation {config.events_doc!r} not found; "
            f"every {config.event_class} member must be documented "
            f"there",
        )]
    with open(doc_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    findings = []
    for name, lineno in sorted(members.items(),
                               key=lambda item: item[1]):
        if name not in text:
            findings.append(Finding(
                "R004", events_module.path, lineno,
                f"{config.event_class}.{name} is not mentioned in "
                f"{config.events_doc}; document it or drop the event",
            ))
    return findings


ALL_RULES = (
    check_hot_loops,
    check_tag_array_writes,
    check_event_exhaustiveness,
    check_event_docs,
)

__all__ = [
    "ALL_RULES",
    "check_hot_loops",
    "check_tag_array_writes",
    "check_event_exhaustiveness",
    "check_event_docs",
]
