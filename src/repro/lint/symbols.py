"""Project-wide symbol table for the whole-program lint pass.

The flow rules (R005-R008) need to answer questions a single parsed
file cannot: *which function does this call land in*, *what class does
``self.vm.daemon`` hold*, *which dataclass fields does ``RunOptions``
declare*.  :class:`SymbolTable` indexes every scanned module once:

* functions and methods by qualified name (``Class.method`` / ``func``)
  and by bare method name (the dynamic-dispatch fallback pool),
* classes with their base names, methods, properties, and — for
  dataclasses and annotated classes — declared fields,
* per-class attribute types recovered from constructor assignments
  (``self.daemon = ClockPageDaemon(...)`` types ``self.daemon``),
* per-module import aliases (``import time`` / ``from x import y``)
  so external calls resolve to dotted names like ``time.perf_counter``,
* per-module global (module-level) variable names, for the
  worker-safety rule's global-mutation check.

Resolution is deliberately *best effort*: Python cannot be statically
typed after the fact, so every consumer treats "unknown" as its own
answer (optimistic for the determinism audit, pessimistic for the
hot-path purity proof — see :mod:`repro.lint.effects`).
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method definition in the scanned tree."""

    qualname: str
    name: str
    class_name: Optional[str]
    module_path: str
    node: ast.AST
    lineno: int
    is_property: bool = False

    def __repr__(self):
        return f"FunctionInfo({self.qualname!r}, {self.module_path!r})"


@dataclass
class ClassInfo:
    """One class definition: bases, members, and recovered attr types."""

    name: str
    module_path: str
    node: ast.AST
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    properties: Tuple[str, ...] = ()
    fields: Tuple[str, ...] = ()
    is_dataclass: bool = False
    #: attr name -> class names assigned to it (``self.x = Cls(...)``).
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


def dotted_parts(expr):
    """The ``a.b.c`` chain of *expr* as a name tuple, or ``None``.

    Accepts ``Name`` and nested ``Attribute`` nodes only; anything with
    a call, subscript, or literal in the chain has no static spelling.
    """
    parts = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return tuple(parts)
    return None


def _decorator_names(node):
    names = []
    for decorator in node.decorator_list:
        parts = dotted_parts(decorator)
        if parts is None and isinstance(decorator, ast.Call):
            parts = dotted_parts(decorator.func)
        if parts:
            names.append(".".join(parts))
    return names


def _annotated_names(class_node):
    """Class-level annotated names, in declaration order.

    For a dataclass these are exactly the generated fields; for plain
    classes they are still the declared data surface.
    """
    names = []
    for item in class_node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            names.append(item.target.id)
    return tuple(names)


def constructed_classes(value):
    """Class names *value* may construct (walks IfExp/BoolOp arms)."""
    if isinstance(value, ast.Call):
        parts = dotted_parts(value.func)
        if parts:
            return (parts[-1],)
        return ()
    if isinstance(value, ast.IfExp):
        arms = constructed_classes(value.body) + constructed_classes(
            value.orelse
        )
        return _dedupe(arms)
    if isinstance(value, ast.BoolOp):
        result = ()
        for item in value.values:
            result += constructed_classes(item)
        return _dedupe(result)
    return ()


def _dedupe(names):
    seen = ()
    for name in names:
        if name not in seen:
            seen += (name,)
    return seen


class SymbolTable:
    """Index of every definition in a parsed module set."""

    def __init__(self, modules):
        self.modules = list(modules)
        #: qualname -> [FunctionInfo] (same-named defs across modules
        #: share an entry; consumers union over the list).
        self.functions: Dict[str, List[FunctionInfo]] = {}
        #: bare method/function name -> [FunctionInfo].
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: class name -> [ClassInfo].
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: module path -> {alias -> dotted import target}.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module path -> module-level assigned names.
        self.module_globals: Dict[str, set] = {}
        #: (module path, name) -> FunctionInfo for module-level defs.
        self.module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        for module in self.modules:
            self._index_module(module)
        for infos in self.classes.values():
            for info in infos:
                self._recover_attr_types(info)

    # -- indexing ------------------------------------------------------

    def _index_module(self, module):
        imports = {}
        globals_here = set()
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else name
                    imports[name] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    imports[name] = f"{node.module}.{alias.name}"
            elif isinstance(node, _FUNCTION_NODES):
                self._add_function(module, node, None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign,
                                   ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        globals_here.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                globals_here.add(element.id)
        self.imports[module.path] = imports
        self.module_globals[module.path] = globals_here

    def _add_function(self, module, node, class_name,
                      is_property=False):
        qualname = (f"{class_name}.{node.name}" if class_name
                    else node.name)
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            class_name=class_name,
            module_path=module.path,
            node=node,
            lineno=node.lineno,
            is_property=is_property,
        )
        self.functions.setdefault(qualname, []).append(info)
        self.by_name.setdefault(node.name, []).append(info)
        if class_name is None:
            self.module_functions[(module.path, node.name)] = info
        return info

    def _add_class(self, module, node):
        bases = []
        for base in node.bases:
            parts = dotted_parts(base)
            if parts:
                bases.append(parts[-1])
        decorators = _decorator_names(node)
        info = ClassInfo(
            name=node.name,
            module_path=module.path,
            node=node,
            bases=tuple(bases),
            fields=_annotated_names(node),
            is_dataclass=any("dataclass" in name
                             for name in decorators),
        )
        properties = []
        for item in node.body:
            if isinstance(item, _FUNCTION_NODES):
                is_property = "property" in _decorator_names(item)
                member = self._add_function(
                    module, item, node.name, is_property=is_property
                )
                info.methods[item.name] = member
                if is_property:
                    properties.append(item.name)
        info.properties = tuple(properties)
        self.classes.setdefault(node.name, []).append(info)

    def _recover_attr_types(self, info):
        """Type ``self.x`` from constructor-style assignments."""
        attr_types = {}
        for method in info.methods.values():
            local_classes = self.local_class_bindings(method.node)
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    names = tuple(
                        name
                        for name in constructed_classes(node.value)
                        if name in self.classes
                    )
                    if (not names and isinstance(node.value, ast.Name)
                            and node.value.id in local_classes):
                        names = local_classes[node.value.id]
                    if names:
                        previous = attr_types.get(target.attr, ())
                        merged = previous + tuple(
                            name for name in names
                            if name not in previous
                        )
                        attr_types[target.attr] = merged
        info.attr_types = attr_types

    # -- queries -------------------------------------------------------

    def local_class_bindings(self, func_node):
        """``{local name: (class names,)}`` from constructor assigns."""
        bindings = {}
        for node in ast.walk(func_node):
            if not isinstance(node, ast.Assign):
                continue
            names = tuple(
                name for name in constructed_classes(node.value)
                if name in self.classes
            )
            if not names:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = names
        return bindings

    def class_infos(self, name):
        """Every :class:`ClassInfo` defined under *name*."""
        return self.classes.get(name, [])

    def method_in_class(self, class_name, method_name, _seen=None):
        """Resolve *method_name* on *class_name*, walking base names."""
        if _seen is None:
            _seen = set()
        if class_name in _seen:
            return []
        _seen.add(class_name)
        found = []
        for info in self.class_infos(class_name):
            if method_name in info.methods:
                found.append(info.methods[method_name])
                continue
            for base in info.bases:
                found.extend(
                    self.method_in_class(base, method_name, _seen)
                )
        return found

    def receiver_classes(self, chain, context_class):
        """Classes an attribute chain may hold, or ``None`` if unknown.

        *chain* is the receiver part of a call — ``("self", "vm",
        "daemon")`` for ``self.vm.daemon.poll()`` — and *context_class*
        the class of the enclosing method.  Each step follows the
        recovered ``attr_types``; any unknown step returns ``None``.
        """
        if not chain:
            return None
        if chain[0] == "self" and context_class:
            current = (context_class,)
            rest = chain[1:]
        elif chain[0] in self.classes:
            current = (chain[0],)
            rest = chain[1:]
        else:
            return None
        for attr in rest:
            next_classes = ()
            for name in current:
                for info in self.class_infos(name):
                    next_classes += tuple(
                        candidate
                        for candidate in info.attr_types.get(attr, ())
                        if candidate not in next_classes
                    )
            if not next_classes:
                return None
            current = next_classes
        return current

    def dataclass_fields(self, class_name):
        """Declared field names of *class_name* (annotated members)."""
        fields = ()
        for info in self.class_infos(class_name):
            fields += tuple(
                name for name in info.fields if name not in fields
            )
        return fields

    def is_module_global(self, module_path, name):
        """Whether *name* is assigned at module level in that file."""
        return name in self.module_globals.get(module_path, set())

    def import_target(self, module_path, name):
        """The dotted import behind *name* in that file, or ``None``."""
        return self.imports.get(module_path, {}).get(name)


__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "SymbolTable",
    "constructed_classes",
    "dotted_parts",
]
