"""The whole-machine SPUR simulator.

:class:`SpurMachine` wires a processor reference stream through the
virtual-address cache, the in-cache translator, the Sprite-like VM,
and the active dirty/reference-bit policies, accumulating cycles with
the Table 2.1 timing model and events in the performance counters.

:mod:`repro.machine.config` provides the paper-scale configuration
(128 KB cache, 4 KB pages, 5-8 MB memory) and the scaled configuration
the benches use by default (same ratios, ~1/8 linear size) — see
DESIGN.md for the substitution argument.
"""

from repro.machine.config import (
    MachineConfig,
    TABLE_2_1,
    paper_config,
    scaled_config,
    sun3_like_config,
)
from repro.machine.simulator import SpurMachine
from repro.machine.smp import SmpSystem
from repro.machine.runner import ExperimentRunner, RunResult
from repro.machine.inspect import (
    cache_lines,
    cache_summary,
    machine_summary,
    vm_summary,
)

__all__ = [
    "ExperimentRunner",
    "MachineConfig",
    "RunResult",
    "SmpSystem",
    "SpurMachine",
    "TABLE_2_1",
    "cache_lines",
    "cache_summary",
    "machine_summary",
    "paper_config",
    "scaled_config",
    "sun3_like_config",
    "vm_summary",
]
