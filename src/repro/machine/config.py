"""Machine configurations.

Two stock geometries:

* :func:`paper_config` — the SPUR prototype exactly as Table 2.1
  describes it: 128 KB direct-mapped cache, 32-byte blocks, 4 KB
  pages, 5/6/8 MB of main memory.
* :func:`scaled_config` — the same machine shrunk by a configurable
  linear factor (default 8) with all the ratios the paper's phenomena
  depend on preserved: blocks per page, pages per cache, memory-to-
  cache ratio.  Pure-Python simulation of the paper-scale workloads
  would need hundreds of millions of references per data point; the
  scaled machine reproduces the shapes in minutes (DESIGN.md §2).
"""

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.common.params import (
    CacheGeometry,
    FaultTiming,
    MemoryTiming,
    PageGeometry,
    WORD_BYTES,
)
from repro.common.units import KB, MB

#: Table 2.1 verbatim, for the bench that regenerates it.
TABLE_2_1 = (
    ("Cache Size", "128 Kbytes"),
    ("Associativity", "Direct Mapped"),
    ("Block Size", "32 bytes"),
    ("Page Size", "4 Kbytes"),
    ("Instruction Buffer", "Disabled"),
    ("Processor cycle time", "150ns"),
    ("Backplane cycle time", "125ns"),
    ("Time to first word", "3 cycles"),
    ("Time to next word", "1 cycle"),
)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a :class:`SpurMachine`."""

    name: str = "spur-prototype"
    cache: CacheGeometry = field(default_factory=CacheGeometry)
    page_bytes: int = 4 * KB
    memory_bytes: int = 8 * MB
    wired_frames: int = 8
    memory_timing: MemoryTiming = field(default_factory=MemoryTiming)
    fault_timing: FaultTiming = field(default_factory=FaultTiming)
    flush_strategy: str = "tag-checked"   # or "tagless"
    dirty_policy: str = "SPUR"
    reference_policy: str = "MISS"
    #: Page-daemon water marks in frames; ``None`` selects the
    #: geometry-derived defaults at machine build time.
    low_water: Optional[int] = None
    high_water: Optional[int] = None
    #: Multiplier on per-line flush and per-word zero-fill costs.  A
    #: geometry-scaled machine has the same *number* of pages as the
    #: prototype but 1/scale as many blocks (and words) per page, so
    #: page-granularity software costs (flush-on-clear, zero filling)
    #: would come out 1/scale as expensive relative to everything else;
    #: this factor restores the paper-relative cost.  1 at paper scale.
    flush_cost_scale: int = 1
    #: References between periodic page-daemon maintenance passes
    #: (Sprite's daemon cleared reference bits on a timer, not only
    #: under memory pressure).  Any positive interval; 0 disables.
    daemon_poll_refs: int = 65536
    #: Page-replacement daemon: "clock" (Sprite's second-chance clock,
    #: what the paper measured) or "segfifo" (the no-reference-bits
    #: segmented FIFO extension; pair it with reference_policy NOREF).
    daemon_kind: str = "clock"
    #: Inactive-list depth for the segfifo daemon, as a fraction of
    #: allocatable frames.
    inactive_fraction: float = 0.25
    #: Page-table region bases in the global virtual space.
    pte_base: int = 0x8000_0000
    second_level_base: int = 0xC000_0000
    user_limit: int = 0x8000_0000

    def __post_init__(self):
        if self.page_bytes < self.cache.block_bytes:
            raise ConfigurationError("page smaller than a cache block")
        if self.memory_bytes % self.page_bytes:
            raise ConfigurationError(
                "memory must be a whole number of pages"
            )
        frames = self.memory_bytes // self.page_bytes
        if self.wired_frames >= frames:
            raise ConfigurationError("wired frames consume all memory")
        if self.daemon_poll_refs < 0:
            raise ConfigurationError(
                "daemon_poll_refs must be 0 (disabled) or positive"
            )

    @property
    def num_frames(self):
        return self.memory_bytes // self.page_bytes

    @property
    def page_geometry(self):
        return PageGeometry(self.page_bytes, self.cache.block_bytes)

    @property
    def zero_fill_cycles(self):
        """CPU cycles to zero one page (one store per word).

        Scaled by ``flush_cost_scale`` so a shrunken page costs what
        the prototype's 4 KB page did relative to the rest of the run.
        """
        return (self.page_bytes // WORD_BYTES) * self.flush_cost_scale

    def with_memory(self, memory_bytes):
        """The same machine with a different memory size."""
        return replace(self, memory_bytes=memory_bytes)

    def with_policies(self, dirty=None, reference=None):
        """The same machine with different bit-maintenance policies."""
        changes = {}
        if dirty is not None:
            changes["dirty_policy"] = dirty
        if reference is not None:
            changes["reference_policy"] = reference
        return replace(self, **changes) if changes else self


def paper_config(memory_mb=8, **overrides):
    """The SPUR prototype of Table 2.1 with ``memory_mb`` of memory."""
    config = MachineConfig(
        name=f"spur-{memory_mb}mb",
        cache=CacheGeometry(size_bytes=128 * KB, block_bytes=32),
        page_bytes=4 * KB,
        memory_bytes=memory_mb * MB,
        fault_timing=FaultTiming(page_io=130_000),
    )
    return replace(config, **overrides) if overrides else config


def scaled_config(memory_ratio=40, scale=8, **overrides):
    """A geometry-preserving shrink of the prototype.

    Parameters
    ----------
    memory_ratio:
        Main-memory size as a multiple of the cache size.  The paper's
        5, 6, and 8 MB points against a 128 KB cache are ratios 40,
        48, and 64.
    scale:
        Linear shrink factor applied to the cache and page (block size
        is kept at 32 bytes — it is the unit of the phenomena, not a
        free parameter).

    With the default ``scale=8``: 16 KB cache, 512-byte pages
    (16 blocks per page, 32 pages of cache), and memory of
    ``memory_ratio * 16 KB``.
    """
    if scale < 1:
        raise ConfigurationError("scale must be >= 1")
    cache_bytes = (128 * KB) // scale
    page_bytes = (4 * KB) // scale
    config = MachineConfig(
        name=f"spur-scaled{scale}-r{memory_ratio}",
        cache=CacheGeometry(size_bytes=cache_bytes, block_bytes=32),
        page_bytes=page_bytes,
        memory_bytes=memory_ratio * cache_bytes,
        wired_frames=4,
        flush_cost_scale=scale,
        # Disk latency does not shrink with the machine; against the
        # shorter scaled runs we keep page I/O expensive relative to
        # compute, matching the paper's elapsed-time sensitivity to
        # paging (Table 4.1).
        fault_timing=FaultTiming(page_io=40_000),
    )
    return replace(config, **overrides) if overrides else config


def sun3_like_config(memory_mb=8, scale=8, **overrides):
    """A Sun-3-flavoured comparator machine.

    The paper repeatedly contrasts SPUR with the Sun-3 architecture:
    a direct-mapped virtual cache with synonym restrictions, 8 KB
    pages (twice SPUR's), and a hardware dirty-bit check on the first
    write to each cache block — our WRITE policy.  This preset builds
    that machine (geometry-scaled like :func:`scaled_config`) so the
    paper's "the Sun-3 mechanism is not justified" argument can be
    run as a machine-versus-machine comparison instead of a policy
    swap alone.

    The reference-bit side keeps SPUR's MISS approximation: the Sun-3
    kept reference bits in its memory-management RAM, which behaves
    comparably for the daemon's purposes.
    """
    if scale < 1:
        raise ConfigurationError("scale must be >= 1")
    cache_bytes = (64 * KB) // scale     # Sun-3/200 class cache
    page_bytes = (8 * KB) // scale       # 8 KB pages
    config = MachineConfig(
        name=f"sun3-like-{memory_mb}mb",
        cache=CacheGeometry(size_bytes=cache_bytes, block_bytes=32),
        page_bytes=page_bytes,
        memory_bytes=memory_mb * MB // scale,
        wired_frames=4,
        dirty_policy="WRITE",
        reference_policy="MISS",
        flush_cost_scale=scale,
        fault_timing=FaultTiming(page_io=40_000),
    )
    return replace(config, **overrides) if overrides else config


#: The paper's three measurement memory sizes, as cache ratios.
PAPER_MEMORY_RATIOS = {5: 40, 6: 48, 8: 64}
