"""Processor-side reference accounting.

The SPUR CPU issues one memory reference per cycle when hitting in the
cache (the prototype's instruction buffer was disabled, so *every*
instruction fetch goes to the cache — Table 2.1).  The machine's hot
loop counts the reference mix in local variables for speed and folds
the totals into this record and the performance counters at the end of
each run segment.
"""

from dataclasses import dataclass

from repro.counters.events import Event


@dataclass
class ReferenceMix:
    """Totals of the three processor reference kinds."""

    ifetches: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def total(self):
        return self.ifetches + self.reads + self.writes

    def add(self, ifetches, reads, writes):
        self.ifetches += ifetches
        self.reads += reads
        self.writes += writes

    def flush_to_counters(self, counters):
        """Publish the totals into the performance counters.

        Idempotence is the caller's problem: the machine calls this
        exactly once per run segment with that segment's deltas.
        """
        counters.increment(Event.INSTRUCTION_FETCH, self.ifetches)
        counters.increment(Event.PROCESSOR_READ, self.reads)
        counters.increment(Event.PROCESSOR_WRITE, self.writes)
