"""Machine-state inspection: human-readable dumps for debugging.

When a policy misbehaves the question is always "what exactly is in
the cache / page table / frame table right now?"  These helpers
answer it in a few readable lines instead of a debugger session, and
the examples use them for narration.
"""

from collections import Counter

from repro.common.types import Protection


def cache_summary(cache):
    """One-paragraph census of a cache's tag state."""
    states = Counter()
    dirty_blocks = 0
    dirty_pages = 0
    pte_blocks = 0
    for index in cache.resident_lines():
        states[cache.state[index].name] += 1
        dirty_blocks += cache.block_dirty[index]
        dirty_pages += cache.page_dirty[index]
        pte_blocks += cache.holds_pte[index]
    resident = sum(states.values())
    lines = [
        f"{cache.name}: {resident}/{cache.num_lines} lines valid",
        f"  block-dirty {dirty_blocks}, page-dirty copies "
        f"{dirty_pages}, PTE blocks {pte_blocks}",
    ]
    if states:
        census = ", ".join(
            f"{name} {count}" for name, count in sorted(states.items())
        )
        lines.append(f"  coherency: {census}")
    return "\n".join(lines)


def cache_lines(cache, limit=16):
    """Tabular dump of the first ``limit`` valid lines."""
    rows = [
        f"{'line':>5} {'vaddr':>10} {'prot':>5} {'pgD':>3} "
        f"{'blkD':>4} {'state':>15} {'pte':>3}"
    ]
    shown = 0
    for index in cache.resident_lines():
        if shown >= limit:
            rows.append(f"  ... and "
                        f"{len(cache.resident_lines()) - limit} more")
            break
        rows.append(
            f"{index:>5} {cache.line_vaddr[index]:#10x} "
            f"{Protection(cache.prot[index]).name[:5]:>5} "
            f"{int(cache.page_dirty[index]):>3} "
            f"{int(cache.block_dirty[index]):>4} "
            f"{cache.state[index].name:>15} "
            f"{int(cache.holds_pte[index]):>3}"
        )
        shown += 1
    return "\n".join(rows)


def vm_summary(machine):
    """Census of the VM: residency, dirtiness, swap, daemon state."""
    vm = machine.vm
    resident = 0
    dirty = 0
    inactive = 0
    swapped = 0
    for vpn, page in vm.pages.items():
        if page.frame is not None:
            resident += 1
            if page.inactive:
                inactive += 1
            elif machine.page_table.lookup(vpn).is_modified():
                dirty += 1
        if page.in_swap:
            swapped += 1
    frame_table = vm.frame_table
    lines = [
        f"memory: {resident}/{frame_table.allocatable_frames} frames "
        f"used ({vm.allocator.free_count} free)",
        f"  dirty resident pages {dirty}, inactive {inactive}, "
        f"pages with swap images {swapped}",
        f"  daemon: {type(vm.daemon).__name__}, "
        f"{vm.daemon.runs} pressure runs, "
        f"{vm.daemon.pages_reclaimed} reclaimed",
    ]
    stats = machine.swap.stats
    lines.append(
        f"  paging I/O: {stats.page_ins} in / {stats.page_outs} out, "
        f"{stats.zero_fills} zero-fills"
    )
    return "\n".join(lines)


def machine_summary(machine):
    """Everything at a glance: cycles, mix, cache, VM."""
    mix = machine.reference_mix
    lines = [
        f"{machine.name}: {machine.references:,} refs, "
        f"{machine.cycles:,} cycles "
        f"({machine.cycles / max(1, machine.references):.2f}/ref)",
        f"  mix: {mix.ifetches:,} ifetch / {mix.reads:,} read / "
        f"{mix.writes:,} write",
        cache_summary(machine.cache),
        vm_summary(machine),
    ]
    return "\n".join(lines)
