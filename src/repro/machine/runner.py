"""Experiment execution: one run = one machine + one workload.

:class:`ExperimentRunner` reproduces the paper's measurement
discipline: each data point is a fresh machine (cold cache, empty
memory) driven by a freshly instantiated workload; repetitions use
distinct seeds; multi-point experiments can be order-randomised the
way Section 4.2's five-repetition design was.
"""

import time
from dataclasses import dataclass
from typing import Dict

from repro.common.rng import DeterministicRng
from repro.common.units import SPUR_CYCLE_TIME_SECONDS
from repro.counters.events import Event
from repro.machine.simulator import SpurMachine


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    workload: str
    config_name: str
    memory_bytes: int
    dirty_policy: str
    reference_policy: str
    seed: int
    references: int
    cycles: int
    events: Dict[Event, int]
    page_ins: int
    page_outs: int
    zero_fills: int
    potentially_modified: int
    not_modified: int
    host_seconds: float = 0.0

    @property
    def elapsed_seconds(self):
        """Simulated elapsed time at the 150 ns prototype cycle."""
        return self.cycles * SPUR_CYCLE_TIME_SECONDS

    @property
    def cycles_per_reference(self):
        return self.cycles / self.references if self.references else 0.0

    def event(self, event):
        """Count of one performance-counter event (0 if unseen)."""
        return self.events.get(event, 0)


class ExperimentRunner:
    """Builds machines and executes workload runs."""

    def __init__(self, master_seed=1234):
        self.master_seed = master_seed

    def run(self, config, workload, seed=0, max_references=None):
        """One cold-start run; returns a :class:`RunResult`.

        Parameters
        ----------
        config:
            :class:`repro.machine.config.MachineConfig` (policies and
            memory size included).
        workload:
            A :class:`repro.workloads.base.Workload` recipe.
        seed:
            Repetition seed mixed into the workload's RNG.
        max_references:
            Optional cap on references simulated (smoke tests).
        """
        instance = workload.instantiate(config.page_bytes, seed=seed)
        machine = SpurMachine(config, instance.space_map)
        accesses = instance.accesses()
        if max_references is not None:
            accesses = _take(accesses, max_references)
        started = time.perf_counter()
        machine.run(accesses)
        host_seconds = time.perf_counter() - started
        swap_stats = machine.swap.stats
        return RunResult(
            workload=instance.name,
            config_name=config.name,
            memory_bytes=config.memory_bytes,
            dirty_policy=machine.dirty_policy.name,
            reference_policy=machine.reference_policy.name,
            seed=seed,
            references=machine.references,
            cycles=machine.cycles,
            events=machine.counters.snapshot().as_dict(),
            page_ins=swap_stats.page_ins,
            page_outs=swap_stats.page_outs,
            zero_fills=swap_stats.zero_fills,
            potentially_modified=swap_stats.potentially_modified,
            not_modified=swap_stats.not_modified,
            host_seconds=host_seconds,
        )

    def run_repetitions(self, config, workload, repetitions=5,
                        max_references=None):
        """Independent repetitions with distinct seeds."""
        return [
            self.run(config, workload, seed=rep,
                     max_references=max_references)
            for rep in range(repetitions)
        ]

    def run_matrix(self, points, repetitions=1, randomize=True,
                   max_references=None):
        """Run a list of ``(label, config, workload)`` points.

        With ``randomize`` the (point, repetition) cells execute in a
        shuffled order — the paper's randomised experiment design
        (Section 4.2) — which matters there for warm hardware and
        here only for honest wall-clock interleaving, but is kept for
        methodological fidelity.  Returns ``{label: [RunResult, ...]}``
        with repetitions in seed order regardless of execution order.
        """
        cells = [
            (label, config, workload, rep)
            for label, config, workload in points
            for rep in range(repetitions)
        ]
        if randomize:
            DeterministicRng(self.master_seed).shuffle(cells)
        results = {label: [None] * repetitions
                   for label, _, _ in points}
        for label, config, workload, rep in cells:
            results[label][rep] = self.run(
                config, workload, seed=rep,
                max_references=max_references,
            )
        return results


def _take(iterator, count):
    """Yield at most ``count`` items."""
    for index, item in enumerate(iterator):
        if index >= count:
            break
        yield item
