"""Experiment execution: one run = one machine + one workload.

:class:`ExperimentRunner` reproduces the paper's measurement
discipline: each data point is a fresh machine (cold cache, empty
memory) driven by a freshly instantiated workload; repetitions use
distinct seeds; multi-point experiments can be order-randomised the
way Section 4.2's five-repetition design was.

Because every run is a pure function of (config, workload recipe,
seed, reference cap), the multi-run entry points accept ``workers=N``
to fan independent cells out over worker processes via
:mod:`repro.parallel` — results are bit-identical to the serial path,
only faster — and a :class:`~repro.parallel.cache.ResultCache` to
skip cells whose inputs were already simulated.
"""

import hashlib
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.rng import DeterministicRng
from repro.common.units import SPUR_CYCLE_TIME_SECONDS
from repro.counters.events import Event
from repro.machine.simulator import SpurMachine
from repro.observe.series import RunObservation
from repro.options import RunOptions
from repro.workloads.base import DEFAULT_CHUNK_REFS


@dataclass
class RunResult:
    """Everything measured during one simulation run.

    ``host_seconds`` is measurement *about* the host, not the
    simulation: it is excluded from equality (``compare=False``) and
    from cache serialisation so wall-clock noise can never fail a
    result comparison or defeat a cache hit.  ``observation`` follows
    the same discipline — the counter time series and phase profile of
    an observed run ride alongside the result, never inside equality
    or the cache, so observing a run cannot change what it measured.
    """

    workload: str
    config_name: str
    memory_bytes: int
    dirty_policy: str
    reference_policy: str
    seed: int
    references: int
    cycles: int
    events: Dict[Event, int]
    page_ins: int
    page_outs: int
    zero_fills: int
    potentially_modified: int
    not_modified: int
    host_seconds: float = field(default=0.0, compare=False)
    #: Times the vectorized classifier fell back to the per-reference
    #: loop mid-segment (see ``SpurMachine.scalar_bailouts``).  A host
    #: diagnostic like ``host_seconds``: excluded from equality and
    #: cache serialisation, so cached results read back 0.
    scalar_bailouts: int = field(default=0, compare=False)
    observation: Optional[RunObservation] = field(
        default=None, compare=False, repr=False
    )

    @property
    def elapsed_seconds(self):
        """Simulated elapsed time at the 150 ns prototype cycle."""
        return self.cycles * SPUR_CYCLE_TIME_SECONDS

    @property
    def cycles_per_reference(self):
        return self.cycles / self.references if self.references else 0.0

    def event(self, event):
        """Count of one performance-counter event (0 if unseen)."""
        return self.events.get(event, 0)


def mix_seed(master_seed, rep):
    """Derive repetition *rep*'s run seed from *master_seed*.

    SHA-256 based so the mapping is stable across platforms and
    Python versions, and so nearby (master_seed, rep) pairs land far
    apart in seed space.
    """
    digest = hashlib.sha256(
        f"{master_seed}:{rep}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 63)


class ExperimentRunner:
    """Builds machines and executes workload runs.

    Parameters
    ----------
    master_seed:
        Seeds the execution-order shuffle of :meth:`run_matrix`, and —
        only with ``mix_master_seed=True`` — the per-run seeds.
    mix_master_seed:
        By default (``False``) repetition ``rep`` runs with
        ``seed=rep`` exactly as the original runner did, keeping every
        golden result reproducible; two runners with different master
        seeds therefore produce identical results.  Opt in to mix
        ``master_seed`` into each per-run seed via :func:`mix_seed`
        when independent replications of a whole experiment are
        wanted.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache` consulted
        by the multi-run entry points.
    sanitize:
        Optional :mod:`repro.sanitize` mode name; every run then
        executes under an attached invariant sanitizer.
    chunk_refs:
        References per flat workload chunk (the batched hot-loop
        path, on by default).  ``0`` or ``None`` selects the legacy
        per-tuple stream.  Either path produces bit-identical results
        — same counters, cycles, and cache keys — so this knob trades
        nothing but host speed.
    options:
        A :class:`~repro.options.RunOptions` bundling every execution
        knob (workers, chunking, caching, sanitizing, observation).
        This is the documented API; the ``cache``/``sanitize``/
        ``chunk_refs`` keywords above are a deprecated compatibility
        shim consulted only when ``options`` is not given.  An
        explicit ``cache`` object always wins over
        ``options.cache_dir``.
    """

    def __init__(self, master_seed=1234, mix_master_seed=False,
                 cache=None, sanitize=None,
                 chunk_refs=DEFAULT_CHUNK_REFS, options=None):
        if options is None:
            options = RunOptions(
                chunk_refs=chunk_refs or 0, sanitize=sanitize
            )
        else:
            options = RunOptions.coerce(options)
        self.options = options
        self.master_seed = master_seed
        self.mix_master_seed = mix_master_seed
        self.cache = cache if cache is not None else options.build_cache()
        self.sanitize = options.sanitize
        self.chunk_refs = options.chunk_refs

    def rep_seed(self, rep):
        """The run seed used for repetition *rep*."""
        if self.mix_master_seed:
            return mix_seed(self.master_seed, rep)
        return rep

    def _call_options(self, options, workers=None):
        """Resolve per-call options: explicit ones win over the runner's.

        ``workers`` is the legacy per-call keyword; when given it
        overrides the resolved options' worker count.
        """
        if options is None:
            options = self.options
        else:
            options = RunOptions.coerce(options)
        if workers is not None and workers != options.workers:
            options = options.replace(workers=workers)
        return options

    def run(self, config, workload, seed=0, max_references=None,
            label=None, options=None):
        """One cold-start run; returns a :class:`RunResult`.

        Parameters
        ----------
        config:
            :class:`repro.machine.config.MachineConfig` (policies and
            memory size included).
        workload:
            A :class:`repro.workloads.base.Workload` recipe.
        seed:
            Repetition seed mixed into the workload's RNG.
        max_references:
            Optional cap on references simulated (smoke tests).
        label:
            Optional name carried into trace events and the run's
            observation (never into the result itself).
        options:
            Per-call :class:`~repro.options.RunOptions` overriding the
            runner's own for this run only.
        """
        options = self._call_options(options)
        instance = workload.instantiate(config.page_bytes, seed=seed)
        machine = SpurMachine(config, instance.space_map)
        sanitizer = None
        if options.sanitize:
            from repro.sanitize.sanitizer import Sanitizer

            sanitizer = Sanitizer(mode=options.sanitize)
            sanitizer.attach(machine)
        observer = None
        if options.observe:
            from repro.observe.observer import RunObserver

            # Attached after the sanitizer so epoch segmentation feeds
            # the sanitizer-wrapped entry points.
            observer = RunObserver(
                epoch_refs=options.epoch_refs, label=label
            )
            observer.attach(machine)
        if options.chunk_refs:
            chunks = instance.access_chunks(options.chunk_refs)
            if max_references is not None:
                chunks = _take_chunks(chunks, max_references)
            started = time.perf_counter()
            machine.run_chunks(chunks)
        else:
            accesses = instance.accesses()
            if max_references is not None:
                accesses = _take(accesses, max_references)
            started = time.perf_counter()
            machine.run(accesses)
        host_seconds = time.perf_counter() - started
        if sanitizer is not None:
            sanitizer.check_now()
        if observer is not None:
            merge_started = time.perf_counter()
        swap_stats = machine.swap.stats
        events = machine.counters.snapshot().as_dict()
        observation = None
        if observer is not None:
            observer.charge(
                "merge", time.perf_counter() - merge_started
            )
            observation = observer.finish()
        result = RunResult(
            workload=instance.name,
            config_name=config.name,
            memory_bytes=config.memory_bytes,
            dirty_policy=machine.dirty_policy.name,
            reference_policy=machine.reference_policy.name,
            seed=seed,
            references=machine.references,
            cycles=machine.cycles,
            events=events,
            page_ins=swap_stats.page_ins,
            page_outs=swap_stats.page_outs,
            zero_fills=swap_stats.zero_fills,
            potentially_modified=swap_stats.potentially_modified,
            not_modified=swap_stats.not_modified,
            host_seconds=host_seconds,
            scalar_bailouts=machine.scalar_bailouts,
            observation=observation,
        )
        if options.trace_sink is not None:
            from repro.observe.sinks import emit_run

            emit_run(options.trace_sink, result, label=label)
        return result

    def run_many(self, specs, workers=None, options=None, labels=None):
        """Run ``(config, workload, seed, max_references)`` specs.

        The building block the multi-run entry points (and
        :class:`~repro.analysis.sweeps.SweepDriver`) share: resolves
        each spec against the runner's cache, simulates misses over
        worker processes, and returns results in spec order.  Serial,
        uncached, untraced calls are exactly a loop over :meth:`run`.

        ``workers`` is the legacy per-call keyword; ``options`` (a
        :class:`~repro.options.RunOptions`) is the documented way to
        set workers, caching, and observation per call.  ``labels``
        optionally names each spec for trace events and observations.
        """
        specs = list(specs)
        options = self._call_options(options, workers)
        cache = self.cache
        if options is not self.options:
            # Per-call options own the cache decision outright: a
            # use_cache=False call must bypass the runner's cache too,
            # not just decline to build its own.
            if not options.use_cache:
                cache = None
            elif options.cache_dir:
                cache = options.build_cache()
        if labels is None:
            labels = [None] * len(specs)
        plain_serial = (
            options.workers <= 1 and cache is None
            and options.trace_sink is None and not options.progress
            and not options.fleet and not options.campaignd
        )
        if plain_serial:
            return [
                self.run(config, workload, seed=seed,
                         max_references=max_references,
                         label=label, options=options)
                for (config, workload, seed, max_references), label
                in zip(specs, labels)
            ]
        from repro.parallel import RunCell, execute_cells

        cells = [
            RunCell(config, workload, seed=seed,
                    max_references=max_references,
                    sanitize=options.sanitize,
                    chunk_refs=options.chunk_refs,
                    label=label,
                    observe=options.observe,
                    epoch_refs=options.epoch_refs)
            for (config, workload, seed, max_references), label
            in zip(specs, labels)
        ]
        if options.campaignd:
            return self._run_service(cells, options, cache)
        return execute_cells(
            cells, workers=options.workers, cache=cache,
            sink=options.trace_sink, progress=options.progress,
            fleet=options.fleet,
        )

    def _run_service(self, cells, options, cache):
        """Drive *cells* through the campaign service.

        The resumable/distributed/retrying path selected whenever the
        options carry a journal, a driver choice, retries, or a cell
        timeout (``options.campaignd``).  Results are bit-identical
        to :func:`~repro.parallel.execute_cells` on the same cells.
        """
        from repro.campaignd import (
            CampaignService,
            LocalDriver,
            RetryPolicy,
            SubprocessDriver,
        )

        if options.driver == "subprocess":
            driver = SubprocessDriver(
                workers=options.workers,
                cache_dir=cache.root if cache is not None else None,
            )
        else:
            driver = LocalDriver(
                workers=options.workers, fleet=options.fleet,
                sink=options.trace_sink,
            )
        service = CampaignService(
            cells,
            journal=options.journal,
            cache=cache,
            driver=driver,
            retry=RetryPolicy(
                retries=options.retries,
                backoff_seconds=options.retry_backoff_seconds,
                timeout_seconds=options.cell_timeout_seconds,
            ),
            sink=options.trace_sink,
            progress=options.progress,
        )
        return service.run()

    def run_repetitions(self, config, workload, repetitions=5,
                        max_references=None, workers=None,
                        options=None):
        """Independent repetitions with distinct seeds.

        ``workers`` is the legacy keyword; pass ``options`` (a
        :class:`~repro.options.RunOptions`) for the full knob set.
        """
        return self.run_many(
            [
                (config, workload, self.rep_seed(rep), max_references)
                for rep in range(repetitions)
            ],
            workers=workers,
            options=options,
            labels=[f"rep{rep}" for rep in range(repetitions)],
        )

    def run_matrix(self, points, repetitions=1, randomize=True,
                   max_references=None, workers=None, options=None):
        """Run a list of ``(label, config, workload)`` points.

        Labels must be unique: duplicates would silently interleave
        two points' repetitions under one key, so they raise
        ``ValueError`` instead.

        With ``randomize`` the (point, repetition) cells execute in a
        shuffled order — the paper's randomised experiment design
        (Section 4.2) — which matters there for warm hardware and
        here only for honest wall-clock interleaving, but is kept for
        methodological fidelity.  Returns ``{label: [RunResult, ...]}``
        with repetitions in seed order regardless of execution order
        or worker count.

        ``workers`` is the legacy keyword; pass ``options`` (a
        :class:`~repro.options.RunOptions`) for the full knob set.
        """
        label_counts = Counter(label for label, _, _ in points)
        duplicates = [
            label for label, count in label_counts.items() if count > 1
        ]
        if duplicates:
            raise ValueError(
                f"duplicate point labels in run_matrix: {duplicates!r};"
                f" each point needs a unique label"
            )
        cells = [
            (label, config, workload, rep)
            for label, config, workload in points
            for rep in range(repetitions)
        ]
        if randomize:
            DeterministicRng(self.master_seed).shuffle(cells)
        results = {label: [None] * repetitions
                   for label, _, _ in points}
        outcomes = self.run_many(
            [
                (config, workload, self.rep_seed(rep), max_references)
                for _, config, workload, rep in cells
            ],
            workers=workers,
            options=options,
            labels=[
                f"{_label_text(label)}/rep{rep}" if repetitions > 1
                else _label_text(label)
                for label, _, _, rep in cells
            ],
        )
        for (label, _, _, rep), result in zip(cells, outcomes):
            results[label][rep] = result
        return results


def _label_text(label):
    """Render a matrix point label (string or tuple) for telemetry."""
    if isinstance(label, tuple):
        return "/".join(str(part) for part in label)
    return str(label)


def _take(iterator, count):
    """Yield at most ``count`` items."""
    for index, item in enumerate(iterator):
        if index >= count:
            break
        yield item


def _take_chunks(chunks, count):
    """Yield at most ``count`` references' worth of flat chunks.

    The final chunk is trimmed to land on exactly ``count`` total
    references, matching what :func:`_take` does to the tuple stream.
    """
    remaining = count
    for chunk in chunks:
        pairs = len(chunk) >> 1
        if pairs >= remaining:
            yield chunk[:remaining * 2]
            return
        remaining -= pairs
        yield chunk
