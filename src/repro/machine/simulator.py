"""The SPUR machine: cache + translation + VM + policies + counters.

The reference-processing loop in :meth:`SpurMachine.run` is the
performance-critical core of the whole reproduction — every simulated
memory reference passes through it.  It therefore reads the cache's
parallel tag arrays directly (they are public for exactly this
purpose) and keeps its bookkeeping in local variables, falling into
method calls only on the rare paths: misses, write hits needing
dirty-bit work, faults.

Cycle model (Table 2.1, Section 3.2):

* cache hit — 1 cycle;
* cache miss — 1 cycle plus translation (3 cycles if the PTE is
  cached, block fetches otherwise) plus the block transfer;
* dirty/reference faults, flushes, page faults, paging I/O — charged
  by the policy and VM code via :class:`repro.common.params.
  FaultTiming`.
"""

import sys
from array import array

try:
    import numpy as _np
except ImportError:  # pragma: no cover - CI runs without numpy
    _np = None

from repro.common.errors import ProtectionFault
from repro.common.types import AccessKind, Protection
from repro.common.units import SPUR_CYCLE_TIME_SECONDS
from repro.counters.counters import PerformanceCounters
from repro.counters.events import Event
from repro.cache.bus import SnoopyBus
from repro.cache.cache import (
    TALLY_BUS,
    TALLY_CACHE_SLOTS,
    TALLY_EVICTIONS,
    TALLY_FILLS,
    TALLY_WRITE_BACKS,
    VirtualCache,
)
from repro.cache.coherence import BusOp, CoherencyState
from repro.cache.flush import TagCheckedFlush, TaglessFlush
from repro.machine.cpu import ReferenceMix
from repro.policies.dirty import make_dirty_policy
from repro.policies.reference import make_reference_policy
from repro.translation.incache import InCacheTranslator
from repro.translation.pagetable import PTE_BYTES, PageTable, PageTableLayout
from repro.vm.swap import SwapDevice
from repro.vm.system import VirtualMemorySystem

_WRITE = int(AccessKind.WRITE)
_RW = int(Protection.READ_WRITE)
_PROT_KERNEL = int(Protection.KERNEL)
_UNOWNED = CoherencyState.UNOWNED
_OWNED_EXCLUSIVE = CoherencyState.OWNED_EXCLUSIVE
_BUS_READ = BusOp.READ
_BUS_READ_OWNED = BusOp.READ_OWNED
_BUS_WRITE_BACK = BusOp.WRITE_BACK
_BUS_FOR_OWNERSHIP = BusOp.WRITE_FOR_OWNERSHIP

# Simulator-side slots in the chunked loop's deferred tally (the cache
# owns slots [0, TALLY_CACHE_SLOTS); see repro.cache.cache).  Each slot
# accumulates one counter event; ``_flush_tally`` applies them in one
# ``increment(event, n)`` per event, which is exact because counter
# arithmetic is modular addition and nothing samples the counter bank
# mid-call.
# Events that are 1:1 with a tallied slot on the fast path are derived
# at flush time instead of paying a per-reference tally op: TRANSLATION
# and BLOCK_FILL equal the kind-miss sum, SECOND_LEVEL_LOOKUP equals
# the PTE-miss count, and WRITE_MISS_FILL equals the write-miss count
# (the fast path commits only after the writability checks).
_T_PTE_HIT = TALLY_CACHE_SLOTS
_T_PTE_MISS = TALLY_CACHE_SLOTS + 1
_T_SECOND_HIT = TALLY_CACHE_SLOTS + 2
_T_SECOND_MEMORY = TALLY_CACHE_SLOTS + 3
_T_IFETCH_MISS = TALLY_CACHE_SLOTS + 4
_T_READ_MISS = TALLY_CACHE_SLOTS + 5
_T_WRITE_MISS = TALLY_CACHE_SLOTS + 6
_T_WRITE_HIT_CLEAN = TALLY_CACHE_SLOTS + 7
_T_WRITE_READ_FILLED = TALLY_CACHE_SLOTS + 8
# Diagnostic (not a counter event): times the vectorized classifier
# abandoned a stale classification snapshot and finished the segment
# in the per-reference loop.  Folded into ``scalar_bailouts`` at flush
# so conflict-heavy traces are diagnosable instead of silently slow.
_T_SCALAR_BAILOUT = TALLY_CACHE_SLOTS + 9
_TALLY_SLOTS = TALLY_CACHE_SLOTS + 10
_TALLY_ZEROS = (0,) * _TALLY_SLOTS

_TALLY_EVENTS = (
    (_T_PTE_HIT, Event.PTE_CACHE_HIT),
    (_T_PTE_MISS, Event.PTE_CACHE_MISS),
    (_T_SECOND_HIT, Event.SECOND_LEVEL_CACHE_HIT),
    (_T_SECOND_MEMORY, Event.SECOND_LEVEL_MEMORY_ACCESS),
    (_T_IFETCH_MISS, Event.IFETCH_MISS),
    (_T_READ_MISS, Event.READ_MISS),
    (_T_WRITE_MISS, Event.WRITE_MISS),
    (_T_WRITE_HIT_CLEAN, Event.WRITE_HIT_CLEAN_BLOCK),
    (_T_WRITE_READ_FILLED, Event.WRITE_TO_READ_FILLED_BLOCK),
)

#: Minimum segment length (in references) worth the vectorized
#: classifier's setup cost; shorter segments run the per-reference
#: loop against the same columns.
_COLUMN_MIN_REFS = 128

# Byte patterns for C-speed kind tallies over a flat chunk's kind
# slice (``array('q')``, so 8 bytes per element, native byte order).
# Kinds are 0/1/2 by protocol, so the only nonzero bytes in the slice
# are aligned kind bytes: a zero element is exactly one aligned 8-zero
# run (maximal runs of 7+8k or 8k zero bytes yield k greedy matches),
# and a WRITE match can only start at an aligned 2-byte.  Both counts
# are therefore exact.
_KIND_ZERO_BYTES = bytes(8)
_KIND_WRITE_BYTES = (2).to_bytes(8, sys.byteorder)


def _make_flusher(strategy, cost_scale=1):
    if strategy == "tag-checked":
        return TagCheckedFlush(
            loop_cycles=2 * cost_scale,
            check_cycles=1 * cost_scale,
            flush_cycles=10 * cost_scale,
        )
    if strategy == "tagless":
        return TaglessFlush(op_cycles=12 * cost_scale)
    raise ValueError(f"unknown flush strategy {strategy!r}")


class SpurMachine:
    """One SPUR processor board plus memory, swap, and Sprite VM.

    Parameters
    ----------
    config:
        :class:`repro.machine.config.MachineConfig`.
    space_map:
        The workload's :class:`repro.vm.segments.AddressSpaceMap`.
    counters:
        Optional pre-built counter bank (defaults to the omniscient
        mode; pass a moded bank to reproduce the hardware's
        sixteen-at-a-time limitation).
    bus:
        Optional shared :class:`SnoopyBus` for multiprocessor setups;
        a private bus is created when omitted.
    column_store:
        Optional pre-built :class:`~repro.cache.columns.ColumnStore`
        the cache adopts — how a fleet member's tag state lands inside
        the fleet's stacked 2-D buffers.
    """

    def __init__(self, config, space_map, counters=None, bus=None,
                 name=None, page_table=None, vm=None, swap=None,
                 column_store=None):
        self.config = config
        self.name = name or config.name
        self.counters = counters or PerformanceCounters()
        self.fault_timing = config.fault_timing
        self.page_bytes = config.page_bytes
        self.page_bits = config.page_geometry.page_bits
        self.zero_fill_cycles = config.zero_fill_cycles

        self.cache = VirtualCache(
            config.cache, config.memory_timing,
            name=f"{self.name}.cache", columns=column_store,
        )
        self.cache.counters = self.counters
        self.bus = bus or SnoopyBus(name=f"{self.name}.bus",
                                    counters=self.counters)
        self.bus.attach(self.cache)
        self.flusher = _make_flusher(
            config.flush_strategy, config.flush_cost_scale
        )

        # Page table, swap, and VM may be shared across processors of
        # an SmpSystem; a standalone machine builds its own.
        if page_table is None:
            layout = PageTableLayout(
                page_bytes=config.page_bytes,
                pte_base=config.pte_base,
                second_level_base=config.second_level_base,
                user_limit=config.user_limit,
            )
            page_table = PageTable(layout)
        self.page_table = page_table
        self.translator = InCacheTranslator(
            self.page_table, self.cache, counters=self.counters
        )

        self.swap = swap or SwapDevice(
            io_cycles=config.fault_timing.page_io
        )
        if vm is None:
            vm = VirtualMemorySystem(
                self.page_table,
                space_map,
                self.swap,
                num_frames=config.num_frames,
                wired_frames=config.wired_frames,
                low_water=config.low_water,
                high_water=config.high_water,
                daemon_kind=config.daemon_kind,
                inactive_fraction=config.inactive_fraction,
            )
            vm.attach_machine(self)
        self.vm = vm

        self.dirty_policy = make_dirty_policy(config.dirty_policy)
        self.reference_policy = make_reference_policy(
            config.reference_policy
        )

        self.cycles = 0
        self.references = 0
        #: Times the vectorized classifier abandoned a stale
        #: classification snapshot (diagnostic; see
        #: ``_run_segment_columns``).  Not a counter event — both hot
        #: paths stay bit-identical — but surfaced on RunResult and in
        #: trace records so conflict-heavy traces are diagnosable.
        self.scalar_bailouts = 0
        self.reference_mix = ReferenceMix()
        #: Set by SmpSystem when this processor joins a shared-memory
        #: system; page flushes then cover every cache in the domain.
        self.system = None

        # Batched-resolver prebinds: structural constants of the page
        # table layout and translator timing (both frozen), plus bound
        # dict lookups for side-effect-free PTE / page-record probes.
        # The dicts themselves are created once and never rebound.
        layout = self.page_table.layout
        self._pte_base = layout.pte_base
        self._second_level_base = layout.second_level_base
        self._pte_peek = self.page_table.peek
        self._page_peek = self.vm.pages.get
        self._pte_check_cycles = self.translator.timing.pte_check_cycles
        self._second_check_cycles = (
            self.translator.timing.second_level_check_cycles
        )
        #: Static policy traits (the policy objects are stateless and
        #: never swapped after construction).
        self._maintains_bits = self.reference_policy.maintains_bits
        self._dirty_tracks_pte = self.dirty_policy.cached_dirty_tracks_pte
        #: Whether the vectorized segment classifier is usable; tests
        #: force the per-reference fallback by clearing this.
        self._use_numpy = (
            _np is not None and self.cache.columns.views is not None
        )

    # -- coherence-domain operations ---------------------------------------

    def caches(self):
        """All caches page-granularity operations must cover."""
        if self.system is not None:
            return self.system.caches()
        return (self.cache,)

    def flush_page(self, page_vaddr):
        """Flush one page from every cache in the coherence domain.

        This is the primitive behind the FLUSH dirty-bit alternative,
        the REF policy's flush-on-clear, and page eviction.  On a
        multiprocessor it must run on *all* caches — the cost the
        paper cites when arguing the REF policy gets worse with more
        processors.  Returns total cycles.
        """
        cycles = 0
        lines_checked = 0
        write_backs = 0
        for cache in self.caches():
            result = self.flusher.flush_page(
                cache, page_vaddr, self.page_bytes
            )
            lines_checked += result.lines_checked
            write_backs += result.write_backs
            cycles += result.cycles
        self.counters.increment(Event.FLUSH_OPERATION, lines_checked)
        self.counters.increment(Event.FLUSH_WRITE_BACK, write_backs)
        return cycles

    # -- the hot loop ---------------------------------------------------

    def run(self, accesses):
        """Simulate a stream of ``(kind, vaddr)`` references.

        ``kind`` is an ``int(AccessKind)``; workload generators yield
        plain ints to keep this loop allocation-free.  Returns the
        number of references processed.
        """
        cache = self.cache
        valid = cache.valid
        tags = cache.tags
        block_dirty = cache.block_dirty
        page_dirty = cache.page_dirty
        prot = cache.prot
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        tag_shift = cache.tag_shift
        slow_write_hit = self._slow_write_hit
        miss = self._miss

        interval = self.config.daemon_poll_refs
        poll = self.vm.daemon.poll if interval else None
        # Countdown to the next daemon poll: the schedule polls before
        # every ``interval``-th reference of the call, for any positive
        # interval.  With polling disabled the countdown starts at
        # (float) infinity so the zero test below never fires and the
        # loop stays branch-light.
        until_poll = interval if poll is not None else float("inf")

        cycles = 0
        kind_counts = [0, 0, 0]
        processed = 0
        for kind, vaddr in accesses:
            processed += 1
            until_poll -= 1
            if not until_poll:
                cycles += poll()
                until_poll = interval
            kind_counts[kind] += 1
            index = (vaddr >> block_bits) & index_mask
            if valid[index] and tags[index] == (vaddr >> tag_shift):
                if kind != _WRITE:
                    cycles += 1
                    continue
                if (
                    block_dirty[index]
                    and page_dirty[index]
                    and prot[index] == _RW
                ):
                    cycles += 1
                    continue
                cycles += 1 + slow_write_hit(index, vaddr)
                continue
            cycles += 1 + miss(kind, vaddr)

        self.cycles += cycles
        self.references += processed
        mix = ReferenceMix(
            ifetches=kind_counts[0],
            reads=kind_counts[1],
            writes=kind_counts[2],
        )
        mix.flush_to_counters(self.counters)
        self.reference_mix.add(mix.ifetches, mix.reads, mix.writes)
        return processed

    def run_chunks(self, chunks):
        """Simulate a stream of flat reference chunks.

        ``chunks`` yields ``array('q')`` buffers of interleaved
        ``kind, vaddr`` pairs (see
        :meth:`repro.workloads.base.WorkloadInstance.access_chunks`).
        Bit-identical to feeding the same references through
        :meth:`run`, but several times faster: each chunk is cut into
        poll-free segments (computed arithmetically, so any positive
        ``daemon_poll_refs`` works) and every segment goes through
        :meth:`_run_segment` — a vectorized classify-then-resolve pass
        against the cache's flat columns when numpy is available, a
        single-compare per-reference loop otherwise.  Kind tallies
        come from byte-pattern counts over the chunk's kind slice
        (memchr speed, no per-element boxing), the per-reference cycle
        charge is folded into one addition per call, and miss-path
        bookkeeping is deferred into a per-call tally flushed by
        :meth:`_flush_tally`.  Returns the number of references
        processed.
        """
        run_segment = self._run_segment
        interval = self.config.daemon_poll_refs
        poll = self.vm.daemon.poll if interval else None
        tally = array("q", _TALLY_ZEROS)

        cycles = 0
        extra = 0
        ifetches = 0
        reads = 0
        writes = 0
        processed = 0
        try:
            for chunk in chunks:
                pairs = len(chunk) >> 1
                if not pairs:
                    continue
                kind_bytes = chunk[0::2].tobytes()
                chunk_ifetches = kind_bytes.count(_KIND_ZERO_BYTES)
                chunk_writes = kind_bytes.count(_KIND_WRITE_BYTES)
                ifetches += chunk_ifetches
                writes += chunk_writes
                reads += pairs - chunk_ifetches - chunk_writes
                # Kind-uniform read or ifetch chunks let the fallback
                # segment loop carry vaddrs only (kind held constant);
                # chunks containing writes stay mixed because write
                # hits need the settled-dirty test.
                if chunk_writes:
                    uniform = -1
                elif chunk_ifetches == 0:
                    uniform = 1
                elif chunk_ifetches == pairs:
                    uniform = 0
                else:
                    uniform = -1
                start = 0
                while start < pairs:
                    if poll is None:
                        stop = pairs
                    else:
                        # References left before the next poll
                        # boundary: the legacy loop polls before
                        # handling every ``interval``-th reference of
                        # the call, so ``processed % interval ==
                        # interval - 1`` means the next reference
                        # polls first.
                        stop = start + interval - 1 - (
                            processed % interval
                        )
                        if stop > pairs:
                            stop = pairs
                    if stop > start:
                        extra += run_segment(
                            chunk, start, stop, tally, uniform
                        )
                        processed += stop - start
                        start = stop
                    if start < pairs:
                        # The next reference lands on the poll
                        # boundary: poll first, then process it as a
                        # one-reference segment.
                        cycles += poll()
                        extra += run_segment(
                            chunk, start, start + 1, tally, uniform
                        )
                        processed += 1
                        start += 1
        finally:
            # Deferred bookkeeping must land even when a slow path
            # raises (protection faults propagate to the caller with
            # the same counter state the legacy loop would leave).
            self._flush_tally(tally)

        # Deferred accounting: every reference costs its base cycle
        # (hence ``+ processed``); slow paths and the resolver added
        # theirs to ``extra``, polls to ``cycles``.
        self.cycles += cycles + extra + processed
        self.references += processed
        mix = ReferenceMix(
            ifetches=ifetches, reads=reads, writes=writes
        )
        mix.flush_to_counters(self.counters)
        self.reference_mix.add(mix.ifetches, mix.reads, mix.writes)
        return processed

    def _run_segment(self, chunk, start, end, tally, uniform):
        """Process the poll-free segment ``chunk[start:end)`` (pair
        indices), returning cycles beyond the base charge.

        Dispatches to the vectorized classifier when the cache's numpy
        column views exist and the segment is long enough to amortize
        the setup; otherwise runs the per-reference fallback.
        """
        if self._use_numpy and end - start >= _COLUMN_MIN_REFS:
            return self._run_segment_columns(chunk, start, end, tally)
        return self._run_refs(chunk, start, end, tally, uniform)

    def _run_refs(self, chunk, start, end, tally, uniform):
        """Per-reference segment loop over ``chunk[start:end)``.

        The structural workhorse behind :meth:`_run_segment`: used
        when numpy is unavailable, for short segments, and to finish a
        vectorized segment whose upfront classification went stale.
        ``uniform`` >= 0 pins every reference's kind (a kind-uniform
        read/ifetch chunk), enabling a vaddr-only loop.  Returns extra
        cycles beyond the base charge.
        """
        cache = self.cache
        line_block = cache.line_block
        block_dirty = cache.block_dirty
        page_dirty = cache.page_dirty
        prot = cache.prot
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        write_hit = self._resolve_write_hit
        resolve = self._resolve_miss
        extra = 0
        lo = start << 1
        hi = end << 1
        if uniform >= 0:
            for vaddr in chunk[lo + 1:hi:2]:
                block = vaddr >> block_bits
                if line_block[block & index_mask] != block:
                    extra += resolve(uniform, vaddr, tally)
            return extra
        it = iter(chunk[lo:hi])
        for kind, vaddr in zip(it, it):
            block = vaddr >> block_bits
            if line_block[block & index_mask] == block:
                if kind != 2:
                    continue
                index = block & index_mask
                if (
                    block_dirty[index]
                    and page_dirty[index]
                    and prot[index] == _RW
                ):
                    continue
                extra += write_hit(index, vaddr, tally)
                continue
            extra += resolve(kind, vaddr, tally)
        return extra

    def _run_segment_columns(self, chunk, start, end, tally):
        """Vectorized segment pass against the cache's flat columns.

        One numpy index/compare sweep classifies every reference in
        the segment: hits on settled lines are *events-free* and cost
        nothing beyond the base cycle, so only the flagged positions
        (misses, and write hits whose dirty state is unsettled) are
        walked in order and resolved individually.

        Resolutions mutate the columns, so a position classified
        clean in the upfront sweep may have gone stale (its line
        evicted, its settled write unsettled) by the time it is
        reached.  After the first mutation, every skipped gap is
        re-verified against the live views (:meth:`_first_stale`,
        zero-copy over the same buffers); if anything changed, the
        rest of the segment finishes in the per-reference loop —
        exact, and bounded linear even on pathological conflict
        streams.  Returns extra cycles beyond the base charge.
        """
        views = self.cache.columns.views
        flat = _np.frombuffer(chunk, dtype=_np.int64)
        seg = flat[start << 1:end << 1]
        kinds = seg[0::2]
        vaddrs = seg[1::2]
        cache = self.cache
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        blocks = vaddrs >> block_bits
        idx = blocks & index_mask
        miss = _np.not_equal(views.line_block[idx], blocks)
        is_write = _np.equal(kinds, _WRITE)
        if bool(is_write.any()):
            unsettled = (
                is_write
                & ~miss
                & ~(
                    (views.block_dirty[idx] != 0)
                    & (views.page_dirty[idx] != 0)
                    & (views.prot[idx] == _RW)
                )
            )
            events = _np.flatnonzero(miss | unsettled)
        else:
            events = _np.flatnonzero(miss)
        if not events.size:
            return 0
        return self._walk_events(
            chunk, start, end, tally, blocks, idx, is_write,
            events.tolist(),
        )

    def _walk_events(self, chunk, start, end, tally, blocks, idx,
                     is_write, positions):
        """Resolve the flagged positions of a classified segment.

        The resolution half of :meth:`_run_segment_columns`, split out
        so the lockstep fleet (:mod:`repro.fleet`) can hand a member
        the event positions its 2-D classify already found instead of
        re-classifying the chunk.  ``blocks``/``idx``/``is_write`` are
        the classify pass's per-position arrays (1-D, covering
        ``[start, end)``); staleness handling is unchanged —
        :meth:`_first_stale` re-verifies skipped gaps against the live
        views once anything mutates.  Returns extra cycles beyond the
        base charge.
        """
        cache = self.cache
        line_block = cache.line_block
        block_dirty = cache.block_dirty
        page_dirty = cache.page_dirty
        prot = cache.prot
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        write_hit = self._resolve_write_hit
        resolve = self._resolve_miss
        run_refs = self._run_refs
        first_stale = self._first_stale
        base = start << 1
        extra = 0
        mutated = False
        prev = 0
        for p in positions:
            if mutated and p > prev:
                stale = first_stale(blocks, idx, is_write, prev, p)
                if stale >= 0:
                    tally[_T_SCALAR_BAILOUT] += 1
                    return extra + run_refs(
                        chunk, start + stale, end, tally, -1
                    )
            offset = base + (p << 1)
            kind = chunk[offset]
            vaddr = chunk[offset + 1]
            block = vaddr >> block_bits
            index = block & index_mask
            if line_block[index] == block:
                # Classified as an unsettled write hit; an earlier
                # resolution may have settled it, so re-test live.
                if kind == 2 and not (
                    block_dirty[index]
                    and page_dirty[index]
                    and prot[index] == _RW
                ):
                    extra += write_hit(index, vaddr, tally)
                    mutated = True
            else:
                extra += resolve(kind, vaddr, tally)
                mutated = True
            prev = p + 1
        if mutated and prev < end - start:
            stale = first_stale(blocks, idx, is_write, prev, end - start)
            if stale >= 0:
                tally[_T_SCALAR_BAILOUT] += 1
                return extra + run_refs(
                    chunk, start + stale, end, tally, -1
                )
        return extra

    def _first_stale(self, blocks, idx, is_write, lo, hi):
        """First position in ``[lo, hi)`` whose clean classification
        no longer holds against the live columns, or -1.

        Called between events while walking a vectorized segment: the
        slow paths mutate the columns, so references classified clean
        in the upfront sweep are re-verified (one vectorized pass over
        the gap, against the same shared buffers) before being
        skipped.
        """
        views = self.cache.columns.views
        gap_idx = idx[lo:hi]
        gap_miss = _np.not_equal(
            views.line_block[gap_idx], blocks[lo:hi]
        )
        bad = gap_miss | (
            is_write[lo:hi]
            & ~gap_miss
            & ~(
                (views.block_dirty[gap_idx] != 0)
                & (views.page_dirty[gap_idx] != 0)
                & (views.prot[gap_idx] == _RW)
            )
        )
        flagged = _np.flatnonzero(bad)
        if flagged.size:
            return lo + int(flagged[0])
        return -1

    def _resolve_miss(self, kind, vaddr, tally):
        """Batched-path twin of :meth:`_miss` with deferred counters.

        Commits only when the miss is provably free of structural
        events: PTE present and valid, reference bit settled, and (for
        writes) page record present, region writable, and the dirty
        policy's write-miss hook a no-op
        (:meth:`~repro.policies.dirty.DirtyBitPolicy.
        write_miss_settled`).  Everything else — page faults,
        reference faults, dirty-bit work, protection faults,
        first-touch PTE/page creation — delegates to the legacy
        :meth:`_miss` *before* any state or tally is touched, so those
        paths stay bit-identical, exceptions included.

        The commit path replays the in-cache PTE walk of
        :class:`~repro.translation.incache.InCacheTranslator` as plain
        arithmetic against the ``line_block`` column; PTE blocks are
        installed through :meth:`~repro.cache.cache.VirtualCache.
        fill_fast` and the data block's install is the same column
        sequence inlined (this method is a sanctioned tag-array
        writer), recording every counter/stats/bus increment in
        ``tally`` slots.  Returns cycles.
        """
        vpn = vaddr >> self.page_bits
        pte = self._pte_peek(vpn)
        if pte is None or not pte.valid:
            return self._miss(kind, vaddr)
        if not pte.referenced and self._maintains_bits:
            return self._miss(kind, vaddr)
        is_write = kind == 2
        if is_write:
            page = self._page_peek(vpn)
            if page is None or not page.region.writable:
                return self._miss(kind, vaddr)
            if not self.dirty_policy.write_miss_settled(pte):
                return self._miss(kind, vaddr)

        cache = self.cache
        line_block = cache.line_block
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        fill_fast = cache.fill_fast
        if kind == 0:
            tally[_T_IFETCH_MISS] += 1
        elif kind == 1:
            tally[_T_READ_MISS] += 1
        else:
            tally[_T_WRITE_MISS] += 1
        cycles = self._pte_check_cycles
        pte_vaddr = self._pte_base + vpn * PTE_BYTES
        block = pte_vaddr >> block_bits
        if line_block[block & index_mask] == block:
            tally[_T_PTE_HIT] += 1
        else:
            tally[_T_PTE_MISS] += 1
            cycles += self._second_check_cycles
            second_vaddr = self._second_level_base + (
                pte_vaddr >> self.page_bits
            ) * PTE_BYTES
            sblock = second_vaddr >> block_bits
            if line_block[sblock & index_mask] == sblock:
                tally[_T_SECOND_HIT] += 1
            else:
                tally[_T_SECOND_MEMORY] += 1
                cycles += fill_fast(
                    second_vaddr, _PROT_KERNEL, True, False, True,
                    tally,
                )
            cycles += fill_fast(
                pte_vaddr, _PROT_KERNEL, True, False, True, tally
            )
        # Data-block install: fill_fast's exact column sequence,
        # inlined to reuse this frame's locals on the per-miss hot
        # path.  fill_page_dirty is pte.is_modified() exactly when the
        # policy declares cached_dirty_tracks_pte (the WRITE policy is
        # the one unconditional-True exception).
        block = vaddr >> block_bits
        index = block & index_mask
        transfer = cache.block_transfer_cycles
        bus = cache.bus
        if cache.valid[index]:
            if cache.block_dirty[index]:
                cycles += transfer
                tally[TALLY_WRITE_BACKS] += 1
                if cache.has_peers:
                    bus.broadcast(cache, _BUS_WRITE_BACK,
                                  cache.line_vaddr[index])
                elif bus is not None:
                    tally[TALLY_BUS] += 1
            tally[TALLY_EVICTIONS] += 1
        cache.valid[index] = 1
        cache.tags[index] = vaddr >> cache.tag_shift
        cache.line_vaddr[index] = vaddr & cache.block_offset_mask
        line_block[index] = block
        cache.prot[index] = pte.protection
        cache.page_dirty[index] = (
            pte.is_modified() if self._dirty_tracks_pte else True
        )
        cache.block_dirty[index] = is_write
        cache.filled_by_read[index] = not is_write
        cache.holds_pte[index] = 0
        if is_write:
            cache.state[index] = _OWNED_EXCLUSIVE
            bus_op = _BUS_READ_OWNED
        else:
            cache.state[index] = _UNOWNED
            bus_op = _BUS_READ
        if cache.has_peers:
            bus.broadcast(cache, bus_op, vaddr)
        elif bus is not None:
            tally[TALLY_BUS] += 1
        cycles += transfer
        tally[TALLY_FILLS] += 1
        return cycles

    def _resolve_write_hit(self, index, vaddr, tally):
        """Batched-path twin of :meth:`_slow_write_hit`.

        Commits only when the hit is provably free of policy work: the
        PTE and page record already exist (so no first-touch creation),
        the region is writable, and the dirty policy's write-hit hook
        is a zero-cycle no-op
        (:meth:`~repro.policies.dirty.DirtyBitPolicy.
        write_hit_settled`).  Everything else — protection faults,
        dirty-bit faults, cached-copy refreshes, page flushes —
        delegates to the legacy :meth:`_slow_write_hit` *before* any
        state or tally is touched.

        The commit path mirrors the legacy bookkeeping exactly: the
        clean-block and read-filled-block counters are deferred into
        tally slots, the block-dirty bit is set, and the Berkeley
        write-hit transition is applied (the two common cases inline,
        the rest through :meth:`~repro.cache.cache.VirtualCache.
        acquire_ownership_fast`; the settled handler cannot have moved
        the block, so no re-probe is needed).  The slow path's
        region-writable recheck is covered by the predicate's
        contract — settled implies the write cannot protection-fault —
        so only the record-existence peeks remain.  Returns cycles
        (always 0: a settled write hit is free).
        """
        cache = self.cache
        if not self.dirty_policy.write_hit_settled(cache, index):
            return self._slow_write_hit(index, vaddr)
        vpn = vaddr >> self.page_bits
        if self._pte_peek(vpn) is None or self._page_peek(vpn) is None:
            return self._slow_write_hit(index, vaddr)
        if not cache.block_dirty[index]:
            tally[_T_WRITE_HIT_CLEAN] += 1
            if cache.filled_by_read[index]:
                tally[_T_WRITE_READ_FILLED] += 1
                cache.filled_by_read[index] = 0
            cache.block_dirty[index] = 1
        state = cache.state[index]
        if state is not _OWNED_EXCLUSIVE:
            if state is _UNOWNED:
                cache.state[index] = _OWNED_EXCLUSIVE
                if cache.has_peers:
                    cache.bus.broadcast(cache, _BUS_FOR_OWNERSHIP,
                                        cache.line_vaddr[index])
                elif cache.bus is not None:
                    tally[TALLY_BUS] += 1
            else:
                cache.acquire_ownership_fast(index, tally)
        return 0

    def _flush_tally(self, tally):
        """Apply one chunk run's deferred tallies to the live books.

        Exact regardless of where the run stopped: counter increments
        are modular sums, stats are plain sums, and nothing samples
        the books mid-call (the observer and sanitizer both cut
        between calls).
        """
        increment = self.counters.increment
        stats = self.cache.stats
        fills = tally[TALLY_FILLS]
        if fills:
            stats["fills"] += fills
        evictions = tally[TALLY_EVICTIONS]
        if evictions:
            stats["evictions"] += evictions
        write_backs = tally[TALLY_WRITE_BACKS]
        if write_backs:
            stats["write_backs"] += write_backs
            increment(Event.WRITE_BACK, write_backs)
        bus_count = tally[TALLY_BUS]
        if bus_count:
            self.cache.bus.transactions += bus_count
            increment(Event.BUS_TRANSACTION, bus_count)
        # Derived events (see the tally-slot table): 1:1 with tallied
        # slots on the fast path, so they are summed here instead of
        # paying per-reference tally ops.
        miss_sum = (tally[_T_IFETCH_MISS] + tally[_T_READ_MISS]
                    + tally[_T_WRITE_MISS])
        if miss_sum:
            increment(Event.TRANSLATION, miss_sum)
            increment(Event.BLOCK_FILL, miss_sum)
        pte_misses = tally[_T_PTE_MISS]
        if pte_misses:
            increment(Event.SECOND_LEVEL_LOOKUP, pte_misses)
        write_misses = tally[_T_WRITE_MISS]
        if write_misses:
            increment(Event.WRITE_MISS_FILL, write_misses)
        bailouts = tally[_T_SCALAR_BAILOUT]
        if bailouts:
            self.scalar_bailouts += bailouts
        for slot, event in _TALLY_EVENTS:
            count = tally[slot]
            if count:
                increment(event, count)

    # -- slow paths ------------------------------------------------------

    def _slow_write_hit(self, index, vaddr):
        """A write hit whose dirty-bit state is not settled."""
        cache = self.cache
        vpn = vaddr >> self.page_bits
        pte = self.page_table.entry(vpn)
        page = self.vm.page(vpn)
        if not page.region.writable:
            raise ProtectionFault(vaddr, "write to read-only region")

        if not cache.block_dirty[index]:
            self.counters.increment(Event.WRITE_HIT_CLEAN_BLOCK)
        if cache.filled_by_read[index] and not cache.block_dirty[index]:
            # First modification of a block that entered on a read:
            # one of the paper's N_w-hit events (counted per block).
            self.counters.increment(Event.WRITE_TO_READ_FILLED_BLOCK)
            cache.filled_by_read[index] = False

        cycles = self.dirty_policy.handle_write_hit(
            self, index, vaddr, pte, page
        )

        # The policy may have flushed and refilled the block (FLUSH);
        # find where the written block lives now and mark it dirty.
        if cache.valid[index] and cache.tags[index] == (
            vaddr >> cache.tag_shift
        ):
            target = index
        else:
            target = cache.probe(vaddr)
        if target >= 0:
            cache.block_dirty[target] = True
            cache.acquire_ownership(target)
        return cycles

    def _miss(self, kind, vaddr):
        """Reference missed in the cache: translate, maybe fault, fill."""
        counters = self.counters
        if kind == 0:
            counters.increment(Event.IFETCH_MISS)
        elif kind == 1:
            counters.increment(Event.READ_MISS)
        else:
            counters.increment(Event.WRITE_MISS)

        result = self.translator.translate(vaddr)
        cycles = result.cycles
        pte = result.pte

        vpn = vaddr >> self.page_bits
        if not pte.valid:
            cycles += self.vm.handle_page_fault(vpn)

        cycles += self.reference_policy.on_cache_miss(self, pte)

        is_write = kind == _WRITE
        if is_write:
            page = self.vm.page(vpn)
            if not page.region.writable:
                raise ProtectionFault(vaddr, "write to read-only region")
            counters.increment(Event.WRITE_MISS_FILL)
            cycles += self.dirty_policy.on_write_miss(self, pte, page)

        _, fill_cycles = self.cache.fill(
            vaddr,
            pte.protection,
            page_dirty=self.dirty_policy.fill_page_dirty(pte),
            by_write=is_write,
        )
        counters.increment(Event.BLOCK_FILL)
        return cycles + fill_cycles

    # -- results -----------------------------------------------------------

    @property
    def elapsed_seconds(self):
        """Simulated wall-clock time at the prototype's cycle time."""
        return self.cycles * SPUR_CYCLE_TIME_SECONDS

    def snapshot(self):
        """Counter snapshot (delta arithmetic supported)."""
        return self.counters.snapshot()

    def observe_state(self):
        """Cumulative ``(references, cycles, counter snapshot)``.

        The sampling hook the observability layer polls at epoch
        boundaries; reads existing state only, never mutates.
        """
        return self.references, self.cycles, self.counters.snapshot()

    def observation_alignment(self):
        """Reference alignment an observer's epochs must respect.

        ``run``/``run_chunks`` restart the page-daemon poll schedule
        per call, so an observer that re-segments the stream must cut
        only at multiples of the poll interval to replay the exact
        unobserved schedule.  With polling disabled any boundary works.
        """
        return self.config.daemon_poll_refs or 1

    def __repr__(self):
        return (
            f"SpurMachine({self.name!r}, "
            f"dirty={self.dirty_policy.name}, "
            f"ref={self.reference_policy.name}, "
            f"{self.references} refs, {self.cycles} cycles)"
        )
