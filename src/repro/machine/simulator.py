"""The SPUR machine: cache + translation + VM + policies + counters.

The reference-processing loop in :meth:`SpurMachine.run` is the
performance-critical core of the whole reproduction — every simulated
memory reference passes through it.  It therefore reads the cache's
parallel tag arrays directly (they are public for exactly this
purpose) and keeps its bookkeeping in local variables, falling into
method calls only on the rare paths: misses, write hits needing
dirty-bit work, faults.

Cycle model (Table 2.1, Section 3.2):

* cache hit — 1 cycle;
* cache miss — 1 cycle plus translation (3 cycles if the PTE is
  cached, block fetches otherwise) plus the block transfer;
* dirty/reference faults, flushes, page faults, paging I/O — charged
  by the policy and VM code via :class:`repro.common.params.
  FaultTiming`.
"""

import sys

from repro.common.errors import ProtectionFault
from repro.common.types import AccessKind, Protection
from repro.common.units import SPUR_CYCLE_TIME_SECONDS
from repro.counters.counters import PerformanceCounters
from repro.counters.events import Event
from repro.cache.bus import SnoopyBus
from repro.cache.cache import VirtualCache
from repro.cache.flush import TagCheckedFlush, TaglessFlush
from repro.machine.cpu import ReferenceMix
from repro.policies.dirty import make_dirty_policy
from repro.policies.reference import make_reference_policy
from repro.translation.incache import InCacheTranslator
from repro.translation.pagetable import PageTable, PageTableLayout
from repro.vm.swap import SwapDevice
from repro.vm.system import VirtualMemorySystem

_WRITE = int(AccessKind.WRITE)
_RW = int(Protection.READ_WRITE)

# Byte patterns for C-speed kind tallies over a flat chunk's kind
# slice (``array('q')``, so 8 bytes per element, native byte order).
# Kinds are 0/1/2 by protocol, so the only nonzero bytes in the slice
# are aligned kind bytes: a zero element is exactly one aligned 8-zero
# run (maximal runs of 7+8k or 8k zero bytes yield k greedy matches),
# and a WRITE match can only start at an aligned 2-byte.  Both counts
# are therefore exact.
_KIND_ZERO_BYTES = bytes(8)
_KIND_WRITE_BYTES = (2).to_bytes(8, sys.byteorder)


def _make_flusher(strategy, cost_scale=1):
    if strategy == "tag-checked":
        return TagCheckedFlush(
            loop_cycles=2 * cost_scale,
            check_cycles=1 * cost_scale,
            flush_cycles=10 * cost_scale,
        )
    if strategy == "tagless":
        return TaglessFlush(op_cycles=12 * cost_scale)
    raise ValueError(f"unknown flush strategy {strategy!r}")


class SpurMachine:
    """One SPUR processor board plus memory, swap, and Sprite VM.

    Parameters
    ----------
    config:
        :class:`repro.machine.config.MachineConfig`.
    space_map:
        The workload's :class:`repro.vm.segments.AddressSpaceMap`.
    counters:
        Optional pre-built counter bank (defaults to the omniscient
        mode; pass a moded bank to reproduce the hardware's
        sixteen-at-a-time limitation).
    bus:
        Optional shared :class:`SnoopyBus` for multiprocessor setups;
        a private bus is created when omitted.
    """

    def __init__(self, config, space_map, counters=None, bus=None,
                 name=None, page_table=None, vm=None, swap=None):
        self.config = config
        self.name = name or config.name
        self.counters = counters or PerformanceCounters()
        self.fault_timing = config.fault_timing
        self.page_bytes = config.page_bytes
        self.page_bits = config.page_geometry.page_bits
        self.zero_fill_cycles = config.zero_fill_cycles

        self.cache = VirtualCache(
            config.cache, config.memory_timing, name=f"{self.name}.cache"
        )
        self.cache.counters = self.counters
        self.bus = bus or SnoopyBus(name=f"{self.name}.bus",
                                    counters=self.counters)
        self.bus.attach(self.cache)
        self.flusher = _make_flusher(
            config.flush_strategy, config.flush_cost_scale
        )

        # Page table, swap, and VM may be shared across processors of
        # an SmpSystem; a standalone machine builds its own.
        if page_table is None:
            layout = PageTableLayout(
                page_bytes=config.page_bytes,
                pte_base=config.pte_base,
                second_level_base=config.second_level_base,
                user_limit=config.user_limit,
            )
            page_table = PageTable(layout)
        self.page_table = page_table
        self.translator = InCacheTranslator(
            self.page_table, self.cache, counters=self.counters
        )

        self.swap = swap or SwapDevice(
            io_cycles=config.fault_timing.page_io
        )
        if vm is None:
            vm = VirtualMemorySystem(
                self.page_table,
                space_map,
                self.swap,
                num_frames=config.num_frames,
                wired_frames=config.wired_frames,
                low_water=config.low_water,
                high_water=config.high_water,
                daemon_kind=config.daemon_kind,
                inactive_fraction=config.inactive_fraction,
            )
            vm.attach_machine(self)
        self.vm = vm

        self.dirty_policy = make_dirty_policy(config.dirty_policy)
        self.reference_policy = make_reference_policy(
            config.reference_policy
        )

        self.cycles = 0
        self.references = 0
        self.reference_mix = ReferenceMix()
        #: Set by SmpSystem when this processor joins a shared-memory
        #: system; page flushes then cover every cache in the domain.
        self.system = None

    # -- coherence-domain operations ---------------------------------------

    def caches(self):
        """All caches page-granularity operations must cover."""
        if self.system is not None:
            return self.system.caches()
        return (self.cache,)

    def flush_page(self, page_vaddr):
        """Flush one page from every cache in the coherence domain.

        This is the primitive behind the FLUSH dirty-bit alternative,
        the REF policy's flush-on-clear, and page eviction.  On a
        multiprocessor it must run on *all* caches — the cost the
        paper cites when arguing the REF policy gets worse with more
        processors.  Returns total cycles.
        """
        cycles = 0
        lines_checked = 0
        write_backs = 0
        for cache in self.caches():
            result = self.flusher.flush_page(
                cache, page_vaddr, self.page_bytes
            )
            lines_checked += result.lines_checked
            write_backs += result.write_backs
            cycles += result.cycles
        self.counters.increment(Event.FLUSH_OPERATION, lines_checked)
        self.counters.increment(Event.FLUSH_WRITE_BACK, write_backs)
        return cycles

    # -- the hot loop ---------------------------------------------------

    def run(self, accesses):
        """Simulate a stream of ``(kind, vaddr)`` references.

        ``kind`` is an ``int(AccessKind)``; workload generators yield
        plain ints to keep this loop allocation-free.  Returns the
        number of references processed.
        """
        cache = self.cache
        valid = cache.valid
        tags = cache.tags
        block_dirty = cache.block_dirty
        page_dirty = cache.page_dirty
        prot = cache.prot
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        tag_shift = cache.tag_shift
        slow_write_hit = self._slow_write_hit
        miss = self._miss

        poll_mask = self.config.daemon_poll_refs - 1
        poll = self.vm.daemon.poll if poll_mask >= 0 else None

        cycles = 0
        kind_counts = [0, 0, 0]
        processed = 0
        for kind, vaddr in accesses:
            processed += 1
            if not processed & poll_mask:
                cycles += poll()
            kind_counts[kind] += 1
            index = (vaddr >> block_bits) & index_mask
            if valid[index] and tags[index] == (vaddr >> tag_shift):
                if kind != _WRITE:
                    cycles += 1
                    continue
                if (
                    block_dirty[index]
                    and page_dirty[index]
                    and prot[index] == _RW
                ):
                    cycles += 1
                    continue
                cycles += 1 + slow_write_hit(index, vaddr)
                continue
            cycles += 1 + miss(kind, vaddr)

        self.cycles += cycles
        self.references += processed
        mix = ReferenceMix(
            ifetches=kind_counts[0],
            reads=kind_counts[1],
            writes=kind_counts[2],
        )
        mix.flush_to_counters(self.counters)
        self.reference_mix.add(mix.ifetches, mix.reads, mix.writes)
        return processed

    def run_chunks(self, chunks):
        """Simulate a stream of flat reference chunks.

        ``chunks`` yields ``array('q')`` buffers of interleaved
        ``kind, vaddr`` pairs (see
        :meth:`repro.workloads.base.WorkloadInstance.access_chunks`).
        Bit-identical to feeding the same references through
        :meth:`run`, but several times faster: the hit test is a
        single compare against the cache's ``line_block`` array, kind
        tallies come from byte-pattern counts over the chunk's kind
        slice (memchr speed, no per-element boxing), kind-uniform
        chunks run a vaddr-only inner loop with the kind held
        constant, the per-reference cycle charge is folded into one
        addition per call, and daemon polling runs at pre-computed
        segment boundaries instead of a per-reference mask test.
        Returns the number of references processed.
        """
        cache = self.cache
        line_block = cache.line_block
        block_dirty = cache.block_dirty
        page_dirty = cache.page_dirty
        prot = cache.prot
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        slow_write_hit = self._slow_write_hit
        miss = self._miss

        poll_mask = self.config.daemon_poll_refs - 1
        poll = self.vm.daemon.poll if poll_mask >= 0 else None

        cycles = 0
        extra = 0
        ifetches = 0
        reads = 0
        writes = 0
        processed = 0
        for chunk in chunks:
            pairs = len(chunk) >> 1
            if not pairs:
                continue
            kind_bytes = chunk[0::2].tobytes()
            chunk_ifetches = kind_bytes.count(_KIND_ZERO_BYTES)
            chunk_writes = kind_bytes.count(_KIND_WRITE_BYTES)
            ifetches += chunk_ifetches
            writes += chunk_writes
            reads += pairs - chunk_ifetches - chunk_writes
            # ``(processed | poll_mask) + 1`` is the number of the next
            # reference at which the legacy loop would poll the page
            # daemon (the smallest n > processed with n % interval ==
            # 0).  Whole chunks that contain no such boundary take the
            # branch-light paths below; chunks that do are split into
            # poll-free segments around each polling reference.
            if poll is None or (processed | poll_mask) + 1 > (
                processed + pairs
            ):
                if chunk_writes == 0 and (
                    chunk_ifetches == 0 or chunk_ifetches == pairs
                ):
                    # Kind-uniform read or ifetch chunk: the kind is
                    # a constant, so the loop carries vaddrs only.
                    uniform = 0 if chunk_ifetches else 1
                    for vaddr in chunk[1::2]:
                        block = vaddr >> block_bits
                        if line_block[block & index_mask] != block:
                            extra += miss(uniform, vaddr)
                    processed += pairs
                    continue
                it = iter(chunk)
                for kind, vaddr in zip(it, it):
                    block = vaddr >> block_bits
                    if line_block[block & index_mask] == block:
                        if kind != 2:
                            continue
                        index = block & index_mask
                        if (
                            block_dirty[index]
                            and page_dirty[index]
                            and prot[index] == _RW
                        ):
                            continue
                        extra += slow_write_hit(index, vaddr)
                        continue
                    extra += miss(kind, vaddr)
                processed += pairs
                continue
            start = 0
            while start < pairs:
                free = (processed | poll_mask) - processed
                segment = free if free < pairs - start else (
                    pairs - start
                )
                if segment:
                    end = (start + segment) << 1
                    it = iter(chunk[start << 1:end])
                    for kind, vaddr in zip(it, it):
                        block = vaddr >> block_bits
                        if line_block[block & index_mask] == block:
                            if kind != 2:
                                continue
                            index = block & index_mask
                            if (
                                block_dirty[index]
                                and page_dirty[index]
                                and prot[index] == _RW
                            ):
                                continue
                            extra += slow_write_hit(index, vaddr)
                            continue
                        extra += miss(kind, vaddr)
                    processed += segment
                    start += segment
                if start < pairs:
                    # The next reference lands on the poll boundary:
                    # poll first (the legacy loop polls before handling
                    # the reference), then process it inline.
                    cycles += poll()
                    offset = start << 1
                    kind = chunk[offset]
                    vaddr = chunk[offset + 1]
                    block = vaddr >> block_bits
                    if line_block[block & index_mask] == block:
                        if kind == 2:
                            index = block & index_mask
                            if not (
                                block_dirty[index]
                                and page_dirty[index]
                                and prot[index] == _RW
                            ):
                                extra += slow_write_hit(index, vaddr)
                    else:
                        extra += miss(kind, vaddr)
                    processed += 1
                    start += 1

        # Deferred accounting: every reference costs its base cycle
        # (hence ``+ processed``); slow paths and polls added theirs
        # to ``extra`` and ``cycles``.
        self.cycles += cycles + extra + processed
        self.references += processed
        mix = ReferenceMix(
            ifetches=ifetches, reads=reads, writes=writes
        )
        mix.flush_to_counters(self.counters)
        self.reference_mix.add(mix.ifetches, mix.reads, mix.writes)
        return processed

    # -- slow paths ------------------------------------------------------

    def _slow_write_hit(self, index, vaddr):
        """A write hit whose dirty-bit state is not settled."""
        cache = self.cache
        vpn = vaddr >> self.page_bits
        pte = self.page_table.entry(vpn)
        page = self.vm.page(vpn)
        if not page.region.writable:
            raise ProtectionFault(vaddr, "write to read-only region")

        if not cache.block_dirty[index]:
            self.counters.increment(Event.WRITE_HIT_CLEAN_BLOCK)
        if cache.filled_by_read[index] and not cache.block_dirty[index]:
            # First modification of a block that entered on a read:
            # one of the paper's N_w-hit events (counted per block).
            self.counters.increment(Event.WRITE_TO_READ_FILLED_BLOCK)
            cache.filled_by_read[index] = False

        cycles = self.dirty_policy.handle_write_hit(
            self, index, vaddr, pte, page
        )

        # The policy may have flushed and refilled the block (FLUSH);
        # find where the written block lives now and mark it dirty.
        if cache.valid[index] and cache.tags[index] == (
            vaddr >> cache.tag_shift
        ):
            target = index
        else:
            target = cache.probe(vaddr)
        if target >= 0:
            cache.block_dirty[target] = True
            cache.acquire_ownership(target)
        return cycles

    def _miss(self, kind, vaddr):
        """Reference missed in the cache: translate, maybe fault, fill."""
        counters = self.counters
        if kind == 0:
            counters.increment(Event.IFETCH_MISS)
        elif kind == 1:
            counters.increment(Event.READ_MISS)
        else:
            counters.increment(Event.WRITE_MISS)

        result = self.translator.translate(vaddr)
        cycles = result.cycles
        pte = result.pte

        vpn = vaddr >> self.page_bits
        if not pte.valid:
            cycles += self.vm.handle_page_fault(vpn)

        cycles += self.reference_policy.on_cache_miss(self, pte)

        is_write = kind == _WRITE
        if is_write:
            page = self.vm.page(vpn)
            if not page.region.writable:
                raise ProtectionFault(vaddr, "write to read-only region")
            counters.increment(Event.WRITE_MISS_FILL)
            cycles += self.dirty_policy.on_write_miss(self, pte, page)

        _, fill_cycles = self.cache.fill(
            vaddr,
            pte.protection,
            page_dirty=self.dirty_policy.fill_page_dirty(pte),
            by_write=is_write,
        )
        counters.increment(Event.BLOCK_FILL)
        return cycles + fill_cycles

    # -- results -----------------------------------------------------------

    @property
    def elapsed_seconds(self):
        """Simulated wall-clock time at the prototype's cycle time."""
        return self.cycles * SPUR_CYCLE_TIME_SECONDS

    def snapshot(self):
        """Counter snapshot (delta arithmetic supported)."""
        return self.counters.snapshot()

    def observe_state(self):
        """Cumulative ``(references, cycles, counter snapshot)``.

        The sampling hook the observability layer polls at epoch
        boundaries; reads existing state only, never mutates.
        """
        return self.references, self.cycles, self.counters.snapshot()

    def observation_alignment(self):
        """Reference alignment an observer's epochs must respect.

        ``run``/``run_chunks`` restart the page-daemon poll schedule
        per call, so an observer that re-segments the stream must cut
        only at multiples of the poll interval to replay the exact
        unobserved schedule.  With polling disabled any boundary works.
        """
        return self.config.daemon_poll_refs or 1

    def __repr__(self):
        return (
            f"SpurMachine({self.name!r}, "
            f"dirty={self.dirty_policy.name}, "
            f"ref={self.reference_policy.name}, "
            f"{self.references} refs, {self.cycles} cycles)"
        )
