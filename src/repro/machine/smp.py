"""A shared-memory multiprocessor SPUR workstation.

SPUR workstations hold up to twelve processor boards on one backplane
[Hill86]; the prototype the paper measured was a uniprocessor, but the
paper's design arguments — software PTE updates avoid multiprocessor
atomic-update hardware, page flushes must reach *every* cache — are
multiprocessor arguments.  :class:`SmpSystem` builds the machine those
arguments describe: N processors with private virtual caches snooping
one bus, sharing one physical memory, one global page table, one swap
device, and one Sprite VM.

The system object doubles as the "machine" facade the shared VM and
page daemon talk to: page flushes cover every cache, and policy
handlers run against the faulting processor's cache while updating the
shared PTEs — which is exactly the synchronisation simplification the
paper credits software dirty-bit updates with.
"""

from repro.cache.bus import SnoopyBus
from repro.counters.counters import PerformanceCounters
from repro.counters.events import Event
from repro.machine.simulator import SpurMachine
from repro.translation.pagetable import PageTable, PageTableLayout
from repro.vm.swap import SwapDevice
from repro.vm.system import VirtualMemorySystem


class SmpSystem:
    """N SPUR processors sharing bus, memory, page table, and VM.

    Parameters
    ----------
    config:
        Per-processor :class:`MachineConfig`; ``memory_bytes`` sizes
        the single shared memory.
    space_map:
        The workload's address-space map (global virtual space is
        shared by construction — SPUR's synonym prevention).
    num_cpus:
        Processor-board count, 1..12 as in the SPUR backplane.
    """

    MAX_CPUS = 12

    def __init__(self, config, space_map, num_cpus=2, counters=None):
        if not 1 <= num_cpus <= self.MAX_CPUS:
            raise ValueError(
                f"SPUR backplanes hold 1..{self.MAX_CPUS} boards, "
                f"not {num_cpus}"
            )
        self.config = config
        self.counters = counters or PerformanceCounters()
        self.bus = SnoopyBus(name="backplane", counters=self.counters)

        layout = PageTableLayout(
            page_bytes=config.page_bytes,
            pte_base=config.pte_base,
            second_level_base=config.second_level_base,
            user_limit=config.user_limit,
        )
        self.page_table = PageTable(layout)
        self.swap = SwapDevice(io_cycles=config.fault_timing.page_io)
        self.vm = VirtualMemorySystem(
            self.page_table,
            space_map,
            self.swap,
            num_frames=config.num_frames,
            wired_frames=config.wired_frames,
            low_water=config.low_water,
            high_water=config.high_water,
        )

        self.cpus = [
            SpurMachine(
                config,
                space_map,
                counters=self.counters,
                bus=self.bus,
                name=f"cpu{i}",
                page_table=self.page_table,
                vm=self.vm,
                swap=self.swap,
            )
            for i in range(num_cpus)
        ]
        for cpu in self.cpus:
            cpu.system = self
        # The VM talks to the system facade, not any single CPU.
        self.vm.attach_machine(self)

    # -- the machine facade the VM, daemon, and policies consume --------

    @property
    def fault_timing(self):
        return self.config.fault_timing

    @property
    def page_bytes(self):
        return self.config.page_bytes

    @property
    def page_bits(self):
        return self.config.page_geometry.page_bits

    @property
    def zero_fill_cycles(self):
        return self.config.zero_fill_cycles

    @property
    def dirty_policy(self):
        return self.cpus[0].dirty_policy

    @property
    def reference_policy(self):
        return self.cpus[0].reference_policy

    @property
    def flusher(self):
        return self.cpus[0].flusher

    def caches(self):
        """Every processor's cache (the page-flush domain)."""
        return [cpu.cache for cpu in self.cpus]

    def flush_page(self, page_vaddr):
        """Flush one page from every processor's cache."""
        cycles = 0
        lines_checked = 0
        write_backs = 0
        for cache in self.caches():
            result = self.flusher.flush_page(
                cache, page_vaddr, self.page_bytes
            )
            lines_checked += result.lines_checked
            write_backs += result.write_backs
            cycles += result.cycles
        self.counters.increment(Event.FLUSH_OPERATION, lines_checked)
        self.counters.increment(Event.FLUSH_WRITE_BACK, write_backs)
        return cycles

    # -- execution ---------------------------------------------------------

    def run_interleaved(self, streams, quantum=4096):
        """Drive one reference stream per CPU, gang-interleaved.

        Each round gives every CPU a ``quantum``-reference slice of
        its stream (a crude but adequate stand-in for loosely
        synchronised parallel execution — the snooping happens at
        slice granularity).  Returns total references executed.
        """
        import itertools

        if len(streams) != len(self.cpus):
            raise ValueError(
                f"need one stream per CPU "
                f"({len(self.cpus)}), got {len(streams)}"
            )
        iterators = [iter(stream) for stream in streams]
        live = list(range(len(iterators)))
        total = 0
        while live:
            finished = []
            for cpu_index in live:
                batch = list(
                    itertools.islice(iterators[cpu_index], quantum)
                )
                if batch:
                    total += self.cpus[cpu_index].run(batch)
                if len(batch) < quantum:
                    finished.append(cpu_index)
            for cpu_index in finished:
                live.remove(cpu_index)
        return total

    def run_interleaved_chunks(self, chunk_streams, quantum=4096):
        """Chunked counterpart of :meth:`run_interleaved`.

        ``chunk_streams`` holds one flat-chunk iterator per CPU,
        chunked at ``quantum`` references (e.g.
        ``instance.access_chunks(quantum)`` or
        :func:`repro.workloads.base.chunk_accesses`).  Each round
        feeds every live CPU its next whole chunk through
        :meth:`SpurMachine.run_chunks` — the same quantum boundaries
        the tuple path's ``islice`` batches produce, so results are
        bit-identical.  A short (or missing) chunk retires its CPU
        exactly as a short batch does.  Returns total references.
        """
        if len(chunk_streams) != len(self.cpus):
            raise ValueError(
                f"need one chunk stream per CPU "
                f"({len(self.cpus)}), got {len(chunk_streams)}"
            )
        iterators = [iter(stream) for stream in chunk_streams]
        live = list(range(len(iterators)))
        total = 0
        while live:
            finished = []
            for cpu_index in live:
                chunk = next(iterators[cpu_index], None)
                if chunk is None:
                    finished.append(cpu_index)
                    continue
                total += self.cpus[cpu_index].run_chunks((chunk,))
                if len(chunk) >> 1 < quantum:
                    finished.append(cpu_index)
            for cpu_index in finished:
                live.remove(cpu_index)
        return total

    @property
    def cycles(self):
        """Aggregate processor cycles across the boards."""
        return sum(cpu.cycles for cpu in self.cpus)

    @property
    def references(self):
        return sum(cpu.references for cpu in self.cpus)

    def observe_state(self):
        """Cumulative ``(references, cycles, counter snapshot)``.

        Aggregates across the boards; the counter bank is shared, so
        the snapshot already reflects every CPU.
        """
        return self.references, self.cycles, self.counters.snapshot()

    def observation_alignment(self):
        """SMP observers sample post-slice and never re-segment.

        Because no stream is re-cut, there is no poll schedule to
        preserve and any epoch cadence is exact (at quantum
        granularity).
        """
        return 1

    def __repr__(self):
        return (
            f"SmpSystem({len(self.cpus)} cpus, "
            f"{self.references} refs, bus={self.bus.transactions} txns)"
        )
