"""Observability: counter time series, trace events, progress, reports.

Everything in this package watches the simulator without perturbing
it.  The contract, borrowed from ``host_seconds`` on
:class:`~repro.machine.runner.RunResult`: telemetry lives *alongside*
results, never inside result equality or the result cache, and an
observed run is bit-identical to an unobserved one.

The pieces:

- :class:`RunObserver` / :func:`observe` — attach to a machine and
  sample the counter bank every ``epoch_refs`` references.
- :class:`EpochSample` / :class:`RunObservation` — the sampled series
  plus the per-phase wall-clock profile.
- Sinks (:class:`JsonlSink`, :class:`MemorySink`, :class:`NullSink`)
  and emitters — structured JSON-lines trace events.
- :class:`CampaignProgress` — live cells-done/cached/failed/ETA line
  for campaign runs.
- :mod:`repro.observe.report` — read a trace back and summarise or
  export it (the ``repro observe report`` subcommand).
"""

from repro.observe.observer import (
    RunObserver,
    effective_epoch_refs,
    observe,
)
from repro.observe.progress import CampaignProgress
from repro.observe.report import (
    TraceSummary,
    read_trace,
    render_report,
    summarize_trace,
    trajectories_json,
    trajectory_rows,
    write_trajectories_csv,
)
from repro.observe.series import (
    CSV_HEADER,
    DEFAULT_EPOCH_REFS,
    EpochSample,
    RunObservation,
)
from repro.observe.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    emit_cell,
    emit_run,
    stamp,
)

__all__ = [
    "CSV_HEADER",
    "CampaignProgress",
    "DEFAULT_EPOCH_REFS",
    "EpochSample",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "RunObservation",
    "RunObserver",
    "TraceSummary",
    "effective_epoch_refs",
    "emit_cell",
    "emit_run",
    "observe",
    "read_trace",
    "render_report",
    "stamp",
    "summarize_trace",
    "trajectories_json",
    "trajectory_rows",
    "write_trajectories_csv",
]
