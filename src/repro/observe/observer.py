"""The run observer: attach, sample on an epoch cadence, detach.

A :class:`RunObserver` watches a live :class:`SpurMachine` (or a whole
:class:`SmpSystem`) and snapshots the full counter bank every
``epoch_refs`` references, producing the per-event time series the
paper could only approximate by re-running workloads under different
counter modes.  The design constraints, in order:

**Provably inert.**  Observation must never change what a run
measures: every counter, cycle, and VM outcome of an observed run is
bit-identical to the unobserved run.  The observer therefore never
touches the hot loop.  Like the sanitizer, it *wraps* the machine's
``run``/``run_chunks`` entry points, re-segmenting the reference
stream at epoch boundaries and feeding each epoch through the original
method — and because the chunked hot loop is bit-identical for any
chunking (the ``run_chunks`` contract), re-segmentation changes
nothing but where the observer gets to look.

**Exact poll schedules.**  The one piece of per-call state is the page
daemon's poll schedule: ``run``/``run_chunks`` restart their reference
count per call, so an epoch boundary that is not a multiple of
``daemon_poll_refs`` would shift later poll points.  The observer
rounds its cadence up to the next multiple of the poll interval
(:func:`effective_epoch_refs`), which keeps the global poll schedule
exactly what a single unobserved call would produce.  With polling
disabled any cadence is exact.

**Near-zero overhead when disabled.**  Nothing here is imported or
attached unless observation is requested; the hot loops carry no
observation branches at all.

On an :class:`SmpSystem` the observer never re-segments: it samples
after each CPU's execution slice once the system's aggregate reference
count crosses an epoch boundary, so cadence is quantum-granular there
(and trivially inert).
"""

import itertools
import time

from repro.observe.series import (
    DEFAULT_EPOCH_REFS,
    EpochSample,
    RunObservation,
)


def effective_epoch_refs(epoch_refs, alignment):
    """Round *epoch_refs* up to a multiple of *alignment*.

    ``alignment`` is the machine's poll interval (1 when polling is
    disabled): sampling at aligned boundaries replays the exact poll
    schedule of an unobserved single-call run.
    """
    if epoch_refs < 1:
        raise ValueError("epoch_refs must be positive")
    if alignment <= 1:
        return epoch_refs
    return ((epoch_refs + alignment - 1) // alignment) * alignment


class RunObserver:
    """Samples counter snapshots from a running machine.

    Parameters
    ----------
    epoch_refs:
        Requested references per sample; rounded up to the machine's
        observation alignment at attach time (see module docs).
    label:
        Optional run label carried into the resulting
        :class:`~repro.observe.series.RunObservation`.
    """

    def __init__(self, epoch_refs=DEFAULT_EPOCH_REFS, label=None):
        if epoch_refs < 1:
            raise ValueError("epoch_refs must be positive")
        self.epoch_refs = epoch_refs
        self.label = label
        self.samples = []
        self.phase_seconds = {}
        self._target = None
        self._effective = None
        self._wrapped = []
        self._next_epoch = None

    # -- attachment ------------------------------------------------------

    def attach(self, obj):
        """Instrument a machine or SMP system; returns self."""
        if self._target is not None:
            raise RuntimeError(
                "a RunObserver observes exactly one machine; build a "
                "fresh one per run"
            )
        if hasattr(obj, "cpus"):          # SmpSystem
            self._target = obj
            self._effective = effective_epoch_refs(
                self.epoch_refs, obj.observation_alignment()
            )
            self._next_epoch = self._effective
            for cpu in obj.cpus:
                self._wrap_smp_cpu(cpu)
        elif hasattr(obj, "run_chunks") and hasattr(obj, "cache"):
            self._target = obj           # SpurMachine
            self._effective = effective_epoch_refs(
                self.epoch_refs, obj.observation_alignment()
            )
            self._wrap_machine(obj)
        else:
            raise TypeError(
                f"cannot observe {type(obj).__name__}; expected a "
                f"SpurMachine or SmpSystem"
            )
        self._sample()               # baseline (sample 0)
        return self

    def attach_passive(self, machine):
        """Observe a machine whose driver samples explicitly.

        The lockstep fleet (:mod:`repro.fleet`) never calls
        ``run``/``run_chunks``, so there is nothing to wrap: the fleet
        runner commits each member's bookkeeping at chunk boundaries
        and calls :meth:`sample_boundary` — the SMP post-slice cadence
        (quantum-granular, trivially inert).  Takes the baseline
        sample; :meth:`finish` works unchanged.  Returns self.
        """
        if self._target is not None:
            raise RuntimeError(
                "a RunObserver observes exactly one machine; build a "
                "fresh one per run"
            )
        self._target = machine
        self._effective = effective_epoch_refs(
            self.epoch_refs, machine.observation_alignment()
        )
        self._next_epoch = self._effective
        self._sample()               # baseline (sample 0)
        return self

    def sample_boundary(self):
        """Sample if the target has crossed an epoch boundary.

        The explicit-drive twin of the SMP wrappers' post-slice check:
        call at any safe boundary (the fleet does so after each
        committed chunk); sampling happens only when cumulative
        references reach the next epoch.
        """
        if self._target.references >= self._next_epoch:
            self._sample()
            while self._next_epoch <= self._target.references:
                self._next_epoch += self._effective

    def detach(self):
        """Restore every method this observer wrapped."""
        for obj, name, original in reversed(self._wrapped):
            setattr(obj, name, original)
        self._wrapped.clear()

    def finish(self):
        """Final sample, detach, and build the observation record."""
        self._sample()
        self.detach()
        return RunObservation(
            label=self.label,
            epoch_refs=self._effective or self.epoch_refs,
            samples=tuple(self.samples),
            phases=dict(self.phase_seconds),
        )

    # -- sampling --------------------------------------------------------

    def _sample(self):
        """Snapshot the target's cumulative state (idempotent)."""
        references, cycles, snapshot = self._target.observe_state()
        if self.samples and self.samples[-1].references == references:
            return
        self.samples.append(EpochSample(
            references=references,
            cycles=cycles,
            events=snapshot.as_dict(),
        ))

    def charge(self, phase, seconds):
        """Attribute *seconds* of host wall-clock to *phase*.

        The wrappers charge ``"generate"`` and ``"simulate"``; the
        experiment runner adds ``"merge"`` for result assembly.
        """
        self.phase_seconds[phase] = (
            self.phase_seconds.get(phase, 0.0) + seconds
        )

    # -- uniprocessor instrumentation ------------------------------------

    def _wrap_machine(self, machine):
        epoch = self._effective
        perf_counter = time.perf_counter

        original_run = machine.run

        def run(accesses):
            """Epoch-segmented drive of the original tuple-path run."""
            iterator = iter(accesses)
            count = 0
            while True:
                started = perf_counter()
                batch = list(itertools.islice(iterator, epoch))
                self.charge("generate", perf_counter() - started)
                if not batch:
                    break
                started = perf_counter()
                count += original_run(batch)
                self.charge("simulate", perf_counter() - started)
                if len(batch) == epoch:
                    self._sample()
            self._sample()
            return count

        machine.run = run
        self._wrapped.append((machine, "run", original_run))

        original_chunks = machine.run_chunks

        def run_chunks(chunks):
            """Epoch-segmented drive of the original chunked run.

            Incoming chunks are split at epoch boundaries; each
            epoch's pieces go through the original ``run_chunks`` in
            one call, so the hit on the hot loop is only a slightly
            different chunking — which the chunked-equivalence
            contract guarantees is bit-identical.
            """
            iterator = iter(chunks)
            pending = []
            pending_refs = 0
            count = 0
            while True:
                started = perf_counter()
                chunk = next(iterator, None)
                self.charge("generate", perf_counter() - started)
                if chunk is None:
                    break
                pairs = len(chunk) >> 1
                offset = 0
                while pending_refs + (pairs - offset) >= epoch:
                    take = epoch - pending_refs
                    if offset == 0 and take == pairs:
                        pending.append(chunk)
                    else:
                        pending.append(
                            chunk[offset * 2:(offset + take) * 2]
                        )
                    offset += take
                    started = perf_counter()
                    count += original_chunks(pending)
                    self.charge(
                        "simulate", perf_counter() - started
                    )
                    pending = []
                    pending_refs = 0
                    self._sample()
                if offset < pairs:
                    pending.append(
                        chunk if offset == 0 else chunk[offset * 2:]
                    )
                    pending_refs += pairs - offset
            if pending:
                started = perf_counter()
                count += original_chunks(pending)
                self.charge("simulate", perf_counter() - started)
            self._sample()
            return count

        machine.run_chunks = run_chunks
        self._wrapped.append((machine, "run_chunks", original_chunks))

    # -- SMP instrumentation ---------------------------------------------

    def _wrap_smp_cpu(self, cpu):
        """Post-slice sampling: never re-segments an SMP stream."""
        system = self._target

        def after():
            if system.references >= self._next_epoch:
                self._sample()
                while self._next_epoch <= system.references:
                    self._next_epoch += self._effective

        original_run = cpu.run

        def run(accesses):
            """Original CPU slice plus an epoch-boundary check."""
            count = original_run(accesses)
            after()
            return count

        cpu.run = run
        self._wrapped.append((cpu, "run", original_run))

        original_chunks = cpu.run_chunks

        def run_chunks(chunks):
            """Original CPU chunk slice plus an epoch-boundary check."""
            count = original_chunks(chunks)
            after()
            return count

        cpu.run_chunks = run_chunks
        self._wrapped.append((cpu, "run_chunks", original_chunks))

    def __repr__(self):
        return (
            f"RunObserver(epoch_refs={self.epoch_refs}, "
            f"effective={self._effective}, "
            f"{len(self.samples)} samples)"
        )


def observe(obj, epoch_refs=DEFAULT_EPOCH_REFS, label=None):
    """Convenience: build a :class:`RunObserver` and attach *obj*."""
    return RunObserver(epoch_refs=epoch_refs, label=label).attach(obj)


__all__ = ["RunObserver", "effective_epoch_refs", "observe"]
