"""Live campaign progress: cells done / cached / failed, with an ETA.

A :class:`CampaignProgress` is fed by
:func:`repro.parallel.execute_cells` as cells resolve and renders a
one-line status after every update::

    campaign: 12/40 done | 6 computed | 5 cached | 1 FAILED | 34.2s elapsed | eta 81s

On a TTY the line redraws in place (carriage return); on anything else
each update is its own line, so CI logs show the trajectory.

Cells that were *computed* (simulated this run, successfully or not)
and cells that were merely *resolved* (cache hits, journal resumes)
are tracked separately and both reported: resolved cells cost
microseconds, so the ETA divides elapsed wall-clock by computed cells
only — counting hits as full-speed completions would make the
estimate absurdly optimistic right after a warm start or resume.
"""

import sys
import time


class CampaignProgress:
    """Counts campaign cells and renders a status line per update.

    Parameters
    ----------
    total:
        Expected cell count; settable later via :meth:`start` (which
        :func:`execute_cells` calls with the real total).
    stream:
        Output stream; defaults to ``sys.stderr``.
    label:
        Noun for the units, e.g. ``"cells"``.
    """

    def __init__(self, total=None, stream=None, label="cells"):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.done = 0
        self.cached = 0
        self.resumed = 0
        self.computed = 0
        self.failed = 0
        self._started = time.perf_counter()

    @classmethod
    def coerce(cls, progress, total):
        """Normalise an options-style progress value.

        ``None``/``False`` disable progress; ``True`` builds a stderr
        reporter; an existing :class:`CampaignProgress` is adopted
        (and told the total).  Returns ``None`` or the reporter.
        """
        if not progress:
            return None
        if progress is True:
            progress = cls()
        progress.start(total)
        return progress

    def start(self, total):
        """(Re)arm the reporter for a campaign of *total* cells."""
        self.total = total
        self.done = 0
        self.cached = 0
        self.resumed = 0
        self.computed = 0
        self.failed = 0
        self._started = time.perf_counter()

    # -- feeding ---------------------------------------------------------

    def cell_cached(self):
        """One cell resolved from the result cache."""
        self.done += 1
        self.cached += 1
        self.render()

    def cell_resumed(self):
        """One cell resolved from a campaign journal's payloads."""
        self.done += 1
        self.resumed += 1
        self.render()

    def cell_finished(self):
        """One cell simulated successfully (a *computed* completion)."""
        self.done += 1
        self.computed += 1
        self.render()

    def cell_failed(self):
        """One cell raised; the campaign degrades but continues."""
        self.done += 1
        self.failed += 1
        self.render()

    # -- rendering -------------------------------------------------------

    @property
    def elapsed_seconds(self):
        """Wall-clock seconds since :meth:`start`."""
        return time.perf_counter() - self._started

    def eta_seconds(self):
        """Estimated seconds remaining, or ``None`` if unknowable.

        Based on *computed* completions only (successes and failures
        that actually simulated); cache hits and journal resumes cost
        microseconds and must not dilute the per-cell average.
        """
        if self.total is None:
            return None
        worked = self.computed + self.failed
        remaining = self.total - self.done
        if worked <= 0 or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        return self.elapsed_seconds / worked * remaining

    def status_line(self):
        """The current one-line status."""
        total = "?" if self.total is None else self.total
        parts = [f"campaign: {self.done}/{total} {self.label} done"]
        if self.computed:
            parts.append(f"{self.computed} computed")
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        parts.append(f"{self.elapsed_seconds:.1f}s elapsed")
        eta = self.eta_seconds()
        if eta is not None and self.done < (self.total or 0):
            parts.append(f"eta {eta:.0f}s")
        return " | ".join(parts)

    def render(self):
        """Write the status line (redrawing in place on a TTY)."""
        line = self.status_line()
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self):
        """Terminate the in-place line (TTY) after the last update."""
        if getattr(self.stream, "isatty", lambda: False)():
            self.stream.write("\n")
            self.stream.flush()

    def __repr__(self):
        return (
            f"CampaignProgress({self.done}/{self.total}, "
            f"{self.computed} computed, {self.cached} cached, "
            f"{self.resumed} resumed, {self.failed} failed)"
        )


__all__ = ["CampaignProgress"]
