"""Read a JSONL trace back and turn it into reports and exports.

The consumer side of the sink vocabulary in
:mod:`repro.observe.sinks`: :func:`read_trace` parses a trace file,
:func:`summarize_trace` folds it into a :class:`TraceSummary`,
:func:`render_report` renders the human-facing text the
``repro observe report`` subcommand prints, and
:func:`write_trajectories_csv` / :func:`trajectories_json` export the
per-epoch counter trajectories in plot-ready long format (one row per
sample x event, mirroring
:data:`repro.observe.series.CSV_HEADER`).
"""

import csv
import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import TraceFormatError
from repro.observe.series import CSV_HEADER


def read_trace(path):
    """Parse a JSONL trace into a list of event dicts.

    Raises :class:`~repro.common.errors.TraceFormatError` on a line
    that is not a JSON object, with one deliberate exception: a torn
    *final* line with no trailing newline is the normal signature of
    a killed run (the sink flushes per event, so only the in-flight
    record can be cut mid-write), and is silently skipped so crashed
    campaigns stay reportable.  Corruption anywhere else still raises
    with the line number — a torn line mid-file means real damage,
    not a crash.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    last = len(lines) - 1
    for number, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        torn_tail = number == last and not raw.endswith("\n")
        try:
            event = json.loads(line)
        except ValueError as error:
            if torn_tail:
                continue
            raise TraceFormatError(
                f"{path}:{number + 1}: not valid JSON ({error})"
            ) from None
        if not isinstance(event, dict) or "type" not in event:
            if torn_tail:
                continue
            raise TraceFormatError(
                f"{path}:{number + 1}: trace events must be objects "
                f"with a 'type' key"
            )
        events.append(event)
    return events


@dataclass
class TraceSummary:
    """Aggregate view of one trace file."""

    campaigns: int = 0
    cells_total: int = 0
    cells_cached: int = 0
    cells_failed: int = 0
    runs: int = 0
    references: int = 0
    cycles: int = 0
    host_seconds: float = 0.0
    scalar_bailouts: int = 0
    epoch_samples: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    labels: List[str] = field(default_factory=list)

    @property
    def refs_per_second(self):
        """Simulated references per host second across all runs."""
        if self.host_seconds <= 0.0:
            return 0.0
        return self.references / self.host_seconds

    def to_json_dict(self):
        """JSON-ready rendering of the summary."""
        return {
            "campaigns": self.campaigns,
            "cells_total": self.cells_total,
            "cells_cached": self.cells_cached,
            "cells_failed": self.cells_failed,
            "runs": self.runs,
            "references": self.references,
            "cycles": self.cycles,
            "host_seconds": round(self.host_seconds, 6),
            "refs_per_second": round(self.refs_per_second, 1),
            "scalar_bailouts": self.scalar_bailouts,
            "epoch_samples": self.epoch_samples,
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "labels": self.labels,
        }


def summarize_trace(events):
    """Fold parsed trace events into a :class:`TraceSummary`."""
    summary = TraceSummary()
    seen_labels = set()
    for event in events:
        kind = event.get("type")
        if kind == "campaign_started":
            summary.campaigns += 1
            summary.cells_total += event.get("cells", 0)
        elif kind == "cell_cached":
            summary.cells_cached += 1
        elif kind == "cell_failed":
            summary.cells_failed += 1
        elif kind == "run_finished":
            summary.runs += 1
            summary.references += event.get("references", 0)
            summary.cycles += event.get("cycles", 0)
            summary.host_seconds += event.get("host_seconds", 0.0)
            summary.scalar_bailouts += event.get("scalar_bailouts", 0)
            for name, seconds in event.get("phases", {}).items():
                summary.phase_seconds[name] = (
                    summary.phase_seconds.get(name, 0.0) + seconds
                )
            label = event.get("label")
            if label and label not in seen_labels:
                seen_labels.add(label)
                summary.labels.append(label)
        elif kind == "epoch":
            summary.epoch_samples += 1
    return summary


def trajectory_rows(events):
    """Long-format counter-trajectory rows from ``epoch`` events.

    Yields tuples matching :data:`~repro.observe.series.CSV_HEADER`:
    ``(label, sample, references, cycles, event, count)`` — the
    format gnuplot/pandas consume directly for plotting the counter
    trajectories behind Tables 3.3/3.5/4.1.
    """
    for event in events:
        if event.get("type") != "epoch":
            continue
        label = event.get("label") or event.get("workload") or ""
        for name in sorted(event.get("events", {})):
            yield (
                label,
                event.get("sample", 0),
                event.get("references", 0),
                event.get("cycles", 0),
                name,
                event["events"][name],
            )


def write_trajectories_csv(events, path):
    """Write :func:`trajectory_rows` to *path*; returns the row count."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_HEADER)
        for row in trajectory_rows(events):
            writer.writerow(row)
            count += 1
    return count


def trajectories_json(events):
    """Counter trajectories grouped by label for JSON export.

    Returns ``{label: {event: [[references, count], ...]}}`` with
    samples in trace order — cumulative values, exactly as emitted.
    """
    result = {}
    for event in events:
        if event.get("type") != "epoch":
            continue
        label = event.get("label") or event.get("workload") or ""
        per_label = result.setdefault(label, {})
        for name, count in event.get("events", {}).items():
            per_label.setdefault(name, []).append(
                [event.get("references", 0), count]
            )
    return result


def render_report(summary):
    """Human-facing text for ``repro observe report``."""
    # Imported here, not at module level: repro.analysis imports the
    # runner, which imports this package — a top-level import would
    # close that cycle during package init.
    from repro.analysis.tables import Table

    table = Table(
        "Trace summary",
        ["Metric", "Value"],
    )
    table.add_row("campaigns", summary.campaigns)
    table.add_row("cells (total)", summary.cells_total)
    table.add_row("cells cached", summary.cells_cached)
    table.add_row("cells failed", summary.cells_failed)
    table.add_row("runs finished", summary.runs)
    table.add_row("references simulated", f"{summary.references:,}")
    table.add_row("cycles simulated", f"{summary.cycles:,}")
    table.add_row("host seconds", f"{summary.host_seconds:.2f}")
    table.add_row("refs/second", f"{summary.refs_per_second:,.0f}")
    table.add_row("chunk.scalar-bailout", summary.scalar_bailouts)
    table.add_row("epoch samples", summary.epoch_samples)
    for name, seconds in sorted(summary.phase_seconds.items()):
        share = (
            100.0 * seconds / summary.host_seconds
            if summary.host_seconds > 0 else 0.0
        )
        table.add_row(
            f"phase: {name}", f"{seconds:.2f}s ({share:.0f}%)"
        )
    if summary.labels:
        shown = ", ".join(summary.labels[:8])
        if len(summary.labels) > 8:
            shown += f", ... ({len(summary.labels)} total)"
        table.add_note(f"labels: {shown}")
    return table.render()


__all__ = [
    "TraceSummary",
    "read_trace",
    "render_report",
    "summarize_trace",
    "trajectories_json",
    "trajectory_rows",
    "write_trajectories_csv",
]
