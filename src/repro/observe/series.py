"""Counter time series: epoch samples and per-run observations.

The paper's measurement scripts could only read SPUR's sixteen
counters at run boundaries; the simulator is not so constrained.  An
attached :class:`~repro.observe.observer.RunObserver` snapshots the
full counter bank every *epoch* (a fixed number of references), and
the records here hold what it saw:

:class:`EpochSample`
    One snapshot: cumulative references, cycles, and counter values
    at an epoch boundary.  Values are cumulative — the series of any
    event is monotone non-decreasing — because that is what the
    hardware counters themselves expose; per-epoch deltas are derived.

:class:`RunObservation`
    Everything observed about one run: the sample series, the
    effective epoch cadence, and the phase profile (wall-clock
    attribution of workload generation vs. simulation).  Observations
    ride *alongside* a :class:`~repro.machine.runner.RunResult` —
    excluded from result equality and from the result cache, exactly
    like ``host_seconds`` — so observing a run can never change what
    the run measured.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.counters.events import Event

#: Default references per observation epoch.  Matches the default
#: page-daemon poll interval so the epoch schedule needs no rounding
#: on stock configurations (see ``RunObserver`` for the alignment
#: rule).
DEFAULT_EPOCH_REFS = 65536


@dataclass(frozen=True)
class EpochSample:
    """Cumulative machine state captured at one epoch boundary."""

    references: int
    cycles: int
    events: Dict[Event, int]

    def event(self, event):
        """Cumulative count of one event at this sample (0 if unseen)."""
        return self.events.get(event, 0)

    def to_json_dict(self):
        """JSON-ready rendering with event names as keys."""
        return {
            "references": self.references,
            "cycles": self.cycles,
            "events": {
                event.name: count
                for event, count in sorted(
                    self.events.items(), key=lambda item: item[0].name
                )
            },
        }

    @classmethod
    def from_json_dict(cls, payload):
        """Rebuild a sample from :meth:`to_json_dict` output."""
        return cls(
            references=payload["references"],
            cycles=payload["cycles"],
            events={
                Event[name]: count
                for name, count in payload["events"].items()
            },
        )


@dataclass(frozen=True)
class RunObservation:
    """The complete telemetry of one observed run.

    ``samples`` always starts with the attach-time baseline (sample 0,
    usually all zeros on a cold machine) and ends with a stream-end
    sample, so ``samples[-1]`` matches the run's final counter totals.
    ``phases`` maps phase names (``"generate"``, ``"simulate"``, and —
    when the runner adds it — ``"merge"``) to host seconds.
    """

    label: Optional[str] = None
    epoch_refs: int = DEFAULT_EPOCH_REFS
    samples: Tuple[EpochSample, ...] = ()
    phases: Dict[str, float] = field(default_factory=dict)

    def series(self, event):
        """``[(references, cumulative count), ...]`` for one event."""
        return [
            (sample.references, sample.event(event))
            for sample in self.samples
        ]

    def deltas(self, event):
        """Per-epoch increments of one event between samples."""
        values = [sample.event(event) for sample in self.samples]
        return [
            later - earlier
            for earlier, later in zip(values, values[1:])
        ]

    def final(self, event):
        """The event's cumulative count at the last sample."""
        if not self.samples:
            return 0
        return self.samples[-1].event(event)

    @property
    def references(self):
        """References covered by the observation (last sample)."""
        if not self.samples:
            return 0
        return self.samples[-1].references - self.samples[0].references

    def events_seen(self):
        """Every event that appears in any sample, sorted by name."""
        seen = set()
        for sample in self.samples:
            seen.update(sample.events)
        return sorted(seen, key=lambda event: event.name)

    def refs_per_second(self, phase="simulate"):
        """References per host second attributed to one phase."""
        seconds = self.phases.get(phase, 0.0)
        if seconds <= 0.0:
            return 0.0
        return self.references / seconds

    def is_monotone(self):
        """Whether every cumulative series is non-decreasing.

        True for any observation of a real run — counters only count
        up (modulo the 32-bit wrap, which no scaled run approaches) —
        so the equivalence tests assert it as a sanity invariant.
        """
        for event in self.events_seen():
            values = [sample.event(event) for sample in self.samples]
            if any(b < a for a, b in zip(values, values[1:])):
                return False
        refs = [sample.references for sample in self.samples]
        cycles = [sample.cycles for sample in self.samples]
        return (
            all(b >= a for a, b in zip(refs, refs[1:]))
            and all(b >= a for a, b in zip(cycles, cycles[1:]))
        )

    def to_json_dict(self):
        """JSON-ready rendering (event names, not enum objects)."""
        return {
            "label": self.label,
            "epoch_refs": self.epoch_refs,
            "samples": [
                sample.to_json_dict() for sample in self.samples
            ],
            "phases": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phases.items())
            },
        }

    @classmethod
    def from_json_dict(cls, payload):
        """Rebuild an observation from :meth:`to_json_dict` output."""
        return cls(
            label=payload.get("label"),
            epoch_refs=payload["epoch_refs"],
            samples=tuple(
                EpochSample.from_json_dict(item)
                for item in payload["samples"]
            ),
            phases=dict(payload.get("phases", {})),
        )

    def csv_rows(self):
        """Long-format rows for plotting counter trajectories.

        Yields ``(label, sample, references, cycles, event, count)``
        tuples — one row per (sample, event) pair — matching the
        header :data:`CSV_HEADER`.
        """
        label = self.label or ""
        for index, sample in enumerate(self.samples):
            for event in self.events_seen():
                yield (
                    label, index, sample.references, sample.cycles,
                    event.name, sample.event(event),
                )


#: Column names matching :meth:`RunObservation.csv_rows`.
CSV_HEADER = (
    "label", "sample", "references", "cycles", "event", "count",
)


__all__ = [
    "CSV_HEADER",
    "DEFAULT_EPOCH_REFS",
    "EpochSample",
    "RunObservation",
]
