"""Trace sinks: where structured telemetry events go.

A *sink* is anything with an ``emit(event)`` method taking a plain
JSON-serialisable dict; the library never depends on a concrete class,
so callers can pipe events into logging systems, sockets, or test
doubles.  Three stock sinks cover the common cases:

:class:`NullSink`
    Drops everything (the explicit "observation off" object).
:class:`MemorySink`
    Collects events in a list — what the tests assert against.
:class:`JsonlSink`
    Appends one compact JSON line per event to a file, flushing per
    event so a killed campaign leaves a readable prefix.  This is the
    format ``repro observe report`` consumes.

Every event carries a ``type`` key.  The emitters below define the
event vocabulary — run lifecycle (``run_finished`` plus per-epoch
``epoch`` records), campaign/cell lifecycle, worker-pool lifecycle,
and result-cache traffic — so producers and the report reader agree
on field names by construction.

Sinks are driven from the *parent* process only: worker processes
return their counter series inside the
:class:`~repro.observe.series.RunObservation` riding on each result,
and the parent emits those after the fact.  That keeps sinks free of
any cross-process locking.
"""

import json
import os
import time


class NullSink:
    """Swallows every event."""

    def emit(self, event):
        """Drop *event*."""

    def close(self):
        """No-op (symmetry with file-backed sinks)."""


class MemorySink:
    """Collects events in ``self.events`` for inspection."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        """Append a copy of *event*."""
        self.events.append(dict(event))

    def close(self):
        """No-op (events stay available)."""

    def of_type(self, event_type):
        """Every collected event with the given ``type``."""
        return [
            event for event in self.events
            if event.get("type") == event_type
        ]


class JsonlSink:
    """Writes one JSON line per event to *path*.

    ``mode="w"`` (default) starts a fresh trace; pass ``mode="a"`` to
    extend an existing one across commands.  Lines are flushed per
    event so concurrent readers (and post-mortems of killed runs) see
    every completed record; pass ``fsync=True`` to additionally force
    each record to stable storage before :meth:`emit` returns — a
    ``kill -9`` (or power loss) can then tear at most the one line
    being written, which the trace reader skips.
    """

    def __init__(self, path, mode="w", fsync=False):
        self.path = str(path)
        self.fsync = fsync
        self._handle = open(self.path, mode, encoding="utf-8")

    def emit(self, event):
        """Serialise *event* compactly, flush, optionally fsync."""
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self):
        """Close the underlying file."""
        self._handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def stamp(event):
    """Attach a wall-clock timestamp; returns the event."""
    event["ts"] = round(time.time(), 6)
    return event


def emit_run(sink, result, label=None):
    """Emit one run's trace records: epochs first, then the summary.

    ``result`` is a :class:`~repro.machine.runner.RunResult`; when it
    carries an observation the per-epoch counter samples are emitted
    as ``epoch`` events (cumulative values, matching the samples), and
    the closing ``run_finished`` event includes the phase profile.
    """
    if sink is None:
        return
    observation = result.observation
    label = label or (observation.label if observation else None)
    if observation is not None:
        for index, sample in enumerate(observation.samples):
            sink.emit(stamp({
                "type": "epoch",
                "label": label,
                "workload": result.workload,
                "seed": result.seed,
                "sample": index,
                "references": sample.references,
                "cycles": sample.cycles,
                "events": {
                    event.name: count
                    for event, count in sorted(
                        sample.events.items(),
                        key=lambda item: item[0].name,
                    )
                },
            }))
    finished = {
        "type": "run_finished",
        "label": label,
        "workload": result.workload,
        "config": result.config_name,
        "seed": result.seed,
        "references": result.references,
        "cycles": result.cycles,
        "page_ins": result.page_ins,
        "page_outs": result.page_outs,
        "host_seconds": round(result.host_seconds, 6),
        "scalar_bailouts": result.scalar_bailouts,
    }
    if observation is not None:
        finished["epoch_refs"] = observation.epoch_refs
        finished["samples"] = len(observation.samples)
        finished["phases"] = {
            name: round(seconds, 6)
            for name, seconds in sorted(observation.phases.items())
        }
    sink.emit(stamp(finished))


def emit_cell(sink, event_type, index, cell, **extra):
    """Emit one campaign-cell lifecycle event.

    ``cell`` is a :class:`~repro.parallel.executor.RunCell`; its label
    and seed always ride along so a failure (or a progress reader) can
    name the exact cell without reverse-engineering indices.
    """
    if sink is None:
        return
    event = {
        "type": event_type,
        "cell": index,
        "label": cell.label,
        "seed": cell.seed,
        "workload": type(cell.workload).__name__,
        "config": getattr(cell.config, "name", None),
    }
    event.update(extra)
    sink.emit(stamp(event))


__all__ = [
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "emit_cell",
    "emit_run",
    "stamp",
]
