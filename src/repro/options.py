"""RunOptions: one object carrying every execution knob.

The multi-run entry points grew their knobs one keyword at a time —
``workers``, ``chunk_refs``, ``cache``, ``sanitize`` — and the
observability layer would have added four more to every signature.
:class:`RunOptions` collects them all in a single frozen value that
every driver accepts::

    options = RunOptions(workers=4, cache_dir=".cache",
                         observe=True, trace_sink=JsonlSink("t.jsonl"))
    runner = ExperimentRunner(options=options)
    run_table_3_3(options=options)

The legacy keyword arguments remain on every entry point as a
compatibility shim, but ``options`` is the documented API: when an
``options`` object is passed it wins over the legacy keywords.

None of these knobs may change what a run *measures*: workers, chunk
size, caching, sanitizing, and observing all produce bit-identical
:class:`~repro.machine.runner.RunResult` values.  Options therefore
never participate in result equality or cache keys.
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.observe.series import DEFAULT_EPOCH_REFS
from repro.workloads.base import DEFAULT_CHUNK_REFS


@dataclass(frozen=True)
class RunOptions:
    """Execution settings shared by every experiment entry point.

    Parameters
    ----------
    workers:
        Worker-process count for multi-cell entry points; 1 runs
        in-process.
    fleet:
        Step all pending cells of a multi-cell entry point in lockstep
        inside this process (:mod:`repro.fleet`): the vectorized
        classifier runs across every machine at once instead of one
        process per cell.  Bit-identical to the serial and pooled
        paths; keep the process pool (``workers``) for cross-host
        scale.  When both are set the fleet wins and no pool is
        spawned.
    chunk_refs:
        References per flat workload chunk (0 selects the legacy
        per-tuple stream).  Bit-identical either way.
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables
        caching.
    use_cache:
        Master switch for the cache — ``False`` ignores ``cache_dir``
        (the ``--no-cache`` flag).
    sanitize:
        Optional :mod:`repro.sanitize` mode name; runs execute under
        an attached invariant sanitizer.
    observe:
        Attach a :class:`~repro.observe.observer.RunObserver` to every
        run, populating ``RunResult.observation`` with the counter
        time series and phase profile.  Observed results are
        bit-identical to unobserved ones.
    epoch_refs:
        Requested references per observation epoch (rounded up to the
        machine's poll alignment at attach time).
    trace_sink:
        Optional sink object (``emit(dict)``/``close()``) receiving
        structured trace events; excluded from equality/hashing since
        sinks are stateful handles, not settings.
    progress:
        Campaign progress reporting: ``False``/``None`` off, ``True``
        for a stderr line, or a
        :class:`~repro.observe.progress.CampaignProgress` instance.
        Likewise excluded from equality.
    journal:
        Path to an append-only campaign journal
        (:class:`~repro.campaignd.journal.CampaignJournal`).  Setting
        it routes multi-cell entry points through the campaign
        service: every completed cell is durably recorded, and a
        rerun resumes instead of recomputing.  Like every other knob,
        journaling never changes results — only crash behaviour.
    driver:
        Campaign execution backend: ``None``/``"local"`` for the
        in-process pool/fleet paths, ``"subprocess"`` for ``repro
        worker`` subprocesses sharding over the shared cache
        directory.  Any non-``None`` value routes through the
        campaign service.  Results are bit-identical across drivers.
    retries:
        Extra service-level attempts for failed cells (0 = fail
        fast).  A non-zero value routes through the campaign service.
    retry_backoff_seconds:
        Base of the exponential sleep between retry attempts.
    cell_timeout_seconds:
        Wall-clock bound on one worker shard; requires the
        ``subprocess`` driver (the in-process pool cannot kill a
        stuck worker).  Setting it routes through the service.
    """

    workers: int = 1
    fleet: bool = False
    chunk_refs: int = DEFAULT_CHUNK_REFS
    cache_dir: Optional[str] = None
    use_cache: bool = True
    sanitize: Optional[str] = None
    observe: bool = False
    epoch_refs: int = DEFAULT_EPOCH_REFS
    trace_sink: Optional[Any] = field(
        default=None, compare=False, hash=False
    )
    progress: Any = field(default=None, compare=False, hash=False)
    journal: Optional[str] = None
    driver: Optional[str] = None
    retries: int = 0
    retry_backoff_seconds: float = 0.5
    cell_timeout_seconds: Optional[float] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.chunk_refs < 0:
            raise ValueError(
                f"chunk_refs must be >= 0, got {self.chunk_refs}"
            )
        if self.epoch_refs < 1:
            raise ValueError(
                f"epoch_refs must be >= 1, got {self.epoch_refs}"
            )
        if self.sanitize is not None:
            from repro.sanitize.sanitizer import MODES

            if self.sanitize not in MODES:
                raise ValueError(
                    f"unknown sanitize mode {self.sanitize!r}; "
                    f"expected one of {sorted(MODES)}"
                )
        if self.driver not in (None, "local", "subprocess"):
            raise ValueError(
                f"unknown driver {self.driver!r}; expected 'local' "
                f"or 'subprocess'"
            )
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be >= 0, got "
                f"{self.retry_backoff_seconds}"
            )
        if (self.cell_timeout_seconds is not None
                and self.cell_timeout_seconds <= 0):
            raise ValueError(
                f"cell_timeout_seconds must be > 0, got "
                f"{self.cell_timeout_seconds}"
            )
        if (self.cell_timeout_seconds is not None
                and self.driver != "subprocess"):
            raise ValueError(
                "cell_timeout_seconds requires driver='subprocess' "
                "(the in-process pool cannot kill a stuck worker)"
            )

    @property
    def campaignd(self):
        """Whether these options route through the campaign service."""
        return (
            self.journal is not None
            or self.driver is not None
            or self.retries > 0
            or self.cell_timeout_seconds is not None
        )

    def build_cache(self):
        """The :class:`ResultCache` these options describe, or ``None``."""
        if not self.use_cache or not self.cache_dir:
            return None
        from repro.parallel.cache import ResultCache

        return ResultCache(self.cache_dir)

    def replace(self, **changes):
        """A copy with *changes* applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def coerce(cls, options):
        """Normalise ``None`` to default options (driver entry helper)."""
        if options is None:
            return cls()
        if not isinstance(options, cls):
            raise TypeError(
                f"options must be a RunOptions, got "
                f"{type(options).__name__}"
            )
        return options


__all__ = ["RunOptions"]
