"""Parallel experiment execution and deterministic result caching.

The experiment matrices behind the paper's tables are embarrassingly
parallel: every (config, workload, seed) cell is an independent
cold-start simulation.  :func:`execute_cells` fans cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and merges the
results back in submission order, so parallel runs are bit-identical
to serial ones; :class:`ResultCache` persists each cell's
:class:`~repro.machine.runner.RunResult` under a stable hash of its
inputs, so re-running a bench or sweep only simulates changed cells.

See ``docs/parallel.md`` for the cache-key derivation and the
determinism guarantees.
"""

from repro.parallel.cache import (
    CACHE_FORMAT,
    CacheKeyError,
    ResultCache,
    cache_key,
    result_from_payload,
    result_to_payload,
    workload_spec,
)
from repro.parallel.executor import (
    CampaignError,
    CellFailure,
    RunCell,
    execute_cells,
    run_pending,
    simulate_cell,
)

__all__ = [
    "CACHE_FORMAT",
    "CacheKeyError",
    "CampaignError",
    "CellFailure",
    "ResultCache",
    "RunCell",
    "cache_key",
    "execute_cells",
    "result_from_payload",
    "result_to_payload",
    "run_pending",
    "simulate_cell",
    "workload_spec",
]
