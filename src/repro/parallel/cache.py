"""On-disk result cache keyed by a stable hash of run inputs.

A simulation run is a pure function of (machine config, workload
recipe, seed, reference cap): the machine starts cold, the workload
re-instantiates from its recipe, and every random draw descends from
the seed.  :func:`cache_key` derives a SHA-256 digest from a canonical
JSON rendering of exactly those inputs, so equal inputs hash equally
across processes and sessions and *any* field change — a different
memory size, policy, length scale, seed — produces a different key
(config change => cache miss).

The cache stores one JSON payload per key under
``<root>/<key[:2]>/<key>.json``.  Payloads carry a format version;
bump :data:`CACHE_FORMAT` when simulator semantics change so stale
entries become misses instead of wrong answers.  The host-timing field
``host_seconds`` is deliberately excluded from the payload (and from
:class:`~repro.machine.runner.RunResult` equality): wall-clock noise
must never defeat a cache hit or fail a parallel-vs-serial comparison.
"""

import dataclasses
import enum
import hashlib
import json
import os
import pathlib

from repro.counters.events import Event
from repro.machine.runner import RunResult

#: Bump when RunResult fields or simulator semantics change; old
#: payloads then read as misses rather than stale hits.
CACHE_FORMAT = 1


class CacheKeyError(TypeError):
    """An input value has no canonical (stable) rendering."""


def _canonical(value):
    """Render *value* as JSON-serialisable, deterministic structure.

    Handles the types experiment inputs are made of: primitives,
    sequences, dicts, enums, and (nested) dataclasses such as
    :class:`MachineConfig` and the workload profile records.  Anything
    else raises :class:`CacheKeyError` — a loud failure beats a key
    that silently varies between processes (e.g. a default ``repr``
    embedding an object address).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly and avoids 1 vs 1.0 JSON
        # ambiguity against the int branch above.
        return {"__float__": repr(value)}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__qualname__}.{value.name}"}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        rendered = [_canonical(item) for item in value]
        return {"__set__": sorted(rendered, key=_sort_key)}
    if isinstance(value, dict):
        items = [
            [_canonical(key), _canonical(val)]
            for key, val in value.items()
        ]
        items.sort(key=lambda pair: _sort_key(pair[0]))
        return {"__dict__": items}
    raise CacheKeyError(
        f"cannot derive a stable cache key from "
        f"{type(value).__qualname__!r} value {value!r}"
    )


def _sort_key(rendered):
    """A total order over canonical renderings (for sets and dicts)."""
    return json.dumps(rendered, sort_keys=True)


def workload_spec(workload):
    """Canonical spec of a workload recipe: class plus constructor state.

    Recipes are plain objects whose ``__dict__`` holds only scalars
    and profile dataclasses, so their instance state *is* their spec;
    the class identity distinguishes two recipes that happen to share
    field names.
    """
    cls = type(workload)
    return {
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "state": _canonical(vars(workload)),
    }


def cache_key(config, workload, seed=0, max_references=None):
    """Stable hex digest of one run's complete input set."""
    spec = {
        "format": CACHE_FORMAT,
        "config": _canonical(config),
        "workload": workload_spec(workload),
        "seed": seed,
        "max_references": max_references,
    }
    encoded = json.dumps(
        spec, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def result_to_payload(result):
    """Serialise a :class:`RunResult` for the cache.

    ``host_seconds`` is excluded by design: it measures this host's
    wall clock, not the simulation, and would otherwise make every
    cached result compare unequal to its recomputation.
    """
    return {
        "format": CACHE_FORMAT,
        "workload": result.workload,
        "config_name": result.config_name,
        "memory_bytes": result.memory_bytes,
        "dirty_policy": result.dirty_policy,
        "reference_policy": result.reference_policy,
        "seed": result.seed,
        "references": result.references,
        "cycles": result.cycles,
        "events": {
            event.name: count for event, count in result.events.items()
        },
        "page_ins": result.page_ins,
        "page_outs": result.page_outs,
        "zero_fills": result.zero_fills,
        "potentially_modified": result.potentially_modified,
        "not_modified": result.not_modified,
    }


def result_from_payload(payload):
    """Rebuild a :class:`RunResult` from a cache payload.

    Raises ``KeyError``/``TypeError`` on malformed payloads; callers
    treat those as cache misses.  ``host_seconds`` comes back 0.0 — a
    cache hit did no host work.
    """
    return RunResult(
        workload=payload["workload"],
        config_name=payload["config_name"],
        memory_bytes=payload["memory_bytes"],
        dirty_policy=payload["dirty_policy"],
        reference_policy=payload["reference_policy"],
        seed=payload["seed"],
        references=payload["references"],
        cycles=payload["cycles"],
        events={
            Event[name]: count
            for name, count in payload["events"].items()
        },
        page_ins=payload["page_ins"],
        page_outs=payload["page_outs"],
        zero_fills=payload["zero_fills"],
        potentially_modified=payload["potentially_modified"],
        not_modified=payload["not_modified"],
    )


class ResultCache:
    """Directory of cached :class:`RunResult` payloads.

    Entries are written atomically (temp file + ``os.replace``) so a
    killed run never leaves a truncated payload behind; unreadable or
    version-mismatched entries read as misses.  ``hits`` / ``misses``
    / ``stores`` count this instance's traffic, which is what the
    equivalence tests (and ``repro campaign``) report.
    """

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key):
        """Where *key*'s payload lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key):
        """The cached :class:`RunResult` for *key*, or ``None``."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(payload, dict)
                or payload.get("format") != CACHE_FORMAT):
            self.misses += 1
            return None
        try:
            result = result_from_payload(payload)
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key, result):
        """Persist *result* under *key* (atomic replace)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            result_to_payload(result), sort_keys=True
        )
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(payload + "\n", encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1

    def __len__(self):
        return sum(
            1 for _ in self.root.glob("??/*.json")
        )

    def clear(self):
        """Drop every cached entry (keeps the directory)."""
        for path in self.root.glob("??/*.json"):
            path.unlink()

    def stats_line(self):
        """One-line traffic summary for CLI output."""
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores ({self.root})"
        )
