"""Multiprocess fan-out of independent simulation cells.

One :class:`RunCell` is one cold-start simulation — the unit the
experiment matrices are built from.  :func:`execute_cells` resolves
each cell against an optional :class:`~repro.parallel.cache.ResultCache`,
simulates the misses (serially, or over a pool of worker processes),
and returns results in the order the cells were given.  Because every
cell is fully determined by its inputs and cells share no state, the
worker count changes wall-clock time only: the returned
:class:`~repro.machine.runner.RunResult` list is bit-identical for any
``workers`` value (``host_seconds`` and ``observation``, both excluded
from result equality, are the lone per-host fields).

Failures degrade gracefully: a cell that raises never aborts the
campaign.  Remaining cells run to completion, each failure is recorded
as a :class:`CellFailure` naming the cell's label and seed, and a
single :class:`CampaignError` carrying the failures *and* the partial
results is raised at the end — so a 40-cell campaign with one bad cell
still yields 39 results and one precise diagnosis instead of a bare
mid-pool traceback.

Observability is parent-side only: workers return their counter series
inside ``RunResult.observation``; the parent emits trace events to the
optional ``sink`` and drives the optional ``progress`` reporter.
"""

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import ReproError
from repro.observe.series import DEFAULT_EPOCH_REFS
from repro.parallel.cache import CacheKeyError, cache_key
from repro.workloads.base import DEFAULT_CHUNK_REFS


@dataclass(frozen=True)
class RunCell:
    """Inputs of one independent simulation run.

    ``seed`` is the final per-run seed (any master-seed mixing happens
    in :class:`~repro.machine.runner.ExperimentRunner` before cells
    are built).  ``sanitize`` optionally names a
    :mod:`repro.sanitize` mode to run the cell under; it is not part
    of the cache key because the sanitizer observes without altering
    results.  ``chunk_refs`` selects the batched hot-loop path (0 =
    legacy tuple stream); it is likewise excluded from the cache key
    because both paths produce bit-identical results.  ``label``
    names the cell in trace events, progress lines, and failure
    reports; ``observe``/``epoch_refs`` attach a
    :class:`~repro.observe.observer.RunObserver` in the worker, whose
    series ride back on ``RunResult.observation``.  None of the new
    fields enter the cache key — telemetry never changes what a run
    measures.
    """

    config: Any
    workload: Any
    seed: int = 0
    max_references: Optional[int] = None
    sanitize: Optional[str] = None
    chunk_refs: int = DEFAULT_CHUNK_REFS
    label: Optional[str] = None
    observe: bool = False
    epoch_refs: int = DEFAULT_EPOCH_REFS


@dataclass(frozen=True)
class CellFailure:
    """One failed campaign cell, with enough context to re-run it."""

    index: int
    label: Optional[str]
    seed: int
    workload: str
    config: Optional[str]
    error: str

    def describe(self):
        """One-line human-readable rendering."""
        name = self.label or f"cell {self.index}"
        return (
            f"{name} (workload={self.workload}, seed={self.seed}): "
            f"{self.error}"
        )


class CampaignError(ReproError):
    """One or more campaign cells failed (the rest completed).

    Carries ``failures`` (a list of :class:`CellFailure`) and
    ``results`` — the full result list in cell order, with ``None``
    at each failed index — so callers can report precisely and still
    use the partial campaign.
    """

    def __init__(self, failures, results):
        self.failures = list(failures)
        self.results = results
        lines = "; ".join(
            failure.describe() for failure in self.failures[:3]
        )
        if len(self.failures) > 3:
            lines += f"; ... ({len(self.failures)} failures total)"
        super().__init__(
            f"{len(self.failures)} of {len(results)} campaign cells "
            f"failed: {lines}"
        )


def simulate_cell(cell):
    """Run one cell from scratch; the process-pool work function.

    Module-level (picklable) and self-contained: workers rebuild the
    machine and workload instance from the cell's recipe, so nothing
    leaks between cells regardless of which process runs them.
    """
    from repro.machine.runner import ExperimentRunner
    from repro.options import RunOptions

    runner = ExperimentRunner(options=RunOptions(
        chunk_refs=cell.chunk_refs,
        sanitize=cell.sanitize,
        observe=cell.observe,
        epoch_refs=cell.epoch_refs,
    ))
    return runner.run(
        cell.config, cell.workload, seed=cell.seed,
        max_references=cell.max_references, label=cell.label,
    )


def _failure(index, cell, error):
    """Build the :class:`CellFailure` record for one raised cell."""
    return CellFailure(
        index=index,
        label=cell.label,
        seed=cell.seed,
        workload=type(cell.workload).__name__,
        config=getattr(cell.config, "name", None),
        error=f"{type(error).__name__}: {error}",
    )


def run_pending(cells, pending, record, workers=1, fleet=False,
                sink=None):
    """Simulate the *pending* subset of *cells* through a work path.

    The execution core shared by :func:`execute_cells` and the
    campaign service's :class:`~repro.campaignd.drivers.LocalDriver`:
    picks the in-process, process-pool, or lockstep-fleet path and
    feeds every outcome to ``record(index, outcome)`` — a
    :class:`~repro.machine.runner.RunResult` on success, the raised
    exception on failure.  ``record`` is always called from the
    calling process (workers return values; they never call back), so
    callers may journal, cache, and emit from it without locking.
    """
    from repro.observe.sinks import stamp

    if fleet and pending:
        from repro.fleet.runner import simulate_cells_fleet

        simulate_cells_fleet(cells, pending, record)
    elif workers <= 1 or len(pending) <= 1:
        for index in pending:
            try:
                outcome = simulate_cell(cells[index])
            except Exception as error:
                outcome = error
            record(index, outcome)
    else:
        pool_size = min(workers, len(pending))
        if sink is not None:
            sink.emit(stamp({
                "type": "worker_pool_started",
                "workers": pool_size,
                "cells": len(pending),
            }))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(simulate_cell, cells[index]): index
                for index in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in done:
                    error = future.exception()
                    record(
                        futures[future],
                        error if error is not None
                        else future.result(),
                    )
        if sink is not None:
            sink.emit(stamp({
                "type": "worker_pool_finished",
                "workers": pool_size,
            }))


def execute_cells(cells, workers=1, cache=None, sink=None,
                  progress=None, fleet=False):
    """Execute *cells*, returning results in the given cell order.

    Parameters
    ----------
    cells:
        Iterable of :class:`RunCell`.
    workers:
        Process count; 1 simulates in-process (no pool is created).
    fleet:
        Step every pending cell in lockstep inside this process
        (:func:`repro.fleet.runner.simulate_cells_fleet`) instead of
        fanning out — bit-identical results, one vectorized pass
        across all machines.  When set, ``workers`` is ignored and no
        pool is spawned.
    cache:
        Optional :class:`ResultCache`.  Hits skip simulation entirely;
        misses are simulated then stored.  Cells whose inputs cannot
        be canonically hashed (:class:`CacheKeyError`) are simulated
        unconditionally and never stored — correctness first.
    sink:
        Optional trace sink (``emit(dict)``); receives campaign,
        cell, and worker-pool lifecycle events plus each completed
        run's records (parent process only).
    progress:
        ``True`` for a stderr progress line, or a
        :class:`~repro.observe.progress.CampaignProgress` instance.

    Raises :class:`CampaignError` after all cells have been given
    their chance if any cell failed; successful results (and cache
    stores) survive the error.
    """
    from repro.observe.progress import CampaignProgress
    from repro.observe.sinks import emit_cell, emit_run, stamp

    cells = list(cells)
    results = [None] * len(cells)
    keys = [None] * len(cells)
    hits = []
    pending = []
    for index, cell in enumerate(cells):
        if cache is not None:
            try:
                keys[index] = cache_key(
                    cell.config, cell.workload, cell.seed,
                    cell.max_references,
                )
            except CacheKeyError:
                keys[index] = None
            if keys[index] is not None:
                hit = cache.get(keys[index])
                if hit is not None:
                    results[index] = hit
                    hits.append(index)
                    continue
        pending.append(index)

    progress = CampaignProgress.coerce(progress, len(cells))
    if sink is not None:
        sink.emit(stamp({
            "type": "campaign_started",
            "cells": len(cells),
            "cached": len(hits),
            "workers": workers,
            "fleet": bool(fleet),
        }))
    for index in hits:
        emit_cell(sink, "cell_cached", index, cells[index])
        if progress is not None:
            progress.cell_cached()

    failures = []

    def record(index, outcome):
        """Fold one finished/raised cell into results and telemetry."""
        cell = cells[index]
        if isinstance(outcome, BaseException):
            failures.append(_failure(index, cell, outcome))
            emit_cell(sink, "cell_failed", index, cell,
                      error=f"{type(outcome).__name__}: {outcome}")
            if progress is not None:
                progress.cell_failed()
        else:
            results[index] = outcome
            emit_run(sink, outcome, label=cell.label)
            emit_cell(sink, "cell_finished", index, cell)
            if progress is not None:
                progress.cell_finished()

    run_pending(cells, pending, record, workers=workers, fleet=fleet,
                sink=sink)

    if cache is not None:
        # Stores happen in the parent, after the pool has drained, so
        # concurrent workers never race on the cache directory.
        for index in pending:
            if keys[index] is not None and results[index] is not None:
                cache.put(keys[index], results[index])

    if progress is not None:
        progress.finish()
    if sink is not None:
        sink.emit(stamp({
            "type": "campaign_finished",
            "cells": len(cells),
            "cached": len(hits),
            "failed": len(failures),
        }))
    if failures:
        failures.sort(key=lambda failure: failure.index)
        raise CampaignError(failures, results)
    return results
