"""Multiprocess fan-out of independent simulation cells.

One :class:`RunCell` is one cold-start simulation — the unit the
experiment matrices are built from.  :func:`execute_cells` resolves
each cell against an optional :class:`~repro.parallel.cache.ResultCache`,
simulates the misses (serially, or over a pool of worker processes),
and returns results in the order the cells were given.  Because every
cell is fully determined by its inputs and cells share no state, the
worker count changes wall-clock time only: the returned
:class:`~repro.machine.runner.RunResult` list is bit-identical for any
``workers`` value (``host_seconds``, which is excluded from result
equality, is the lone per-host field).
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional

from repro.parallel.cache import CacheKeyError, cache_key
from repro.workloads.base import DEFAULT_CHUNK_REFS


@dataclass(frozen=True)
class RunCell:
    """Inputs of one independent simulation run.

    ``seed`` is the final per-run seed (any master-seed mixing happens
    in :class:`~repro.machine.runner.ExperimentRunner` before cells
    are built).  ``sanitize`` optionally names a
    :mod:`repro.sanitize` mode to run the cell under; it is not part
    of the cache key because the sanitizer observes without altering
    results.  ``chunk_refs`` selects the batched hot-loop path (0 =
    legacy tuple stream); it is likewise excluded from the cache key
    because both paths produce bit-identical results.
    """

    config: Any
    workload: Any
    seed: int = 0
    max_references: Optional[int] = None
    sanitize: Optional[str] = None
    chunk_refs: int = DEFAULT_CHUNK_REFS


def simulate_cell(cell):
    """Run one cell from scratch; the process-pool work function.

    Module-level (picklable) and self-contained: workers rebuild the
    machine and workload instance from the cell's recipe, so nothing
    leaks between cells regardless of which process runs them.
    """
    from repro.machine.runner import ExperimentRunner

    runner = ExperimentRunner(
        sanitize=cell.sanitize, chunk_refs=cell.chunk_refs
    )
    return runner.run(
        cell.config, cell.workload, seed=cell.seed,
        max_references=cell.max_references,
    )


def execute_cells(cells, workers=1, cache=None):
    """Execute *cells*, returning results in the given cell order.

    Parameters
    ----------
    cells:
        Iterable of :class:`RunCell`.
    workers:
        Process count; 1 simulates in-process (no pool is created).
    cache:
        Optional :class:`ResultCache`.  Hits skip simulation entirely;
        misses are simulated then stored.  Cells whose inputs cannot
        be canonically hashed (:class:`CacheKeyError`) are simulated
        unconditionally and never stored — correctness first.
    """
    cells = list(cells)
    results = [None] * len(cells)
    keys = [None] * len(cells)
    pending = []
    for index, cell in enumerate(cells):
        if cache is not None:
            try:
                keys[index] = cache_key(
                    cell.config, cell.workload, cell.seed,
                    cell.max_references,
                )
            except CacheKeyError:
                keys[index] = None
            if keys[index] is not None:
                hit = cache.get(keys[index])
                if hit is not None:
                    results[index] = hit
                    continue
        pending.append(index)

    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            results[index] = simulate_cell(cells[index])
    else:
        pool_size = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            outcomes = pool.map(
                simulate_cell, [cells[index] for index in pending]
            )
            for index, result in zip(pending, outcomes):
                results[index] = result

    if cache is not None:
        # Stores happen in the parent, after the pool has drained, so
        # concurrent workers never race on the cache directory.
        for index in pending:
            if keys[index] is not None:
                cache.put(keys[index], results[index])
    return results
