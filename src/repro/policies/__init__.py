"""Reference- and dirty-bit maintenance policies.

This package is the paper's primary contribution: the five dirty-bit
alternatives of Table 3.1 (FAULT, FLUSH, SPUR, WRITE, and the MIN
lower bound), the three reference-bit policies of Section 4 (MISS,
REF, NOREF), the analytic overhead models of Section 3.2, and the
geometric excess-fault model of footnote 3.

Two complementary evaluation styles are supported, matching the paper:

* **Analytic** — feed measured event counts (Table 3.3) into the
  :mod:`repro.policies.costs` models to produce Table 3.4.
* **Closed-loop** — install a policy object into a
  :class:`repro.machine.SpurMachine` and simulate, which is how the
  Table 4.1 reference-bit results (and Table 3.3 itself) are produced.
"""

from repro.policies.costs import (
    DIRTY_POLICY_NAMES,
    EventCounts,
    TimeParameters,
    overhead,
    overhead_table,
)
from repro.policies.dirty import (
    DirtyBitPolicy,
    FaultDirtyPolicy,
    FlushDirtyPolicy,
    MinDirtyPolicy,
    ProtectionMissDirtyPolicy,
    SpurDirtyPolicy,
    WriteDirtyPolicy,
    make_dirty_policy,
)
from repro.policies.reference import (
    MissReferencePolicy,
    NoReferencePolicy,
    ReferenceBitPolicy,
    TrueReferencePolicy,
    make_reference_policy,
)
from repro.policies.model import ExcessFaultModel

__all__ = [
    "DIRTY_POLICY_NAMES",
    "DirtyBitPolicy",
    "EventCounts",
    "ExcessFaultModel",
    "FaultDirtyPolicy",
    "FlushDirtyPolicy",
    "MinDirtyPolicy",
    "MissReferencePolicy",
    "NoReferencePolicy",
    "ProtectionMissDirtyPolicy",
    "ReferenceBitPolicy",
    "SpurDirtyPolicy",
    "TimeParameters",
    "TrueReferencePolicy",
    "WriteDirtyPolicy",
    "make_dirty_policy",
    "make_reference_policy",
    "overhead",
    "overhead_table",
]
