"""Analytic overhead models for the dirty-bit alternatives.

Section 3.2 of the paper expresses each policy's overhead in terms of
five event counts and four time parameters:

.. math::

    O(FAULT) &= (N_{ds} + N_{ef})\\, t_{ds} \\\\
    O(FLUSH) &= N_{ds} (t_{ds} + t_{flush}) \\\\
    O(SPUR)  &= N_{ds} (t_{ds} + t_{dm}) + N_{dm} t_{dm} \\\\
    O(WRITE) &= N_{ds} t_{ds} + N_{w\\text{-}hit}\\, t_{dc} \\\\
    O(MIN)   &= N_{ds} t_{ds}

Table 3.4 excludes zero-fill faults from :math:`N_{ds}` because they
are not intrinsic (the substitution :math:`N_{ds} - N_{zfod}` for
:math:`N_{ds}`); :func:`overhead` supports both variants so the
ablation bench can show the difference.
"""

from dataclasses import dataclass

from repro.common.errors import ConfigurationError

#: Policy names in the column order of Table 3.4.
DIRTY_POLICY_NAMES = ("MIN", "FAULT", "FLUSH", "SPUR", "WRITE")


@dataclass(frozen=True)
class TimeParameters:
    """Table 3.2: handler and mechanism costs, in processor cycles."""

    t_ds: int = 1000     # handler sets a dirty bit
    t_flush: int = 500   # tag-checked flush of one page
    t_dm: int = 25       # update a cached (stale) dirty bit
    t_dc: int = 5        # check the PTE dirty bit on a write hit

    def __post_init__(self):
        for name in ("t_ds", "t_flush", "t_dm", "t_dc"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EventCounts:
    """Table 3.3: event frequencies for one (workload, memory) point.

    Attributes
    ----------
    n_ds:
        Necessary dirty-bit faults (first write to each clean page).
    n_zfod:
        The subset of ``n_ds`` raised by zero-filled stack/heap pages.
    n_ef:
        Writes to previously cached blocks whose cached dirty
        information was stale.  Under protection emulation these are
        excess faults; under the SPUR scheme the *same events* are
        dirty-bit misses, hence the paper's
        :math:`N_{ef} = N_{dm}` identity.
    n_w_hit:
        Blocks brought into the cache by a read and later modified.
    n_w_miss:
        Blocks brought into the cache by a write miss.
    """

    n_ds: int
    n_zfod: int
    n_ef: int
    n_w_hit: int
    n_w_miss: int

    def __post_init__(self):
        for name in ("n_ds", "n_zfod", "n_ef", "n_w_hit", "n_w_miss"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.n_zfod > self.n_ds:
            raise ConfigurationError(
                "zero-fill faults cannot exceed total dirty faults"
            )

    @property
    def n_dm(self):
        """SPUR dirty-bit misses — the same events as ``n_ef``."""
        return self.n_ef

    def necessary_faults(self, exclude_zero_fill=True):
        """Intrinsic dirty faults, optionally without zero-fills."""
        if exclude_zero_fill:
            return self.n_ds - self.n_zfod
        return self.n_ds

    @property
    def excess_fault_fraction(self):
        """Excess faults as a fraction of all dirty faults."""
        if self.n_ds == 0:
            return 0.0
        return self.n_ef / self.n_ds

    @property
    def excess_fault_fraction_excluding_zfod(self):
        """Excess faults over non-zero-fill dirty faults (Section 3.2)."""
        intrinsic = self.n_ds - self.n_zfod
        if intrinsic == 0:
            return 0.0
        return self.n_ef / intrinsic

    @property
    def read_before_write_fraction(self):
        """Fraction of modified blocks read before written.

        The paper observes this is roughly one fifth (16%-24%) and
        feeds it to the footnote-3 model.
        """
        total = self.n_w_hit + self.n_w_miss
        if total == 0:
            return 0.0
        return self.n_w_hit / total


def overhead(policy, counts, times=None, exclude_zero_fill=True):
    """Cycles of dirty-bit overhead for one policy (Section 3.2).

    Parameters
    ----------
    policy:
        One of :data:`DIRTY_POLICY_NAMES` (case insensitive).
    counts:
        :class:`EventCounts` for the measurement point.
    times:
        :class:`TimeParameters`; defaults to Table 3.2's values.
    exclude_zero_fill:
        Substitute :math:`N_{ds} - N_{zfod}` for :math:`N_{ds}`, as
        Table 3.4 does.
    """
    times = times or TimeParameters()
    n_ds = counts.necessary_faults(exclude_zero_fill)
    name = policy.upper()
    if name == "MIN":
        return n_ds * times.t_ds
    if name == "FAULT":
        return (n_ds + counts.n_ef) * times.t_ds
    if name == "FLUSH":
        return n_ds * (times.t_ds + times.t_flush)
    if name == "SPUR":
        return (
            n_ds * (times.t_ds + times.t_dm)
            + counts.n_dm * times.t_dm
        )
    if name == "WRITE":
        return n_ds * times.t_ds + counts.n_w_hit * times.t_dc
    raise ConfigurationError(
        f"unknown dirty-bit policy {policy!r}; "
        f"expected one of {DIRTY_POLICY_NAMES}"
    )


def overhead_table(counts, times=None, exclude_zero_fill=True):
    """All five policies' overheads for one measurement point.

    Returns ``{policy: (cycles, ratio to MIN)}`` in Table 3.4's
    column order, which is how the bench renders the table.
    """
    times = times or TimeParameters()
    results = {}
    baseline = overhead("MIN", counts, times, exclude_zero_fill)
    for name in DIRTY_POLICY_NAMES:
        cycles = overhead(name, counts, times, exclude_zero_fill)
        ratio = cycles / baseline if baseline else float("nan")
        results[name] = (cycles, ratio)
    return results
