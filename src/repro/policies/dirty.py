"""The five dirty-bit maintenance alternatives (Table 3.1).

Each policy plugs into :class:`repro.machine.SpurMachine` at three
points:

* :meth:`~DirtyBitPolicy.map_protection` — the hardware protection a
  freshly mapped writable page receives (the FAULT and FLUSH
  alternatives map writable pages read-only to emulate the dirty bit);
* :meth:`~DirtyBitPolicy.handle_write_hit` — the slow path for a write
  that hits a cache block whose dirty information is not yet settled
  (stale protection, clear cached page-dirty bit, or first write to
  the block);
* :meth:`~DirtyBitPolicy.on_write_miss` — dirty-bit work folded into a
  write miss, where the PTE is in hand anyway.

The cycle charges mirror the analytic models of Section 3.2 exactly,
so a closed-loop simulation and the Table 3.4 arithmetic agree on the
same events.
"""

from repro.common.errors import ConfigurationError
from repro.common.types import PageKind, Protection
from repro.counters.events import Event


class DirtyBitPolicy:
    """Base class; concrete policies override the three hooks."""

    #: Policy name as used in the paper's tables.
    name = "ABSTRACT"

    #: Whether a set cached page-dirty copy implies the PTE records the
    #: page as modified.  True for every policy whose
    #: :meth:`fill_page_dirty` derives the copy from the PTE; the WRITE
    #: policy overrides this because it fills the copy unconditionally
    #: (the PTE is consulted on every first block write instead).  The
    #: runtime sanitizer keys its dirty-bit invariant on this flag.
    cached_dirty_tracks_pte = True

    def map_protection(self, writable):
        """Hardware protection for a freshly mapped page."""
        return Protection.READ_WRITE if writable else Protection.READ_ONLY

    def fill_page_dirty(self, pte):
        """Value of the cached page-dirty copy for a new fill.

        True means "no dirty-bit work remains for this page", which is
        the hot loop's licence to skip the slow path.
        """
        return pte.is_modified()

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        """Resolve a write hit needing dirty-bit work; returns cycles."""
        raise NotImplementedError

    def on_write_miss(self, machine, pte, page):
        """Dirty-bit work on a write miss; returns cycles."""
        if pte.is_modified():
            return 0
        return self._necessary_fault(machine, pte)

    def write_miss_settled(self, pte):
        """True iff :meth:`on_write_miss` would be a zero-cycle no-op.

        The chunked hot loop's batched resolver uses this to keep
        settled write misses off the slow path; a policy that changes
        :meth:`on_write_miss`'s no-op condition must override this
        predicate to match (the chunked-equivalence grid enforces the
        pairing).
        """
        return pte.is_modified()

    def write_hit_settled(self, cache, index):
        """True iff :meth:`handle_write_hit` would be a zero-cycle,
        zero-mutation no-op for this cached line.

        The chunked hot loop's batched resolver uses this to keep
        settled write hits (only the block-dirty bit needs setting)
        off the slow path.  A True return also asserts the write
        cannot protection-fault: a set page-dirty copy means a write
        to the page already succeeded, and a cached read-write
        protection means the mapping granted it, so the resolver skips
        the slow path's region-writable recheck.  The default is the
        conservative ``False``; a policy overriding
        :meth:`handle_write_hit` with a cheap settled branch should
        override this predicate to match (the chunked-equivalence grid
        enforces the pairing).
        """
        return False

    # -- shared handler pieces -------------------------------------------

    def _necessary_fault(self, machine, pte):
        """Take the fault that actually sets the dirty bit."""
        counters = machine.counters
        counters.increment(Event.DIRTY_FAULT)
        if pte.kind is PageKind.ZERO_FILL:
            counters.increment(Event.ZERO_FILL_DIRTY_FAULT)
        self._set_dirty(pte)
        return machine.fault_timing.dirty_fault

    def _set_dirty(self, pte):
        """Record the page as modified (hardware bit by default)."""
        pte.dirty = True

    def __repr__(self):
        return f"{type(self).__name__}()"


class FaultDirtyPolicy(DirtyBitPolicy):
    """FAULT: emulate dirty bits with protection.

    Writable pages are mapped read-only; the first write faults, and
    the handler sets a software dirty bit and raises the protection to
    read-write.  Blocks cached *before* the promotion keep their stale
    read-only copies, so writes to them fault too — the excess faults
    of Figure 3.1.  No hardware support beyond ordinary protection
    checking is needed.
    """

    name = "FAULT"

    def map_protection(self, writable):
        # Writable pages start read-only: that is the emulation.
        return Protection.READ_ONLY

    def _set_dirty(self, pte):
        pte.software_dirty = True
        pte.protection = Protection.READ_WRITE

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        cache = machine.cache
        if cache.prot[index] == int(Protection.READ_WRITE):
            # Protection already settled; only the block-dirty bit was
            # clear.  No policy work.
            return 0
        if pte.is_modified():
            # Stale cached protection: the PTE was promoted by an
            # earlier fault on another block of this page.
            machine.counters.increment(Event.EXCESS_FAULT)
            cache.prot[index] = int(Protection.READ_WRITE)
            cache.page_dirty[index] = True
            return machine.fault_timing.dirty_fault
        cycles = self._necessary_fault(machine, pte)
        # The handler repairs the faulting block's cached protection so
        # the retried write proceeds.
        cache.prot[index] = int(Protection.READ_WRITE)
        cache.page_dirty[index] = True
        return cycles

    def write_hit_settled(self, cache, index):
        # Mirrors the handler's first branch (FLUSH inherits both).
        return cache.prot[index] == int(Protection.READ_WRITE)


class FlushDirtyPolicy(FaultDirtyPolicy):
    """FLUSH: protection emulation plus a page flush on the fault.

    Flushing the page when the necessary fault occurs guarantees no
    block remains cached with the old protection, eliminating excess
    faults at the price of one page flush per dirtied page (and the
    misses to re-fetch any flushed blocks that are used again).
    """

    name = "FLUSH"

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        cache = machine.cache
        if cache.prot[index] == int(Protection.READ_WRITE):
            return 0
        if pte.is_modified():
            # Should be rare to impossible (the flush removed stale
            # blocks), but a block filled between fault and flush of
            # a concurrent processor could land here; treat it as the
            # FAULT policy would.
            machine.counters.increment(Event.EXCESS_FAULT)
            cache.prot[index] = int(Protection.READ_WRITE)
            cache.page_dirty[index] = True
            return machine.fault_timing.dirty_fault
        cycles = self._necessary_fault(machine, pte)
        cycles += self._flush_page(machine, vaddr)
        # The faulting block itself was flushed; re-fetch it with the
        # promoted protection, as the retried write's miss would.
        _, fill_cycles = cache.fill(
            vaddr, pte.protection, page_dirty=True, by_write=True
        )
        return cycles + fill_cycles

    def on_write_miss(self, machine, pte, page):
        if pte.is_modified():
            return 0
        cycles = self._necessary_fault(machine, pte)
        page_vaddr = page.vpn * machine.page_bytes
        cycles += self._flush_page(machine, page_vaddr)
        return cycles

    def _flush_page(self, machine, vaddr):
        page_vaddr = vaddr & ~(machine.page_bytes - 1)
        return machine.flush_page(page_vaddr)


class SpurDirtyPolicy(DirtyBitPolicy):
    """SPUR: cache a copy of the page dirty bit with each block.

    On a write to a block whose cached copy says "clean", the hardware
    checks the PTE.  If the PTE is also clean this is the first write
    to the page and a dirty-bit fault sets it; if the PTE is already
    dirty the cached copy is merely out of date and a ~25-cycle *dirty
    bit miss* refreshes it — the mechanism SPUR spent one tag bit and
    14 PLA product terms on.
    """

    name = "SPUR"

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        cache = machine.cache
        if cache.page_dirty[index]:
            return 0
        timing = machine.fault_timing
        if pte.dirty:
            machine.counters.increment(Event.DIRTY_BIT_MISS)
            cache.page_dirty[index] = True
            return timing.dirty_bit_miss
        cycles = self._necessary_fault(machine, pte)
        # The handler's return forces the cached copy update (the
        # "dirty bit miss" mechanism), hence the extra t_dm in O(SPUR).
        cache.page_dirty[index] = True
        return cycles + timing.dirty_bit_miss

    def on_write_miss(self, machine, pte, page):
        if pte.dirty:
            return 0
        cycles = self._necessary_fault(machine, pte)
        return cycles + machine.fault_timing.dirty_bit_miss

    def write_miss_settled(self, pte):
        # SPUR keys the miss-time check on the hardware bit alone: a
        # software-dirty page still pays the dirty-bit-miss refresh.
        return pte.dirty

    def write_hit_settled(self, cache, index):
        # A set cached copy is exactly the hardware's "no work" case.
        return cache.page_dirty[index]


class ProtectionMissDirtyPolicy(DirtyBitPolicy):
    """PROTMISS: the generalized SPUR scheme, applied to protection.

    Section 3.1's closing observation: instead of an explicit cached
    dirty bit, apply the same check-the-PTE-before-faulting idea to
    the protection field itself.  Writable pages are mapped read-only
    while clean (as under FAULT); on a write that the *cached*
    protection copy forbids, the hardware first consults the PTE — if
    the copy is merely out of date, a "protection bit miss" refreshes
    it and the access proceeds; only a genuinely clean page faults.

    The paper notes the performance is identical to SPUR's while
    saving the extra tag bit; the closed-loop tests pin that
    equivalence.
    """

    name = "PROTMISS"

    def map_protection(self, writable):
        # Same initial state as the FAULT emulation.
        return Protection.READ_ONLY

    def _set_dirty(self, pte):
        pte.software_dirty = True
        pte.protection = Protection.READ_WRITE

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        cache = machine.cache
        if cache.prot[index] == int(Protection.READ_WRITE):
            return 0
        timing = machine.fault_timing
        if pte.is_modified():
            # Stale cached protection: hardware refresh, no fault.
            machine.counters.increment(Event.DIRTY_BIT_MISS)
            cache.prot[index] = int(Protection.READ_WRITE)
            cache.page_dirty[index] = True
            return timing.dirty_bit_miss
        cycles = self._necessary_fault(machine, pte)
        cache.prot[index] = int(Protection.READ_WRITE)
        cache.page_dirty[index] = True
        return cycles + timing.dirty_bit_miss

    def on_write_miss(self, machine, pte, page):
        if pte.is_modified():
            return 0
        cycles = self._necessary_fault(machine, pte)
        return cycles + machine.fault_timing.dirty_bit_miss

    def write_hit_settled(self, cache, index):
        # An up-to-date cached protection copy permits the write.
        return cache.prot[index] == int(Protection.READ_WRITE)


class WriteDirtyPolicy(DirtyBitPolicy):
    """WRITE: check the PTE on the first write to each cache block.

    Modeled on the Sun-3 mechanism but faulting to software to set the
    bit, for an unbiased comparison.  Write misses check for free (the
    PTE is fetched for translation anyway); a write hitting a clean
    block pays ``t_dc`` to consult the PTE.  The policy never produces
    excess faults, but pays the check on every read-then-written
    block, which the paper shows dominates everything else.
    """

    name = "WRITE"
    cached_dirty_tracks_pte = False

    def fill_page_dirty(self, pte):
        # Page-level state never goes stale under WRITE (every first
        # block write consults the PTE), so the cached copy is
        # permanently "settled" and only block_dirty gates the slow
        # path.
        return True

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        machine.counters.increment(Event.DIRTY_CHECK)
        cycles = machine.fault_timing.dirty_check
        if not pte.dirty:
            cycles += self._necessary_fault(machine, pte)
        return cycles


class MinDirtyPolicy(DirtyBitPolicy):
    """MIN: the lower bound.

    Counts only the overhead intrinsic to every policy — the software
    fault that sets the dirty bit on the first write to each page.
    Checking costs nothing and stale copies refresh for free; no
    hardware could do better, which is what makes it the comparison
    baseline of Table 3.4.
    """

    name = "MIN"

    def handle_write_hit(self, machine, index, vaddr, pte, page):
        cache = machine.cache
        if cache.page_dirty[index]:
            return 0
        if pte.dirty:
            cache.page_dirty[index] = True
            return 0
        cycles = self._necessary_fault(machine, pte)
        cache.page_dirty[index] = True
        return cycles

    def write_hit_settled(self, cache, index):
        # Only the set-copy branch is mutation-free: the free refresh
        # (clean copy, dirty PTE) updates the copy and must stay on
        # the slow path.
        return cache.page_dirty[index]


_DIRTY_POLICIES = {
    policy.name: policy
    for policy in (
        FaultDirtyPolicy,
        FlushDirtyPolicy,
        SpurDirtyPolicy,
        ProtectionMissDirtyPolicy,
        WriteDirtyPolicy,
        MinDirtyPolicy,
    )
}


def make_dirty_policy(name):
    """Construct a dirty-bit policy by its paper name."""
    try:
        return _DIRTY_POLICIES[name.upper()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown dirty-bit policy {name!r}; expected one of "
            f"{sorted(_DIRTY_POLICIES)}"
        ) from None
