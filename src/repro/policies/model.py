"""The geometric excess-fault model (paper, footnote 3).

The model explains why excess faults are rare.  Assume (a) a uniform
mix of read and write misses to a page, (b) infinitely large pages,
and (c) that necessary faults occur only on write misses.  Blocks of a
clean page brought in by *reads* before the first write are the ones
that can later produce excess faults; the count of such blocks that
are eventually written has a geometric distribution with parameter

.. math::

    p_w = \\frac{N_{w\\text{-}miss}}{N_{w\\text{-}hit} + N_{w\\text{-}miss}}

(the probability that a to-be-modified block entered the cache on a
write miss).  With the paper's measured read-before-write fraction of
roughly one fifth, the model predicts fewer than 20% as many excess
faults as necessary faults; relaxing assumptions (b) and (c) only
lowers the prediction, which is why the measured 15-34% (zero-fills
excluded) brackets it.
"""

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ExcessFaultModel:
    """Geometric model parameterised by the write-miss probability.

    Parameters
    ----------
    p_w:
        Probability that a modified block entered the cache via a
        write miss rather than a read.  Must be in (0, 1].
    """

    p_w: float

    def __post_init__(self):
        if not 0 < self.p_w <= 1:
            raise ConfigurationError("p_w must be in (0, 1]")

    @classmethod
    def from_counts(cls, n_w_hit, n_w_miss):
        """Build the model from the measured Table 3.3 block counts."""
        total = n_w_hit + n_w_miss
        if total <= 0 or n_w_miss <= 0:
            raise ConfigurationError(
                "need positive write-miss counts to fit the model"
            )
        return cls(p_w=n_w_miss / total)

    @property
    def expected_excess_per_fault(self):
        """Mean excess faults per necessary dirty fault.

        A geometric distribution with success probability ``p_w``
        counting failures before the first success has mean
        ``(1 - p_w) / p_w``: each read-filled, later-written block of
        the page contributes one excess fault.
        """
        return (1.0 - self.p_w) / self.p_w

    def probability_at_least(self, k):
        """P(at least ``k`` excess faults for one page)."""
        if k <= 0:
            return 1.0
        return (1.0 - self.p_w) ** k

    def predicted_excess_fraction(self):
        """Predicted :math:`N_{ef} / N_{ds}` ratio.

        Under assumption (c) every necessary fault corresponds to one
        page's first write miss, so the ratio of excess to necessary
        faults equals the per-page expectation.
        """
        return self.expected_excess_per_fault

    def simulate(self, rng, pages):
        """Monte-Carlo draw of total excess faults over ``pages`` pages.

        Used by the model-validation bench to show the analytic mean
        matches simulation (and by tests).
        """
        return sum(rng.geometric(self.p_w) for _ in range(pages))
