"""The three reference-bit policies of Section 4.

* MISS — SPUR's scheme: the reference bit is checked (and, via a
  fault, set) only on cache misses, where the PTE is in hand anyway.
  References that keep hitting in the cache leave the bit untouched,
  so the page daemon sees an *approximation* of recency.
* REF — true reference bits: when the daemon clears a page's bit it
  also flushes the page from the cache, forcing the next reference to
  miss and re-set the bit.  Accurate, but the flushes (and the misses
  to re-fetch flushed blocks) cost more than the better replacement
  decisions save.
* NOREF — no reference bits: the read routine always reports
  "unreferenced" and the clear routine does nothing, leaving the
  hardware bit permanently set so reference faults never occur.  The
  clock degenerates to FIFO with zero maintenance overhead.
"""

from repro.common.errors import ConfigurationError
from repro.counters.events import Event


class ReferenceBitPolicy:
    """Base class; concrete policies override the four hooks."""

    name = "ABSTRACT"

    #: Whether the policy maintains reference information at all; the
    #: page daemon skips its periodic clear passes when False (NOREF
    #: "spends no time maintaining reference bits").
    maintains_bits = True

    def on_map(self, pte):
        """Initialise the reference bit for a freshly mapped page.

        The page-fault handler sets the bit for free under every
        policy — the faulting access obviously references the page.
        """
        pte.referenced = True

    def on_cache_miss(self, machine, pte):
        """Check/set the reference bit during a miss; returns cycles."""
        raise NotImplementedError

    def read_reference(self, pte):
        """The machine-dependent daemon read routine."""
        raise NotImplementedError

    def clear_reference(self, machine, vpn, pte):
        """The machine-dependent daemon clear routine; returns cycles."""
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class MissReferencePolicy(ReferenceBitPolicy):
    """MISS: the miss-bit approximation (SPUR's native scheme)."""

    name = "MISS"

    def on_cache_miss(self, machine, pte):
        if pte.referenced:
            return 0
        # The hardware faults to a software handler to set the bit.
        machine.counters.increment(Event.REFERENCE_FAULT)
        pte.referenced = True
        return machine.fault_timing.reference_fault

    def read_reference(self, pte):
        return pte.referenced

    def clear_reference(self, machine, vpn, pte):
        pte.referenced = False
        return 0  # a PTE write, folded into the daemon's scan cost


class TrueReferencePolicy(MissReferencePolicy):
    """REF: true reference bits via flush-on-clear."""

    name = "REF"

    def clear_reference(self, machine, vpn, pte):
        pte.referenced = False
        # Flush from every cache in the coherence domain: on a
        # multiprocessor the page must leave all of them before the
        # next reference is guaranteed to miss (Section 4.1 cites
        # exactly this as REF's multiprocessor liability).
        return machine.flush_page(vpn * machine.page_bytes)


class NoReferencePolicy(ReferenceBitPolicy):
    """NOREF: eliminate reference bits entirely.

    Implemented exactly as the paper's minimal-change Sprite
    modification: reads always return false, clears have no effect,
    and the hardware bit stays set so no reference faults occur.
    """

    name = "NOREF"
    maintains_bits = False

    def on_cache_miss(self, machine, pte):
        # The hardware bit is permanently set; no fault ever fires.
        return 0

    def read_reference(self, pte):
        return False

    def clear_reference(self, machine, vpn, pte):
        return 0


_REFERENCE_POLICIES = {
    policy.name: policy
    for policy in (
        MissReferencePolicy,
        TrueReferencePolicy,
        NoReferencePolicy,
    )
}

#: Policy names in the row order of Table 4.1.
REFERENCE_POLICY_NAMES = ("MISS", "REF", "NOREF")


def make_reference_policy(name):
    """Construct a reference-bit policy by its paper name."""
    try:
        return _REFERENCE_POLICIES[name.upper()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown reference-bit policy {name!r}; expected one of "
            f"{sorted(_REFERENCE_POLICIES)}"
        ) from None
