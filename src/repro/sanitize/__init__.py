"""Runtime invariant checking for the SPUR reproduction.

Quick start::

    from repro.sanitize import Sanitizer

    sanitizer = Sanitizer(mode="full").attach(machine)
    machine.run(workload)      # raises InvariantViolation on breach
    sanitizer.check_now()      # or sweep explicitly at any time

See ``docs/invariants.md`` for the checked catalogue and
``python -m repro.sanitize --help`` for the self-check CLI.
"""

from repro.sanitize.checks import (
    check_block_ownership,
    check_bus_coherence,
    check_cache_arrays,
    check_column_store,
    check_dirty_policy,
    check_line,
    check_vm,
)
from repro.sanitize.sanitizer import MODES, Sanitizer, attach
from repro.sanitize.violation import InvariantViolation

__all__ = [
    "Sanitizer",
    "InvariantViolation",
    "MODES",
    "attach",
    "check_block_ownership",
    "check_bus_coherence",
    "check_cache_arrays",
    "check_column_store",
    "check_dirty_policy",
    "check_line",
    "check_vm",
]
