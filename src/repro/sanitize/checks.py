"""The invariant catalogue: pure check functions over live model state.

Each function inspects one subsystem and raises
:class:`~repro.sanitize.violation.InvariantViolation` on the first
breach it finds.  The functions mutate nothing and allocate only on
the failure path, so the sanitizer can run them at reference
granularity.  ``docs/invariants.md`` documents every invariant checked
here together with its identifier.

The checks deliberately reach into private state (the allocator's free
list, the frame table's owner array): the sanitizer is privileged
debugging machinery, not an API consumer.
"""

from repro.cache.coherence import CoherencyState
from repro.sanitize.violation import InvariantViolation

_INVALID = int(CoherencyState.INVALID)
_OWNED_SHARED = int(CoherencyState.OWNED_SHARED)

#: Column-store flag columns constrained to boolean 0/1 values.
_BOOL_COLUMNS = ("valid", "page_dirty", "block_dirty",
                 "filled_by_read", "holds_pte")

#: The parallel per-line tag arrays a :class:`VirtualCache` keeps.
TAG_ARRAY_FIELDS = (
    "valid",
    "tags",
    "line_vaddr",
    "prot",
    "page_dirty",
    "block_dirty",
    "state",
    "filled_by_read",
    "holds_pte",
    "line_block",
)


def _line_state(cache, index):
    """Raw dump of one line's parallel-array slots (may be corrupt)."""
    return {
        field: getattr(cache, field)[index]
        for field in TAG_ARRAY_FIELDS
    }


def check_line(cache, index, ref_index=None):
    """Validate the parallel-array slots of one cache line.

    The per-line legality rules:

    * an invalid line is fully quiescent — coherency state ``INVALID``
      and block-dirty clear (``cache.invalid-quiescent``);
    * a valid line has a non-``INVALID`` coherency state
      (``cache.valid-state``);
    * the tag, fill-address, and index arrays agree: the stored tag is
      the tag of the stored fill address, and the fill address maps to
      this line and is block-aligned (``cache.tag-agreement``);
    * the protection slot holds a legal two-bit encoding
      (``cache.protection-encoding``);
    * a block-dirty line is owned — Berkeley Ownership permits dirty
      data only in the two OWNED states, which is also the "UNOWNED
      implies memory up to date" half of the protocol
      (``cache.dirty-owned``);
    * the probe shortcut agrees with the tag arrays: ``line_block`` is
      the fill address's block number on a valid line and -1 on an
      invalid one, so the chunked hot loop's single-compare hit test
      matches the valid+tag test exactly
      (``cache.line-block-agreement``).
    """
    valid = cache.valid[index]
    state = cache.state[index]
    dirty = cache.block_dirty[index]
    if not valid:
        if state != _INVALID or dirty:
            raise InvariantViolation(
                "cache.invalid-quiescent",
                f"invalid line {index} keeps state/dirty residue",
                machine=cache.name,
                ref_index=ref_index,
                state=_line_state(cache, index),
            )
        if cache.line_block[index] != -1:
            raise InvariantViolation(
                "cache.line-block-agreement",
                f"invalid line {index} keeps block number "
                f"{cache.line_block[index]}; the chunked hot loop "
                f"would hit on a stale block",
                machine=cache.name,
                ref_index=ref_index,
                state=_line_state(cache, index),
            )
        return
    if state == _INVALID:
        raise InvariantViolation(
            "cache.valid-state",
            f"valid line {index} has coherency state INVALID",
            machine=cache.name,
            ref_index=ref_index,
            state=_line_state(cache, index),
        )
    vaddr = cache.line_vaddr[index]
    if (
        cache.tags[index] != vaddr >> cache.tag_shift
        or (vaddr >> cache.block_bits) & cache.index_mask != index
        or vaddr & ((1 << cache.block_bits) - 1)
    ):
        raise InvariantViolation(
            "cache.tag-agreement",
            f"line {index}: tag, fill address, and index disagree",
            machine=cache.name,
            ref_index=ref_index,
            state=_line_state(cache, index),
        )
    if cache.line_block[index] != vaddr >> cache.block_bits:
        raise InvariantViolation(
            "cache.line-block-agreement",
            f"line {index}: block number "
            f"{cache.line_block[index]} disagrees with fill address "
            f"{vaddr:#x}",
            machine=cache.name,
            ref_index=ref_index,
            state=_line_state(cache, index),
        )
    if not 0 <= cache.prot[index] <= 3:
        raise InvariantViolation(
            "cache.protection-encoding",
            f"line {index}: protection {cache.prot[index]!r} is not a "
            f"two-bit encoding",
            machine=cache.name,
            ref_index=ref_index,
            state=_line_state(cache, index),
        )
    if dirty and state < _OWNED_SHARED:
        raise InvariantViolation(
            "cache.dirty-owned",
            f"line {index} is block-dirty but not owned "
            f"(state {state!r}); an UNOWNED copy must match memory",
            machine=cache.name,
            ref_index=ref_index,
            state=_line_state(cache, index),
        )


def check_cache_arrays(cache, ref_index=None):
    """Validate a whole cache: array lengths plus every line.

    Invariant ``cache.array-lengths``: the ten parallel tag arrays all
    have exactly ``num_lines`` entries — the structural precondition of
    the hot loop's unguarded indexing.
    """
    num_lines = cache.num_lines
    for field in TAG_ARRAY_FIELDS:
        length = len(getattr(cache, field))
        if length != num_lines:
            raise InvariantViolation(
                "cache.array-lengths",
                f"parallel array {field!r} has {length} entries, "
                f"expected {num_lines}",
                machine=cache.name,
                ref_index=ref_index,
            )
    check_column_store(cache, ref_index=ref_index)
    for index in range(num_lines):
        check_line(cache, index, ref_index=ref_index)


def check_column_store(cache, ref_index=None):
    """Validate the cache's flat column store and its aliases.

    Invariant ``cache.column-store-agreement``, in three parts:

    * every flat tag-array attribute on the cache is the *same
      object* as the corresponding :class:`~repro.cache.columns.
      ColumnStore` column — the hot loop, the slow paths, and the
      vectorized classifier must all mutate one buffer, and an
      accidental rebinding (``cache.valid = [...]``) would silently
      desynchronize them;
    * flag columns hold only 0/1 — a stray byte would corrupt the
      batched classifier's boolean masks;
    * when numpy views exist, each view still reflects the backing
      buffer value-for-value (zero-copy aliasing intact).

    A fleet member's store (built over ``memoryview`` slices of a
    :class:`~repro.fleet.columns.FleetColumnStore`) extends the
    invariant to 2-D: the member's row slice of each flat fleet
    buffer — and of each 2-D numpy view, when present — must agree
    with the member's own columns element-for-element, proving the
    stacked allocation, the member aliases, and the fleet classifier's
    views are all one memory.
    """
    columns = getattr(cache, "columns", None)
    if columns is None:
        return
    for name, column in columns.columns():
        if getattr(cache, name) is not column:
            raise InvariantViolation(
                "cache.column-store-agreement",
                f"cache attribute {name!r} was rebound away from its "
                f"column-store buffer",
                machine=cache.name,
                ref_index=ref_index,
            )
    for name in _BOOL_COLUMNS:
        column = getattr(columns, name)
        for index, value in enumerate(column):
            if value > 1:
                raise InvariantViolation(
                    "cache.column-store-agreement",
                    f"flag column {name!r} holds non-boolean value "
                    f"{value} at line {index}",
                    machine=cache.name,
                    ref_index=ref_index,
                )
    views = columns.views
    if views is not None:
        for name, column in columns.columns():
            view = getattr(views, name)
            if len(view) != len(column) or view.tolist() != list(column):
                raise InvariantViolation(
                    "cache.column-store-agreement",
                    f"numpy view of column {name!r} no longer aliases "
                    f"the backing buffer",
                    machine=cache.name,
                    ref_index=ref_index,
                )
    fleet = getattr(columns, "fleet", None)
    if fleet is not None:
        row = columns.member_row
        lo = row * columns.num_lines
        hi = lo + columns.num_lines
        for name, column in columns.columns():
            shared = getattr(fleet, name)
            if list(shared[lo:hi]) != list(column):
                raise InvariantViolation(
                    "cache.column-store-agreement",
                    f"fleet column {name!r} row {row} no longer "
                    f"aliases the member store",
                    machine=cache.name,
                    ref_index=ref_index,
                )
        if fleet.views is not None:
            for name, column in columns.columns():
                view = getattr(fleet.views, name)
                if view[row].tolist() != list(column):
                    raise InvariantViolation(
                        "cache.column-store-agreement",
                        f"2-D fleet view of column {name!r} row {row} "
                        f"no longer aliases the member store",
                        machine=cache.name,
                        ref_index=ref_index,
                    )


def check_block_ownership(bus, block_vaddr, ref_index=None):
    """Validate the global Berkeley Ownership state of one block.

    * ``bus.single-owner`` — at most one cache owns the block;
    * ``bus.exclusive-sole-copy`` — an OWNED_EXCLUSIVE holder is the
      only cache with a valid copy.
    """
    owners = []
    holders = []
    for cache in bus.caches:
        index = cache.probe(block_vaddr)
        if index < 0:
            continue
        holders.append(cache.name)
        state = cache.state[index]
        if state >= _OWNED_SHARED:
            owners.append((cache.name, CoherencyState(state).name))
    if len(owners) > 1:
        raise InvariantViolation(
            "bus.single-owner",
            f"block {block_vaddr:#x} has {len(owners)} owners",
            machine=bus.name,
            ref_index=ref_index,
            state={"owners": owners, "holders": holders},
        )
    if owners and owners[0][1] == "OWNED_EXCLUSIVE" and len(holders) > 1:
        raise InvariantViolation(
            "bus.exclusive-sole-copy",
            f"block {block_vaddr:#x} is OWNED_EXCLUSIVE in "
            f"{owners[0][0]} yet other caches hold copies",
            machine=bus.name,
            ref_index=ref_index,
            state={"owners": owners, "holders": holders},
        )


def check_bus_coherence(bus, ref_index=None):
    """Validate global protocol state for every block on the bus."""
    blocks = set()
    for cache in bus.caches:
        valid = cache.valid
        line_vaddr = cache.line_vaddr
        for index in range(cache.num_lines):
            if valid[index]:
                blocks.add(line_vaddr[index])
    for block_vaddr in blocks:
        check_block_ownership(bus, block_vaddr, ref_index=ref_index)


def check_dirty_policy(machine, ref_index=None):
    """Validate SPUR dirty-bit and protection copies against the PTEs.

    For every resident data block of an ordinary (non-page-table) page:

    * ``dirty.resident-mapped`` — the page is mapped: page flushes
      are mandatory on eviction and deactivation precisely so a
      VIVT cache never hits on an unmapped page;
    * ``dirty.copy-not-cleaner`` — if the cached page-dirty copy is
      set, the PTE records the page as modified.  The converse (clear
      copy, dirty PTE) is the legal staleness the paper's dirty-bit
      misses repair; this direction would lose data at replacement.
      Skipped for policies whose cached copy does not track the PTE
      (``cached_dirty_tracks_pte`` is False, i.e. WRITE);
    * ``dirty.protection-not-weaker`` — the cached protection copy is
      never more permissive than the PTE.  Staler-but-stronger copies
      are the excess-fault mechanism; a weaker copy would let writes
      bypass a protection downgrade.
    """
    page_table = machine.page_table
    user_limit = page_table.layout.user_limit
    page_bits = machine.page_bits
    tracks_pte = machine.dirty_policy.cached_dirty_tracks_pte
    for cache in machine.caches():
        for index in range(cache.num_lines):
            if not cache.valid[index] or cache.holds_pte[index]:
                continue
            vaddr = cache.line_vaddr[index]
            if vaddr >= user_limit:
                continue
            pte = page_table.lookup(vaddr >> page_bits)
            if not pte.valid:
                raise InvariantViolation(
                    "dirty.resident-mapped",
                    f"line {index} caches block {vaddr:#x} of an "
                    f"unmapped page (vpn {vaddr >> page_bits})",
                    machine=cache.name,
                    ref_index=ref_index,
                    state=_line_state(cache, index),
                )
            if (
                tracks_pte
                and cache.page_dirty[index]
                and not pte.is_modified()
            ):
                raise InvariantViolation(
                    "dirty.copy-not-cleaner",
                    f"line {index} claims page {vaddr >> page_bits} "
                    f"dirty but its PTE says clean",
                    machine=cache.name,
                    ref_index=ref_index,
                    state=dict(_line_state(cache, index),
                               pte=repr(pte)),
                )
            if cache.prot[index] > int(pte.protection):
                raise InvariantViolation(
                    "dirty.protection-not-weaker",
                    f"line {index} caches protection "
                    f"{cache.prot[index]} above the PTE's "
                    f"{int(pte.protection)} for page "
                    f"{vaddr >> page_bits}",
                    machine=cache.name,
                    ref_index=ref_index,
                    state=dict(_line_state(cache, index),
                               pte=repr(pte)),
                )


def check_vm(vm, ref_index=None):
    """Validate the VM system: frames, free list, PTEs, and swap.

    * ``vm.frame-bijection`` — the frame table and the per-page
      records are mutual inverses;
    * ``vm.free-list-disjoint`` — the allocator's free list holds no
      duplicates, no wired frames, and no occupied frames, and
      together with the occupied frames exactly covers the
      allocatable range;
    * ``vm.pte-frame-agreement`` — a valid PTE's physical page number
      is the frame its page record holds;
    * ``vm.inactive-unmapped`` — a page on the inactive list is
      unmapped but still holds its frame;
    * ``vm.swap-image`` — a page marked in-swap has a swap image.
    """
    frame_table = vm.frame_table
    name = "vm"

    for vpn, page in vm.pages.items():
        pte = vm.page_table.lookup(vpn)
        if page.frame is not None:
            if frame_table.owner(page.frame) != vpn:
                raise InvariantViolation(
                    "vm.frame-bijection",
                    f"page {vpn} claims frame {page.frame} but the "
                    f"frame table records owner "
                    f"{frame_table.owner(page.frame)!r}",
                    machine=name, ref_index=ref_index,
                )
        if pte.valid:
            if page.frame is None:
                raise InvariantViolation(
                    "vm.pte-frame-agreement",
                    f"page {vpn} has a valid PTE but no frame",
                    machine=name, ref_index=ref_index,
                    state={"pte": repr(pte)},
                )
            if pte.ppn != page.frame:
                raise InvariantViolation(
                    "vm.pte-frame-agreement",
                    f"page {vpn}: PTE maps frame {pte.ppn} but the "
                    f"page record holds frame {page.frame}",
                    machine=name, ref_index=ref_index,
                    state={"pte": repr(pte)},
                )
        if page.inactive:
            if pte.valid or page.frame is None:
                raise InvariantViolation(
                    "vm.inactive-unmapped",
                    f"inactive page {vpn} must be unmapped yet keep "
                    f"its frame (valid={pte.valid}, "
                    f"frame={page.frame})",
                    machine=name, ref_index=ref_index,
                )
        if page.in_swap and not vm.swap.has_image(vpn):
            raise InvariantViolation(
                "vm.swap-image",
                f"page {vpn} is marked in-swap but the swap device "
                f"holds no image for it",
                machine=name, ref_index=ref_index,
            )

    occupied = {}
    for frame in range(frame_table.num_frames):
        vpn = frame_table.owner(frame)
        if vpn is None:
            continue
        occupied[frame] = vpn
        page = vm.pages.get(vpn)
        if page is None or page.frame != frame:
            raise InvariantViolation(
                "vm.frame-bijection",
                f"frame {frame} records owner {vpn} but that page "
                f"holds frame "
                f"{page.frame if page is not None else None!r}",
                machine=name, ref_index=ref_index,
            )

    free = vm.allocator._free
    free_set = set(free)
    if len(free_set) != len(free):
        raise InvariantViolation(
            "vm.free-list-disjoint",
            "the free list contains duplicate frames",
            machine=name, ref_index=ref_index,
            state={"free": sorted(free)},
        )
    overlap = free_set & set(occupied)
    if overlap:
        raise InvariantViolation(
            "vm.free-list-disjoint",
            f"frames {sorted(overlap)} are simultaneously free and "
            f"occupied",
            machine=name, ref_index=ref_index,
        )
    wired = [f for f in free_set if f < frame_table.wired_frames]
    if wired:
        raise InvariantViolation(
            "vm.free-list-disjoint",
            f"wired frames {sorted(wired)} are on the free list",
            machine=name, ref_index=ref_index,
        )
    covered = len(free_set) + len(occupied)
    if covered != frame_table.allocatable_frames:
        raise InvariantViolation(
            "vm.free-list-disjoint",
            f"free ({len(free_set)}) + occupied ({len(occupied)}) "
            f"frames do not cover the {frame_table.allocatable_frames} "
            f"allocatable frames",
            machine=name, ref_index=ref_index,
        )
