"""``python -m repro.sanitize``: self-check a simulation run.

Runs a workload on the scaled machine with the sanitizer attached in
the requested mode and reports what was checked.  Exit status 0 means
every invariant held for the whole run; an
:class:`~repro.sanitize.violation.InvariantViolation` is printed and
exits 1.

::

    python -m repro.sanitize                      # slc, full mode
    python -m repro.sanitize --mode sampled --refs 200000
    python -m repro.sanitize --workload workload1 --cpus 2
"""

import argparse
import itertools
import sys
import time

from repro.sanitize.sanitizer import MODES, Sanitizer
from repro.sanitize.violation import InvariantViolation


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.sanitize",
        description=(
            "Run a workload under the runtime invariant sanitizer."
        ),
    )
    parser.add_argument("--mode", choices=MODES, default="full")
    parser.add_argument("--workload", default="slc",
                        help="slc | workload1 | dev-<host>")
    parser.add_argument("--refs", type=int, default=100_000,
                        help="references to simulate (default 100k)")
    parser.add_argument("--cpus", type=int, default=1,
                        help="processor boards (>1 exercises the "
                             "multiprocessor ownership checks)")
    parser.add_argument("--memory-ratio", type=int, default=48)
    parser.add_argument("--dirty", default="SPUR")
    parser.add_argument("--ref-policy", default="MISS")
    parser.add_argument("--sample-interval", type=int, default=4096)
    parser.add_argument("--sweep-interval", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def run_sanitized(args):
    """Build machine + workload, run sanitized; returns (refs, seconds)."""
    from repro.cli import _workload_by_name
    from repro.machine.config import scaled_config
    from repro.machine.smp import SmpSystem
    from repro.machine.simulator import SpurMachine

    config = scaled_config(
        memory_ratio=args.memory_ratio,
        dirty_policy=args.dirty.upper(),
        reference_policy=args.ref_policy.upper(),
    )
    workload = _workload_by_name(args.workload, 1.0)
    instance = workload.instantiate(config.page_bytes, seed=args.seed)
    sanitizer = Sanitizer(
        mode=args.mode,
        sample_interval=args.sample_interval,
        sweep_interval=args.sweep_interval,
    )

    started = time.perf_counter()
    if args.cpus > 1:
        system = SmpSystem(config, instance.space_map,
                           num_cpus=args.cpus)
        sanitizer.attach(system)
        per_cpu = args.refs // args.cpus
        streams = [
            list(itertools.islice(
                workload.instantiate(
                    config.page_bytes, seed=args.seed + cpu
                ).accesses(),
                per_cpu,
            ))
            for cpu in range(args.cpus)
        ]
        processed = system.run_interleaved(streams)
    else:
        machine = SpurMachine(config, instance.space_map)
        sanitizer.attach(machine)
        processed = machine.run(
            itertools.islice(instance.accesses(), args.refs)
        )
    sanitizer.check_now()
    elapsed = time.perf_counter() - started
    return sanitizer, processed, elapsed


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        sanitizer, processed, elapsed = run_sanitized(args)
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION\n{violation}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"repro.sanitize: {error}", file=sys.stderr)
        return 2
    print(
        f"ok: {processed:,} references under mode={args.mode} "
        f"in {elapsed:.2f}s\n"
        f"    {sanitizer.line_checks:,} per-reference line checks, "
        f"{sanitizer.sweeps} full sweeps, no violations"
    )
    return 0
