"""Pytest fixtures for sanitized simulation runs.

Import (or list in ``pytest_plugins``) from a conftest to make the
fixtures available::

    from repro.sanitize.pytest_plugin import *  # noqa: F401,F403

``sanitizer``
    A factory: call it with any simulator object (machine, SMP system,
    cache, bus, or VM system) and an optional mode to get an attached
    :class:`~repro.sanitize.sanitizer.Sanitizer`.  Everything attached
    through the factory is swept once more at test teardown, so a test
    that ends with latent corruption fails even if it never ran
    another reference.

The repo's ``tests/conftest.py`` builds a ``sanitized_machine``
fixture on top of this factory (the tiny machine geometry lives with
the tests, not the library).
"""

import pytest

from repro.sanitize.sanitizer import Sanitizer

__all__ = ["sanitizer"]


@pytest.fixture
def sanitizer():
    """Factory fixture: attach sanitizers, sweep them at teardown."""
    created = []

    def _attach(obj, mode="full", **kwargs):
        instance = Sanitizer(mode=mode, **kwargs)
        instance.attach(obj)
        created.append(instance)
        return instance

    yield _attach
    for instance in created:
        instance.check_now()
        instance.detach()
