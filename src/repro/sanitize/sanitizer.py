"""The runtime sanitizer: attach, instrument, and check.

A :class:`Sanitizer` watches live simulator objects and validates the
invariant catalogue in :mod:`repro.sanitize.checks` as the simulation
runs.  Three modes trade coverage for overhead:

``full``
    Every reference is checked: the instrumented stream validates the
    cache line each reference touched (and, on a multiprocessor bus,
    the global ownership of the touched block) immediately after the
    hot loop processed it, plus a full sweep of every registered
    structure at stream end (and every ``sweep_interval`` references
    when set).  On the chunked path (:meth:`SpurMachine.run_chunks`)
    the instrumentation attaches per flat chunk: every reference in a
    chunk is validated the moment the hot loop finishes that chunk,
    so the chunk interior stays allocation-free.  Under 3x slowdown
    on paper-scale runs.

``sampled``
    One reference in ``sample_interval`` is spot-checked and a full
    sweep runs at stream end.  The access stream is consumed in
    ``sample_interval``-sized slices so the hot loop keeps its batch
    speed; overhead is a few percent.  On the chunked path the last
    reference of each chunk is the spot-check.

``epoch``
    A full sweep at the end of each ``run()`` call only.  Suitable for
    leaving permanently enabled in tests.

Attachment is per-object: a whole :class:`SpurMachine` or
:class:`SmpSystem` (instrumenting its reference loop), or a bare
:class:`VirtualCache`, :class:`SnoopyBus`, or
:class:`VirtualMemorySystem` for targeted checking via
:meth:`Sanitizer.check_now`.  In full mode a bare cache additionally
gets its ``fill``/``invalidate`` mutators wrapped so each mutation is
validated as it happens.
"""

import itertools

from repro.sanitize.checks import (
    check_block_ownership,
    check_bus_coherence,
    check_cache_arrays,
    check_dirty_policy,
    check_line,
    check_vm,
)
from repro.sanitize.violation import InvariantViolation

MODES = ("full", "sampled", "epoch")


class Sanitizer:
    """Runtime invariant checker for the SPUR model.

    Parameters
    ----------
    mode:
        ``"full"``, ``"sampled"``, or ``"epoch"`` (see module docs).
    sample_interval:
        References between spot checks in sampled mode.
    sweep_interval:
        References between full sweeps in full mode (None sweeps only
        at stream end).
    """

    def __init__(self, mode="full", sample_interval=4096,
                 sweep_interval=None):
        if mode not in MODES:
            raise ValueError(
                f"mode must be one of {MODES}, got {mode!r}"
            )
        if sample_interval < 1:
            raise ValueError("sample_interval must be positive")
        self.mode = mode
        self.sample_interval = sample_interval
        self.sweep_interval = sweep_interval
        self.caches = []
        self.buses = []
        self.vms = []
        self.machines = []
        self.references_seen = 0
        self.line_checks = 0
        self.sweeps = 0
        self._wrapped = []

    # -- attachment ------------------------------------------------------

    def attach(self, obj):
        """Register a simulator object; returns self for chaining."""
        # Duck-typed dispatch so facades (SmpSystem stands in for a
        # machine) and test doubles attach without inheritance.
        if hasattr(obj, "cpus"):          # SmpSystem
            self._add(self.machines, obj)
            self._add(self.buses, obj.bus)
            self._add(self.vms, obj.vm)
            for cpu in obj.cpus:
                self._wrap_machine(cpu)
        elif hasattr(obj, "run") and hasattr(obj, "cache"):
            # SpurMachine; prefer the SMP facade when it has one so
            # page-granularity checks cover the whole coherence domain.
            self._add(self.machines, obj.system or obj)
            self._add(self.buses, obj.bus)
            self._add(self.vms, obj.vm)
            self._wrap_machine(obj)
        elif hasattr(obj, "broadcast"):   # SnoopyBus
            self._add(self.buses, obj)
        elif hasattr(obj, "frame_table"):  # VirtualMemorySystem
            self._add(self.vms, obj)
        elif hasattr(obj, "tags") and hasattr(obj, "probe"):
            self._add(self.caches, obj)   # bare VirtualCache
            if self.mode == "full":
                self._wrap_cache(obj)
        else:
            raise TypeError(
                f"cannot attach {type(obj).__name__}; expected a "
                f"machine, SMP system, cache, bus, or VM system"
            )
        return self

    def detach(self):
        """Restore every method this sanitizer wrapped."""
        for obj, name, original in reversed(self._wrapped):
            setattr(obj, name, original)
        self._wrapped.clear()

    @staticmethod
    def _add(registry, obj):
        if all(existing is not obj for existing in registry):
            registry.append(obj)

    # -- whole-state sweep -----------------------------------------------

    def _all_caches(self):
        seen = []
        for cache in self.caches:
            self._add(seen, cache)
        for bus in self.buses:
            for cache in bus.caches:
                self._add(seen, cache)
        for machine in self.machines:
            for cache in machine.caches():
                self._add(seen, cache)
        return seen

    def check_now(self, ref_index=None):
        """Sweep every registered structure; raises on any breach."""
        self.sweeps += 1
        for cache in self._all_caches():
            check_cache_arrays(cache, ref_index=ref_index)
        for bus in self.buses:
            check_bus_coherence(bus, ref_index=ref_index)
        for machine in self.machines:
            check_dirty_policy(machine, ref_index=ref_index)
        for vm in self.vms:
            check_vm(vm, ref_index=ref_index)

    # -- machine instrumentation -----------------------------------------

    def _wrap_machine(self, machine):
        original = machine.run
        if self.mode == "epoch":
            def run(accesses):
                count = original(accesses)
                self.check_now(ref_index=self.references_seen + count)
                self.references_seen += count
                return count
        elif self.mode == "sampled":
            def run(accesses):
                return self._run_sampled(machine, original, accesses)
        else:
            def run(accesses):
                count = original(
                    self._instrument_full(machine, accesses)
                )
                self.check_now(ref_index=self.references_seen)
                return count
        machine.run = run
        self._wrapped.append((machine, "run", original))

        original_chunks = getattr(machine, "run_chunks", None)
        if original_chunks is None:
            return
        if self.mode == "epoch":
            def run_chunks(chunks):
                count = original_chunks(chunks)
                self.check_now(ref_index=self.references_seen + count)
                self.references_seen += count
                return count
        elif self.mode == "sampled":
            def run_chunks(chunks):
                count = original_chunks(
                    self._instrument_chunks_sampled(machine, chunks)
                )
                self.check_now(ref_index=self.references_seen)
                return count
        else:
            def run_chunks(chunks):
                count = original_chunks(
                    self._instrument_chunks_full(machine, chunks)
                )
                self.check_now(ref_index=self.references_seen)
                return count
        machine.run_chunks = run_chunks
        self._wrapped.append((machine, "run_chunks", original_chunks))

    def _run_sampled(self, machine, original, accesses):
        """Feed the hot loop whole slices, spot-checking between them."""
        cache = machine.cache
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        iterator = iter(accesses)
        interval = self.sample_interval
        count = 0
        while True:
            batch = list(itertools.islice(iterator, interval))
            if not batch:
                break
            count += original(batch)
            self.references_seen += len(batch)
            vaddr = batch[-1][1]
            check_line(
                cache,
                (vaddr >> block_bits) & index_mask,
                ref_index=self.references_seen - 1,
            )
            self.line_checks += 1
        self.check_now(ref_index=self.references_seen)
        return count

    def _instrument_full(self, machine, accesses):
        """Yield references, validating each one's footprint.

        The check for reference *n* runs when the hot loop pulls
        reference *n+1* — i.e. immediately after the loop finished
        processing *n* — and the stream-end sweep covers the last one.
        The common case is inlined: a handful of list indexings decide
        legality, and only an anomaly pays for the full diagnostic in
        :func:`check_line`.
        """
        cache = machine.cache
        valid = cache.valid
        tags = cache.tags
        line_vaddr = cache.line_vaddr
        line_block = cache.line_block
        prot = cache.prot
        block_dirty = cache.block_dirty
        state = cache.state
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        tag_shift = cache.tag_shift
        bus = machine.bus
        multi = len(bus.caches) > 1
        block_mask = ~((1 << block_bits) - 1)
        sweep_interval = self.sweep_interval
        checked = 0
        try:
            for ref in accesses:
                yield ref
                # The hot loop has fully processed `ref` by now.
                vaddr = ref[1]
                index = (vaddr >> block_bits) & index_mask
                if valid[index]:
                    ok = (
                        state[index] != 0
                        and tags[index] == line_vaddr[index] >> tag_shift
                        and line_block[index]
                        == line_vaddr[index] >> block_bits
                        and (not block_dirty[index]
                             or state[index] >= 2)
                        and 0 <= prot[index] <= 3
                    )
                else:
                    ok = (
                        state[index] == 0
                        and not block_dirty[index]
                        and line_block[index] == -1
                    )
                checked += 1
                if not ok:
                    self.references_seen += checked
                    checked = 0
                    check_line(
                        cache, index,
                        ref_index=self.references_seen - 1,
                    )
                if multi:
                    check_block_ownership(
                        bus, vaddr & block_mask,
                        ref_index=self.references_seen + checked - 1,
                    )
                if sweep_interval and not (
                    (self.references_seen + checked) % sweep_interval
                ):
                    self.check_now(
                        ref_index=self.references_seen + checked
                    )
        finally:
            self.references_seen += checked
            self.line_checks += checked

    def _instrument_chunks_sampled(self, machine, chunks):
        """Yield flat chunks, spot-checking each one's last reference."""
        cache = machine.cache
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        for chunk in chunks:
            yield chunk
            if not chunk:
                continue
            self.references_seen += len(chunk) >> 1
            check_line(
                cache,
                (chunk[-1] >> block_bits) & index_mask,
                ref_index=self.references_seen - 1,
            )
            self.line_checks += 1

    def _instrument_chunks_full(self, machine, chunks):
        """Yield flat chunks, validating every reference's footprint.

        The chunked twin of :meth:`_instrument_full`: the checks for a
        whole chunk run when the hot loop pulls the next one — i.e.
        immediately after the loop finished the chunk — so the chunk
        interior stays free of per-reference calls.  The final chunk
        is covered because the generator resumes (and checks) before
        raising ``StopIteration``.
        """
        cache = machine.cache
        valid = cache.valid
        tags = cache.tags
        line_vaddr = cache.line_vaddr
        line_block = cache.line_block
        prot = cache.prot
        block_dirty = cache.block_dirty
        state = cache.state
        block_bits = cache.block_bits
        index_mask = cache.index_mask
        tag_shift = cache.tag_shift
        bus = machine.bus
        multi = len(bus.caches) > 1
        block_mask = ~((1 << block_bits) - 1)
        sweep_interval = self.sweep_interval
        checked = 0
        try:
            for chunk in chunks:
                yield chunk
                # The hot loop has fully processed `chunk` by now.
                for position in range(1, len(chunk), 2):
                    vaddr = chunk[position]
                    index = (vaddr >> block_bits) & index_mask
                    if valid[index]:
                        ok = (
                            state[index] != 0
                            and tags[index]
                            == line_vaddr[index] >> tag_shift
                            and line_block[index]
                            == line_vaddr[index] >> block_bits
                            and (not block_dirty[index]
                                 or state[index] >= 2)
                            and 0 <= prot[index] <= 3
                        )
                    else:
                        ok = (
                            state[index] == 0
                            and not block_dirty[index]
                            and line_block[index] == -1
                        )
                    checked += 1
                    if not ok:
                        self.references_seen += checked
                        checked = 0
                        check_line(
                            cache, index,
                            ref_index=self.references_seen - 1,
                        )
                    if multi:
                        check_block_ownership(
                            bus, vaddr & block_mask,
                            ref_index=self.references_seen
                            + checked - 1,
                        )
                    if sweep_interval and not (
                        (self.references_seen + checked)
                        % sweep_interval
                    ):
                        self.check_now(
                            ref_index=self.references_seen + checked
                        )
        finally:
            self.references_seen += checked
            self.line_checks += checked

    # -- bare-cache instrumentation --------------------------------------

    def _wrap_cache(self, cache):
        sanitizer = self

        original_fill = cache.fill

        def fill(vaddr, protection, page_dirty, by_write,
                 holds_pte=False):
            index, cycles = original_fill(
                vaddr, protection, page_dirty, by_write,
                holds_pte=holds_pte,
            )
            check_line(cache, index)
            sanitizer.line_checks += 1
            return index, cycles

        original_invalidate = cache.invalidate

        def invalidate(index, write_back=True):
            cycles = original_invalidate(index, write_back=write_back)
            check_line(cache, index)
            sanitizer.line_checks += 1
            return cycles

        cache.fill = fill
        cache.invalidate = invalidate
        self._wrapped.append((cache, "fill", original_fill))
        self._wrapped.append((cache, "invalidate", original_invalidate))

    def __repr__(self):
        return (
            f"Sanitizer(mode={self.mode!r}, "
            f"{len(self._all_caches())} caches, "
            f"{self.references_seen} refs seen, "
            f"{self.sweeps} sweeps)"
        )


def attach(obj, mode="full", **kwargs):
    """Convenience: build a :class:`Sanitizer` and attach ``obj``."""
    return Sanitizer(mode=mode, **kwargs).attach(obj)


__all__ = ["Sanitizer", "InvariantViolation", "MODES", "attach"]
