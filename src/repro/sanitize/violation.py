"""The structured error the runtime sanitizer raises.

A violation is a *simulator bug*, never a modeled hardware event: the
checked invariants hold by construction in the real SPUR hardware, so
any breach means some Python code path corrupted the model state.  The
exception therefore carries everything needed to debug without a
reproduction run: which invariant failed, on which machine (or cache,
or VM), at which reference index into the access stream, and a dump of
the state the check was looking at.
"""

from repro.common.errors import ReproError


class InvariantViolation(ReproError):
    """A machine-checked invariant does not hold.

    Parameters
    ----------
    invariant:
        Stable identifier of the violated invariant (for example
        ``cache.tag-agreement`` or ``bus.single-owner``); the catalogue
        lives in ``docs/invariants.md``.
    message:
        Human-readable description of the specific breach.
    machine:
        Name of the machine/cache/bus/VM the state belongs to.
    ref_index:
        Index into the access stream at which the breach was detected
        (None for checks run outside a reference stream).
    state:
        Dict dump of the relevant state, rendered into ``str(exc)``.
    """

    def __init__(self, invariant, message, machine=None, ref_index=None,
                 state=None):
        self.invariant = invariant
        self.machine = machine
        self.ref_index = ref_index
        self.state = dict(state) if state else {}
        super().__init__(self._render(message))

    def _render(self, message):
        where = []
        if self.machine is not None:
            where.append(f"machine={self.machine}")
        if self.ref_index is not None:
            where.append(f"ref_index={self.ref_index}")
        header = f"[{self.invariant}] {message}"
        if where:
            header += f" ({', '.join(where)})"
        if self.state:
            dump = "\n".join(
                f"    {key} = {value!r}"
                for key, value in sorted(self.state.items())
            )
            header += f"\n  state dump:\n{dump}"
        return header
