"""SPUR's in-cache address translation.

SPUR has no TLB.  Page-table entries live in the *global virtual*
address space and compete with instructions and data for space in the
unified cache [Wood86].  On a cache miss the controller computes the
virtual address of the PTE with a shift-and-concatenate circuit and
looks for it in the cache; on a second miss it looks for the
second-level PTE; second-level page tables are wired at well-known
addresses, so the controller can always fall through to main memory.

This package provides the PTE format of Figure 3.2(a), the two-level
page-table structure, and the translation engine that walks it through
the cache.
"""

from repro.translation.pte import (
    PTE_LAYOUT,
    PageTableEntry,
    pack_pte,
    unpack_pte,
)
from repro.translation.pagetable import PageTable, PageTableLayout
from repro.translation.incache import (
    InCacheTranslator,
    TranslationResult,
    TranslationTiming,
)

__all__ = [
    "InCacheTranslator",
    "PTE_LAYOUT",
    "PageTable",
    "PageTableEntry",
    "PageTableLayout",
    "TranslationResult",
    "TranslationTiming",
    "pack_pte",
    "unpack_pte",
]
