"""The in-cache address translation engine [Wood86].

On a cache miss the controller:

1. computes the global virtual address of the first-level PTE with a
   shift-and-concatenate circuit and looks for it *in the cache*,
   using the unified cache as a very large TLB;
2. on a miss, computes the address of the second-level PTE (which maps
   the page-table page) and looks for *that* in the cache;
3. on a second miss, fetches the second-level PTE directly from main
   memory — legal because second-level page tables are wired down at
   well-known addresses — and then fetches the first-level PTE block.

PTE blocks fetched along the way are installed in the cache, where
they compete with instructions and data for frames; that competition
is the defining property of in-cache translation and is faithfully
modelled (a PTE fill can evict the very data block the processor is
about to re-fetch).

Authoritative PTE *contents* live in :class:`repro.translation.
pagetable.PageTable` (memory is the home location); the cache tracks
which PTE blocks are resident purely for cost and conflict behaviour.
Fault handlers update PTEs through the page table at a cost already
folded into the handler times of Table 3.2.
"""

from dataclasses import dataclass
from typing import NamedTuple

from repro.common.types import Protection
from repro.counters.events import Event


@dataclass(frozen=True)
class TranslationTiming:
    """Cycle costs of the translation walk.

    The paper prices a PTE check at 3 cycles when the PTE is in the
    cache, with a weighted miss penalty of about 2 more cycles on
    average (Section 3.2, WRITE analysis); the block-transfer costs of
    actual PTE fetches come from the memory timing via the cache.
    """

    pte_check_cycles: int = 3
    second_level_check_cycles: int = 3


class TranslationResult(NamedTuple):
    """Outcome of one translation walk."""

    pte: object          # PageTableEntry (invalid if page not mapped)
    cycles: int
    first_level_hit: bool
    second_level_hit: bool   # only meaningful when first level missed
    went_to_memory: bool     # second-level PTE fetched from memory


class InCacheTranslator:
    """Walks the two-level page table through the virtual cache."""

    def __init__(self, page_table, cache, timing=None, counters=None):
        self.page_table = page_table
        self.cache = cache
        self.timing = timing or TranslationTiming()
        self.counters = counters

    def translate(self, vaddr):
        """Translate a (missing) reference's address.

        Returns a :class:`TranslationResult` whose ``pte`` field is the
        live page-table entry for the page — possibly invalid, in which
        case the caller raises a page fault, services it, and simply
        uses the same (now valid) entry.
        """
        layout = self.page_table.layout
        vpn = vaddr >> layout.page_bits
        pte = self.page_table.entry(vpn)
        pte_vaddr = layout.pte_vaddr(vpn)

        counters = self.counters
        if counters is not None:
            counters.increment(Event.TRANSLATION)

        cycles = self.timing.pte_check_cycles
        if self.cache.probe(pte_vaddr) >= 0:
            if counters is not None:
                counters.increment(Event.PTE_CACHE_HIT)
            return TranslationResult(pte, cycles, True, False, False)

        if counters is not None:
            counters.increment(Event.PTE_CACHE_MISS)
            counters.increment(Event.SECOND_LEVEL_LOOKUP)

        # First-level PTE missed: look for the second-level PTE.
        second_vaddr = layout.second_level_pte_vaddr(pte_vaddr)
        cycles += self.timing.second_level_check_cycles
        second_hit = self.cache.probe(second_vaddr) >= 0
        went_to_memory = False
        if second_hit:
            if counters is not None:
                counters.increment(Event.SECOND_LEVEL_CACHE_HIT)
        else:
            # Second-level tables are wired: fetch straight from
            # memory and cache the block.
            went_to_memory = True
            if counters is not None:
                counters.increment(Event.SECOND_LEVEL_MEMORY_ACCESS)
            _, fill_cycles = self.cache.fill(
                second_vaddr,
                Protection.KERNEL,
                page_dirty=True,
                by_write=False,
                holds_pte=True,
            )
            cycles += fill_cycles

        # Fetch the first-level PTE block and install it.
        _, fill_cycles = self.cache.fill(
            pte_vaddr,
            Protection.KERNEL,
            page_dirty=True,
            by_write=False,
            holds_pte=True,
        )
        cycles += fill_cycles
        return TranslationResult(pte, cycles, False, second_hit,
                                 went_to_memory)
