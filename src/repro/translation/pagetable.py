"""Two-level page tables in SPUR's global virtual address space.

The first-level page table is a linear array of 4-byte PTEs living in
a dedicated region of the *global virtual* space, so the PTE for
virtual page ``vpn`` sits at ``pte_base + 4 * vpn`` — the address the
cache controller forms with its shift-and-concatenate circuit.  The
first-level table is itself paged; the second-level PTEs that map it
are *wired down* at well-known addresses, which is what lets the
controller fetch them straight from memory when they miss in the cache.

The reproduction keeps PTEs as Python objects keyed by virtual page
number (memory is the home location; the cache holds copies for cost
accounting), and exposes the address arithmetic the translation engine
and the cache-conflict behaviour depend on.
"""

from dataclasses import dataclass

from repro.common.errors import AddressError, ConfigurationError
from repro.common.units import is_power_of_two, log2_exact
from repro.translation.pte import PageTableEntry

#: Size of one packed PTE in bytes (one 32-bit word).
PTE_BYTES = 4


@dataclass(frozen=True)
class PageTableLayout:
    """Where the page tables live in the global virtual space.

    Attributes
    ----------
    page_bytes:
        Virtual-memory page size.
    pte_base:
        Base global virtual address of the linear first-level table.
    second_level_base:
        Base global virtual address of the wired second-level table.
    user_limit:
        Exclusive upper bound of ordinary (non-page-table) addresses;
        workload generators must stay below it.
    """

    page_bytes: int = 4096
    pte_base: int = 0x8000_0000
    second_level_base: int = 0xC000_0000
    user_limit: int = 0x8000_0000

    def __post_init__(self):
        if not is_power_of_two(self.page_bytes):
            raise ConfigurationError("page size must be a power of two")
        if self.pte_base % self.page_bytes:
            raise ConfigurationError("pte_base must be page aligned")
        if self.second_level_base % self.page_bytes:
            raise ConfigurationError(
                "second_level_base must be page aligned"
            )
        first_level_span = (self.user_limit // self.page_bytes) * PTE_BYTES
        if self.pte_base + first_level_span > self.second_level_base:
            raise ConfigurationError(
                "first-level table would overlap the second-level table"
            )

    @property
    def page_bits(self):
        return log2_exact(self.page_bytes)

    def pte_vaddr(self, vpn):
        """Global virtual address of the first-level PTE for ``vpn``.

        This is the shift-and-concatenate computation done in hardware
        on every cache miss.
        """
        return self.pte_base + vpn * PTE_BYTES

    def second_level_pte_vaddr(self, pte_vaddr):
        """Global virtual address of the second-level PTE mapping a
        first-level page-table page."""
        table_vpn = pte_vaddr >> self.page_bits
        return self.second_level_base + table_vpn * PTE_BYTES

    def is_page_table_address(self, vaddr):
        """True if ``vaddr`` falls in either page-table region."""
        return vaddr >= self.pte_base

    def vpn_of(self, vaddr):
        """Virtual page number of an ordinary address."""
        if vaddr >= self.user_limit:
            raise AddressError(
                f"{vaddr:#x} is not an ordinary user/global address"
            )
        return vaddr >> self.page_bits


#: Shared invalid PTE returned by :meth:`PageTable.lookup` for unmapped
#: pages.  Read-only by convention.
_INVALID_SENTINEL = PageTableEntry()


class PageTable:
    """The global page table: virtual page number -> PTE.

    Entries are created lazily on first :meth:`map`; :meth:`lookup`
    of an unmapped page returns an invalid sentinel PTE rather than
    ``None`` so hot-path callers can test ``pte.valid`` without a
    branch on missingness.
    """

    def __init__(self, layout=None):
        self.layout = layout or PageTableLayout()
        self._entries = {}
        #: Bound ``dict.get``: the PTE for a vpn or ``None``, with no
        #: entry creation and no call overhead beyond the dict lookup.
        #: The batched miss resolver probes this before committing to
        #: its fast path (``None`` → the legacy path owns creation).
        self.peek = self._entries.get

    def __len__(self):
        return len(self._entries)

    def __contains__(self, vpn):
        return vpn in self._entries

    def entry(self, vpn):
        """Return the PTE for ``vpn``, creating an invalid one if new."""
        pte = self._entries.get(vpn)
        if pte is None:
            pte = PageTableEntry()
            self._entries[vpn] = pte
        return pte

    def lookup(self, vpn):
        """Return the PTE for ``vpn`` or an invalid shared sentinel.

        The sentinel must not be mutated; callers that intend to write
        use :meth:`entry`.
        """
        return self._entries.get(vpn, _INVALID_SENTINEL)

    def map(self, vpn, ppn, protection, kind, coherent=False):
        """Install a valid mapping for ``vpn``.

        Returns the (fresh or reused) PTE.  The reference and dirty
        bits start clear; Sprite's zero-fill pages are mapped with the
        dirty bit off exactly so the first write faults (Section 3.2).
        """
        pte = self.entry(vpn)
        pte.ppn = ppn
        pte.protection = protection
        pte.valid = True
        pte.dirty = False
        pte.software_dirty = False
        pte.referenced = False
        pte.cacheable = True
        pte.coherent = coherent
        pte.kind = kind
        return pte

    def unmap(self, vpn):
        """Invalidate the mapping for ``vpn`` (it remains allocated)."""
        pte = self._entries.get(vpn)
        if pte is not None:
            pte.valid = False

    def resident_vpns(self):
        """Virtual page numbers with valid mappings."""
        return [vpn for vpn, pte in self._entries.items() if pte.valid]

    def items(self):
        """Iterate ``(vpn, PTE)`` pairs, mapped or not."""
        return self._entries.items()
