"""The SPUR page-table entry, as drawn in Figure 3.2(a).

A PTE is one 32-bit word holding the physical page number plus the
bits this paper is about:

* ``PR`` — two protection bits,
* ``C``  — coherency (bus-snooped) flag,
* ``K``  — cacheable flag,
* ``D``  — the *page* dirty bit,
* ``R``  — the *page* referenced bit,
* ``V``  — valid bit.

The mutable :class:`PageTableEntry` is what the simulator manipulates;
:func:`pack_pte`/:func:`unpack_pte` round-trip it through the hardware
word format (and feed the Figure 3.2 renderer).
"""

from repro.common.bitfields import BitField, BitLayout
from repro.common.types import PageKind, Protection

#: Hardware word layout of a PTE (Figure 3.2a).  The physical page
#: number occupies the top twenty bits; the flag bits sit at the bottom
#: with a reserved hole left for the software bits Sprite kept there.
PTE_LAYOUT = BitLayout(
    "SPUR PTE",
    32,
    [
        BitField("V", 0, 1, "Page Valid Bit"),
        BitField("R", 1, 1, "Page Referenced Bit"),
        BitField("D", 2, 1, "Page Dirty Bit"),
        BitField("K", 3, 1, "Cacheable"),
        BitField("C", 4, 1, "Coherency"),
        BitField("PR", 5, 2, "Protection (2 bits)"),
        BitField("PPN", 12, 20, "Physical Page Number"),
    ],
)


class PageTableEntry:
    """A mutable page-table entry.

    Besides the hardware fields, the entry carries the software state
    Sprite kept alongside: a *software dirty bit* (set by the FAULT and
    FLUSH emulation handlers before they raise the hardware protection
    level) and the page's origin kind (zero-fill, file, or swap) used
    for the paper's :math:`N_{zfod}` accounting.
    """

    __slots__ = (
        "ppn",
        "protection",
        "dirty",
        "referenced",
        "valid",
        "cacheable",
        "coherent",
        "software_dirty",
        "kind",
    )

    def __init__(
        self,
        ppn=0,
        protection=Protection.NONE,
        dirty=False,
        referenced=False,
        valid=False,
        cacheable=True,
        coherent=False,
        software_dirty=False,
        kind=PageKind.FILE,
    ):
        self.ppn = ppn
        self.protection = protection
        self.dirty = dirty
        self.referenced = referenced
        self.valid = valid
        self.cacheable = cacheable
        self.coherent = coherent
        self.software_dirty = software_dirty
        self.kind = kind

    def is_modified(self):
        """True if either the hardware or software dirty bit is set.

        The FAULT/FLUSH alternatives keep the truth in the software
        bit; the SPUR/WRITE/MIN alternatives keep it in the hardware
        bit.  Replacement code asks this question, not either bit
        directly.
        """
        return self.dirty or self.software_dirty

    def clear(self):
        """Reset the entry to the invalid state."""
        self.ppn = 0
        self.protection = Protection.NONE
        self.dirty = False
        self.referenced = False
        self.valid = False
        self.software_dirty = False

    def __repr__(self):
        flags = "".join(
            letter if flag else "-"
            for letter, flag in (
                ("V", self.valid),
                ("R", self.referenced),
                ("D", self.dirty),
                ("d", self.software_dirty),
                ("K", self.cacheable),
                ("C", self.coherent),
            )
        )
        return (
            f"PageTableEntry(ppn={self.ppn:#x}, "
            f"prot={self.protection.name}, flags={flags})"
        )


def pack_pte(pte):
    """Pack a :class:`PageTableEntry` into its 32-bit hardware word.

    The software dirty bit and page kind are software-only state and do
    not appear in the hardware word.
    """
    return PTE_LAYOUT.pack(
        V=int(pte.valid),
        R=int(pte.referenced),
        D=int(pte.dirty),
        K=int(pte.cacheable),
        C=int(pte.coherent),
        PR=int(pte.protection),
        PPN=pte.ppn,
    )


def unpack_pte(word):
    """Unpack a 32-bit hardware word into a :class:`PageTableEntry`."""
    fields = PTE_LAYOUT.unpack(word)
    return PageTableEntry(
        ppn=fields["PPN"],
        protection=Protection(fields["PR"]),
        dirty=bool(fields["D"]),
        referenced=bool(fields["R"]),
        valid=bool(fields["V"]),
        cacheable=bool(fields["K"]),
        coherent=bool(fields["C"]),
    )
