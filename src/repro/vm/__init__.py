"""A Sprite-like virtual-memory system.

The paper's measurements come from the Sprite operating system running
on the SPUR prototype.  This package reimplements the pieces of
Sprite's VM that the paper's phenomena depend on:

* physical frame management and a free-list allocator,
* segment-based process address spaces laid out in SPUR's single
  global virtual space (the OS-level synonym prevention of [Hill86]),
* zero-fill-on-demand stack and heap pages, mapped with the dirty bit
  off so the first write faults (the :math:`N_{zfod}` events),
* a clock page daemon that clears reference bits and reclaims
  unreferenced pages,
* a swap device with the page-in/page-out accounting behind
  Tables 3.5 and 4.1 (including Sprite's quirk of writing zero-fill
  pages to swap on their first replacement even when clean).
"""

from repro.vm.frames import FrameTable
from repro.vm.allocator import FrameAllocator, OutOfFramesError
from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace, Region
from repro.vm.swap import SwapDevice
from repro.vm.pagedaemon import ClockPageDaemon
from repro.vm.faults import FaultKind
from repro.vm.system import VirtualMemorySystem, VmPage, VmStats

__all__ = [
    "AddressSpaceMap",
    "ClockPageDaemon",
    "FaultKind",
    "FrameAllocator",
    "FrameTable",
    "OutOfFramesError",
    "ProcessAddressSpace",
    "Region",
    "SwapDevice",
    "VirtualMemorySystem",
    "VmPage",
    "VmStats",
]
