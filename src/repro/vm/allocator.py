"""Free-frame allocator.

A LIFO free list over the allocatable frames of a
:class:`repro.vm.frames.FrameTable`.  The allocator never blocks; when
it is empty the VM system must reclaim frames through the page daemon
before asking again.  :class:`OutOfFramesError` therefore indicates a
VM-system logic error (asked without reclaiming), not a recoverable
condition, and the system tests assert it never escapes.
"""

from repro.common.errors import ReproError


class OutOfFramesError(ReproError):
    """Allocation was attempted with no free frames available."""


class FrameAllocator:
    """LIFO allocator over a frame table's allocatable frames."""

    def __init__(self, frame_table):
        self.frame_table = frame_table
        self._free = list(
            range(frame_table.num_frames - 1,
                  frame_table.wired_frames - 1, -1)
        )

    @property
    def free_count(self):
        return len(self._free)

    def allocate(self, vpn):
        """Take a free frame and assign it to ``vpn``."""
        if not self._free:
            raise OutOfFramesError(
                f"no free frame for page {vpn}; the caller must reclaim"
            )
        frame = self._free.pop()
        self.frame_table.assign(frame, vpn)
        return frame

    def free(self, frame):
        """Release ``frame`` back to the free list."""
        self.frame_table.release(frame)
        self._free.append(frame)
