"""Fault taxonomy.

SPUR's cache controller reports the fault type in a status register;
the kernel's fault dispatcher decodes it and runs the matching handler
(the ~1000-cycle path of Table 3.2).  The simulator classifies faults
with this enum for counter and diagnostic purposes; the handlers
themselves live with the policies (dirty/reference) and the VM system
(page faults).
"""

import enum


class FaultKind(enum.Enum):
    """Why the hardware trapped to software."""

    PAGE_FAULT = "page-fault"          # invalid PTE: page not resident
    DIRTY_FAULT = "dirty-fault"        # first write to a clean page
    EXCESS_FAULT = "excess-fault"      # stale cached protection (Fig 3.1)
    REFERENCE_FAULT = "reference-fault"  # reference bit needs setting
    PROTECTION_FAULT = "protection-fault"  # genuine access violation

    @property
    def is_dirty_related(self):
        return self in (FaultKind.DIRTY_FAULT, FaultKind.EXCESS_FAULT)
