"""Physical page-frame bookkeeping (Sprite's "core map").

One record per frame of physical memory, tracking which virtual page
occupies it.  The frame table answers "who owns frame f" and "is frame
f free" — the inverse of the page table's vpn -> ppn mapping — and is
what the page daemon and allocator coordinate through.
"""

from repro.common.errors import ConfigurationError

#: Sentinel for a frame not holding any page.
FREE = -1


class FrameTable:
    """Occupancy map of physical memory.

    Parameters
    ----------
    num_frames:
        Total frames of physical memory.
    wired_frames:
        Frames permanently reserved for the kernel and the wired
        second-level page tables; never allocatable.
    """

    def __init__(self, num_frames, wired_frames=0):
        if num_frames <= 0:
            raise ConfigurationError("need at least one frame")
        if not 0 <= wired_frames < num_frames:
            raise ConfigurationError(
                f"wired_frames {wired_frames} must leave at least one "
                f"allocatable frame of {num_frames}"
            )
        self.num_frames = num_frames
        self.wired_frames = wired_frames
        # Frames [0, wired_frames) are the kernel's; the rest start free.
        self._owner = [FREE] * num_frames

    @property
    def allocatable_frames(self):
        return self.num_frames - self.wired_frames

    def owner(self, frame):
        """Virtual page number occupying ``frame``, or ``None``."""
        vpn = self._owner[frame]
        return None if vpn == FREE else vpn

    def is_free(self, frame):
        return self._owner[frame] == FREE

    def assign(self, frame, vpn):
        """Record that ``vpn`` now occupies ``frame``."""
        if frame < self.wired_frames:
            raise ConfigurationError(
                f"frame {frame} is wired and cannot hold page {vpn}"
            )
        if self._owner[frame] != FREE:
            raise ConfigurationError(
                f"frame {frame} already holds page {self._owner[frame]}"
            )
        self._owner[frame] = vpn

    def release(self, frame):
        """Mark ``frame`` free, returning its previous occupant."""
        vpn = self._owner[frame]
        if vpn == FREE:
            raise ConfigurationError(f"frame {frame} is already free")
        self._owner[frame] = FREE
        return vpn

    def resident_count(self):
        """Number of occupied allocatable frames."""
        return sum(
            1
            for frame in range(self.wired_frames, self.num_frames)
            if self._owner[frame] != FREE
        )
