"""The clock page daemon.

Sprite's page daemon maintains a pseudo-LRU ordering of resident pages
by periodically clearing reference bits and reclaiming pages whose
bits are still clear on the next visit (second-chance clock).  How the
bits are read and cleared is delegated to the active reference-bit
policy — this indirection is exactly the paper's Section 4 experiment:

* MISS: read/clear the PTE bit only (cached blocks unaffected),
* REF: clearing also flushes the page from the cache so the next
  reference is forced to miss and re-set the bit,
* NOREF: reads always return false and clears do nothing, degrading
  the clock to FIFO while eliminating all reference-bit overhead.
"""

from repro.counters.events import Event


class ClockPageDaemon:
    """One-hand second-chance clock over the resident page list.

    The daemon runs on demand, when the allocator's free count falls
    below ``low_water`` at page-fault time, and reclaims frames until
    ``high_water`` are free (or it has lapped the clock twice, which
    means everything reclaimable was reclaimed).
    """

    def __init__(self, vm, low_water, high_water):
        if high_water < low_water or low_water < 1:
            raise ValueError(
                f"watermarks must satisfy 1 <= low <= high, got "
                f"{low_water}, {high_water}"
            )
        self.vm = vm
        self.low_water = low_water
        self.high_water = high_water
        self._clock = []          # vpns in residency order
        self._positions = {}      # vpn -> index in _clock (for liveness)
        self._hand = 0
        self._poll_hand = 0
        self.runs = 0
        self.polls = 0
        self.pages_examined = 0
        self.pages_reclaimed = 0

    def note_resident(self, vpn):
        """Add a newly resident page behind the hand."""
        self._positions[vpn] = len(self._clock)
        self._clock.append(vpn)

    def note_evicted(self, vpn):
        """Forget a page evicted outside a daemon run."""
        self._positions.pop(vpn, None)

    def needs_run(self):
        """Whether the free pool has fallen below the low watermark."""
        return self.vm.allocator.free_count < self.low_water

    def try_reactivate(self, vpn):
        """The clock keeps no inactive list; nothing to rescue."""
        del vpn
        return False

    def run(self):
        """Advance the clock until enough frames are free.

        Returns the daemon's CPU cycles (scan costs, reference-bit
        clears including any REF-policy page flushes, and eviction
        work; paging I/O initiated by evictions is included by the
        VM's evict path).
        """
        machine = self.vm.machine
        ref_policy = machine.reference_policy
        page_table = self.vm.page_table
        scan_cycles = machine.fault_timing.daemon_page_scan
        counters = machine.counters

        self.runs += 1
        cycles = 0
        # Two full laps bound the scan: the first lap may only clear
        # bits, the second then reclaims whatever stayed clear.
        budget = 2 * len(self._clock) + 1
        while (
            self.vm.allocator.free_count < self.high_water and budget > 0
        ):
            if not self._clock:
                break
            if self._hand >= len(self._clock):
                self._hand = 0
                self._compact()
                if not self._clock:
                    break
            vpn = self._clock[self._hand]
            budget -= 1
            if vpn not in self._positions:
                # Stale slot left by an earlier eviction.
                self._hand += 1
                continue
            pte = page_table.lookup(vpn)
            if not pte.valid:
                self._positions.pop(vpn, None)
                self._hand += 1
                continue
            self.pages_examined += 1
            cycles += scan_cycles
            counters.increment(Event.DAEMON_PAGE_SCAN)
            if ref_policy.read_reference(pte):
                cycles += ref_policy.clear_reference(machine, vpn, pte)
                counters.increment(Event.REFERENCE_CLEAR)
                self._hand += 1
            else:
                cycles += self.vm.evict(vpn)
                self.pages_reclaimed += 1
                self._positions.pop(vpn, None)
                self._hand += 1
        return cycles

    def poll(self):
        """Periodic clear-only maintenance pass (no reclaiming).

        Sprite's page daemon woke on a timer and aged reference bits
        even when memory was plentiful; without this, the standing
        cost of *maintaining* reference information — the overhead the
        NOREF policy exists to eliminate — would only appear under
        paging pressure.  Each poll advances a separate hand over
        about a sixth of the resident pages, clearing set bits through
        the active policy (a PTE write under MISS, a page flush under
        REF).  Returns the daemon's cycles; 0 under NOREF, whose
        machine-dependent routines do nothing.
        """
        machine = self.vm.machine
        ref_policy = machine.reference_policy
        if not ref_policy.maintains_bits:
            return 0
        page_table = self.vm.page_table
        scan_cycles = machine.fault_timing.daemon_page_scan
        counters = machine.counters

        self.polls += 1
        cycles = 0
        if not self._clock:
            return 0
        quota = max(16, len(self._clock) // 6)
        while quota > 0:
            if self._poll_hand >= len(self._clock):
                self._poll_hand = 0
            vpn = self._clock[self._poll_hand]
            self._poll_hand += 1
            quota -= 1
            if vpn not in self._positions:
                continue
            pte = page_table.lookup(vpn)
            if not pte.valid:
                continue
            self.pages_examined += 1
            cycles += scan_cycles
            counters.increment(Event.DAEMON_PAGE_SCAN)
            if ref_policy.read_reference(pte):
                cycles += ref_policy.clear_reference(machine, vpn, pte)
                counters.increment(Event.REFERENCE_CLEAR)
        return cycles

    def _compact(self):
        """Drop stale slots accumulated by evictions."""
        live = [vpn for vpn in self._clock if vpn in self._positions]
        self._clock = live
        self._positions = {vpn: i for i, vpn in enumerate(live)}
        if self._hand > len(live):
            self._hand = 0

    def resident_pages(self):
        """Currently tracked resident vpns (testing hook)."""
        return [vpn for vpn in self._clock if vpn in self._positions]
