"""Segmented-FIFO page replacement: no reference bits at all.

Section 4.1 closes its NOREF discussion with "we believe there may be
better replacement algorithms that do not support reference bits."
This module implements the classic candidate (VMS used it on hardware
without reference bits): a two-segment FIFO.

Resident pages sit on an *active* FIFO.  Under memory pressure the
daemon soft-evicts from the active head onto an *inactive* list —
pages there are unmapped (so any touch faults) but keep their frames
and contents.  A fault on an inactive page is a cheap *reactivation*:
remap, no I/O.  Frames are actually freed from the inactive head, so
a page only pays disk traffic after surviving a full trip through both
segments unreferenced.  The inactive list plays the role reference
bits play for the clock: recently used pages prove it by faulting
back before they reach the hard-eviction end.

Because soft-eviction must flush the page from the virtually addressed
cache (else cached blocks keep hitting and the reactivation fault
never fires), the scheme pays flush cycles instead of reference-bit
maintenance — a trade this reproduction makes measurable
(``benchmarks/bench_segfifo.py``).
"""

from collections import deque

from repro.common.errors import ConfigurationError


class SegmentedFifoDaemon:
    """Two-segment FIFO reclaimer (drop-in for ClockPageDaemon).

    Parameters
    ----------
    vm:
        The owning :class:`VirtualMemorySystem`.
    low_water / high_water:
        Free-frame trigger and target, as for the clock daemon.
    inactive_target:
        Desired inactive-list length; the daemon refills the list to
        this depth before hard-evicting from its head.
    """

    def __init__(self, vm, low_water, high_water, inactive_target):
        if high_water < low_water or low_water < 1:
            raise ValueError(
                "watermarks must satisfy 1 <= low <= high"
            )
        if inactive_target < 1:
            raise ConfigurationError(
                "inactive_target must be at least one page"
            )
        self.vm = vm
        self.low_water = low_water
        self.high_water = high_water
        self.inactive_target = inactive_target
        self._active = deque()
        self._active_members = set()
        self._inactive = deque()
        self._inactive_members = set()
        self.runs = 0
        self.reactivations = 0
        self.pages_reclaimed = 0

    # -- residency bookkeeping (ClockPageDaemon interface) ----------------

    def note_resident(self, vpn):
        """Add a newly resident page to the active FIFO's tail."""
        self._active.append(vpn)
        self._active_members.add(vpn)

    def note_evicted(self, vpn):
        """A page evicted outside the daemon (process teardown)."""
        self._active_members.discard(vpn)
        self._inactive_members.discard(vpn)

    def needs_run(self):
        """Whether the free pool has fallen below the low watermark."""
        return self.vm.allocator.free_count < self.low_water

    def try_reactivate(self, vpn):
        """Claim an inactive page for rescue; True if it was ours."""
        if vpn not in self._inactive_members:
            return False
        self._inactive_members.discard(vpn)
        self.note_resident(vpn)
        self.reactivations += 1
        return True

    def poll(self):
        """No reference bits to age: the periodic pass is free."""
        return 0

    # -- reclamation ---------------------------------------------------------

    def run(self):
        """Free frames: refill the inactive list, then evict its head."""
        self.runs += 1
        cycles = 0
        allocator = self.vm.allocator
        guard = 4 * (len(self._active) + len(self._inactive)) + 8
        while allocator.free_count < self.high_water and guard > 0:
            guard -= 1
            if (
                len(self._inactive_members) < self.inactive_target
                and self._active_members
            ):
                vpn = self._pop_live(self._active,
                                     self._active_members)
                if vpn is None:
                    continue
                cycles += self.vm.deactivate(vpn)
                self._inactive.append(vpn)
                self._inactive_members.add(vpn)
            elif self._inactive_members:
                vpn = self._pop_live(self._inactive,
                                     self._inactive_members)
                if vpn is None:
                    continue
                cycles += self.vm.evict_inactive(vpn)
                self.pages_reclaimed += 1
            elif self._active_members:
                # Inactive list disabled or starved: straight FIFO.
                vpn = self._pop_live(self._active,
                                     self._active_members)
                if vpn is None:
                    continue
                cycles += self.vm.deactivate(vpn)
                cycles += self.vm.evict_inactive(vpn)
                self.pages_reclaimed += 1
            else:
                break
        return cycles

    def _pop_live(self, queue, members):
        """Pop the next still-tracked vpn from a queue."""
        while queue:
            vpn = queue.popleft()
            if vpn in members:
                members.discard(vpn)
                return vpn
        return None

    def resident_pages(self):
        """Active-segment vpns (testing hook)."""
        return [vpn for vpn in self._active
                if vpn in self._active_members]

    def inactive_pages(self):
        """Inactive-segment vpns (testing hook)."""
        return [vpn for vpn in self._inactive
                if vpn in self._inactive_members]
