"""Segment-based process address spaces in SPUR's global space.

SPUR prevents virtual-address synonyms by making processes that share
memory use the same *global* virtual address; the hardware provides a
simple segment mapping from each process's virtual space into the
global space [Hill86].  The reproduction follows that design: every
process is a set of :class:`Region` objects (code, data, heap, stack,
mapped files) carved out of the single global space, and workload
generators emit global addresses directly.

The VM system consults the :class:`AddressSpaceMap` on a page fault to
learn the faulting page's attributes — writable?  file-backed or
zero-fill? — which drive protection, dirty-bit, and swap behaviour.
"""

import bisect
import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import AddressError, ConfigurationError
from repro.common.types import PageKind


class RegionKind(enum.Enum):
    """Role of a region within a process image."""

    CODE = "code"
    DATA = "data"
    HEAP = "heap"
    STACK = "stack"
    FILE = "file"

    @property
    def writable(self):
        """Code and mapped input files are read-only; data, heap and
        stack pages can be modified (they are what Table 3.5 calls
        "potentially modified")."""
        return self not in (RegionKind.CODE, RegionKind.FILE)

    @property
    def page_kind(self):
        """Backing-store kind for pages of this region.

        Code, initialised data, and mapped files come from files; heap
        and stack pages are zero-filled on demand (Sprite maps them
        with the dirty bit off).
        """
        if self in (RegionKind.HEAP, RegionKind.STACK):
            return PageKind.ZERO_FILL
        return PageKind.FILE


@dataclass(frozen=True)
class Region:
    """A contiguous run of pages with uniform attributes."""

    name: str
    kind: RegionKind
    start: int          # inclusive global virtual address, page aligned
    size: int           # bytes, whole pages
    pid: int = 0

    @property
    def end(self):
        """Exclusive upper bound address."""
        return self.start + self.size

    @property
    def writable(self):
        return self.kind.writable

    @property
    def page_kind(self):
        return self.kind.page_kind

    def contains(self, vaddr):
        return self.start <= vaddr < self.end


class AddressSpaceMap:
    """All regions of all processes, indexed for fast page lookup."""

    def __init__(self, page_bytes):
        self.page_bytes = page_bytes
        self._regions: List[Region] = []
        self._starts: List[int] = []
        self._sealed = False

    def add(self, region):
        """Register a region.  Regions must not overlap."""
        if self._sealed:
            raise ConfigurationError("address-space map is sealed")
        if region.start % self.page_bytes or region.size % self.page_bytes:
            raise ConfigurationError(
                f"region {region.name!r} is not page aligned"
            )
        if region.size <= 0:
            raise ConfigurationError(
                f"region {region.name!r} has non-positive size"
            )
        for existing in self._regions:
            if region.start < existing.end and existing.start < region.end:
                raise ConfigurationError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        self._starts = [r.start for r in self._regions]
        return region

    def seal(self):
        """Freeze the map; lookups after sealing may be cached."""
        self._sealed = True

    def region_of(self, vaddr) -> Optional[Region]:
        """Region containing ``vaddr``, or ``None``."""
        position = bisect.bisect_right(self._starts, vaddr) - 1
        if position < 0:
            return None
        region = self._regions[position]
        return region if region.contains(vaddr) else None

    def regions(self):
        return tuple(self._regions)

    def total_pages(self):
        return sum(r.size for r in self._regions) // self.page_bytes


class ProcessAddressSpace:
    """Builder for one process's regions within the global space.

    Carves page-aligned regions out of a private slice of the global
    space, mirroring how Sprite laid out SPUR processes via the
    hardware segment map.
    """

    def __init__(self, pid, base, span, space_map):
        if base % space_map.page_bytes:
            raise ConfigurationError("process base must be page aligned")
        self.pid = pid
        self.base = base
        self.span = span
        self.space_map = space_map
        self._cursor = base

    def add_region(self, name, kind, size):
        """Append a region of ``size`` bytes after prior regions.

        A one-page guard gap is left between regions so stack/heap
        growth bugs fault instead of silently bleeding across.
        """
        page = self.space_map.page_bytes
        size = ((size + page - 1) // page) * page
        if self._cursor + size > self.base + self.span:
            raise AddressError(
                f"process {self.pid}: region {name!r} exceeds its "
                f"address-space slice"
            )
        region = Region(
            name=f"p{self.pid}.{name}",
            kind=kind,
            start=self._cursor,
            size=size,
            pid=self.pid,
        )
        self.space_map.add(region)
        self._cursor += size + page  # guard page
        return region
