"""The swap device and paging-I/O accounting.

Models backing store at page granularity: which pages currently have a
swap image, how many page-ins and page-outs have occurred, and the
classification the paper's Table 3.5 reports — of the writable pages
replaced, how many were actually modified (needed the write) and how
many were clean (the write a dirty-bit-less system would waste).
"""

from dataclasses import dataclass
from typing import Set


@dataclass
class SwapStats:
    """Cumulative paging-I/O accounting."""

    page_ins: int = 0            # pages read from file or swap
    page_outs: int = 0           # pages written to swap
    zero_fills: int = 0          # pages created by zeroing (no I/O)
    potentially_modified: int = 0  # writable pages replaced
    not_modified: int = 0        # ... of those, clean at replacement

    @property
    def percent_not_modified(self):
        """Column 7 of Table 3.5: clean fraction of writable replacements."""
        if self.potentially_modified == 0:
            return 0.0
        return 100.0 * self.not_modified / self.potentially_modified

    @property
    def percent_additional_io(self):
        """Column 8 of Table 3.5.

        Without dirty bits every writable replacement is written out;
        the additional I/Os are exactly the clean ones, expressed as a
        percentage of the paging I/O actually performed.
        """
        actual_io = self.page_ins + self.page_outs
        if actual_io == 0:
            return 0.0
        return 100.0 * self.not_modified / actual_io


class SwapDevice:
    """Backing store for anonymous (zero-fill) and dirtied pages.

    File-backed page-ins are counted here too — the device stands in
    for the whole paging I/O path, as the paper's page-in numbers do.
    """

    def __init__(self, io_cycles=120_000):
        self.io_cycles = io_cycles
        self.stats = SwapStats()
        self._images: Set[int] = set()

    def has_image(self, vpn):
        """True if ``vpn`` has been written to swap before."""
        return vpn in self._images

    def page_in(self, vpn):
        """Read a page from backing store.  Returns I/O cycles."""
        self.stats.page_ins += 1
        return self.io_cycles

    def page_out(self, vpn):
        """Write a page to swap.  Returns I/O cycles."""
        self._images.add(vpn)
        self.stats.page_outs += 1
        return self.io_cycles

    def note_zero_fill(self):
        """Record creation of a zero-filled page (no I/O)."""
        self.stats.zero_fills += 1

    def note_writable_replacement(self, was_modified):
        """Record replacement of a writable page for Table 3.5."""
        self.stats.potentially_modified += 1
        if not was_modified:
            self.stats.not_modified += 1

    def drop_image(self, vpn):
        """Forget a page's swap image (process exit)."""
        self._images.discard(vpn)
