"""The virtual-memory system façade.

Owns the page table, frame table, allocator, swap device, and page
daemon, and implements the two macro operations the machine calls:
servicing a page fault and evicting a page.  Policy-specific behaviour
(what protection a fresh mapping gets, how reference bits are set) is
delegated to the machine's active dirty/reference policies, keeping
this module policy-neutral — it is the part of "Sprite" the paper did
*not* vary.
"""

from dataclasses import dataclass

from repro.common.errors import ConfigurationError, ProtectionFault
from repro.common.types import PageKind, Protection
from repro.counters.events import Event
from repro.vm.allocator import FrameAllocator
from repro.vm.frames import FrameTable
from repro.vm.pagedaemon import ClockPageDaemon


class VmPage:
    """Software bookkeeping for one virtual page."""

    __slots__ = ("vpn", "region", "in_swap", "frame", "page_ins",
                 "inactive")

    def __init__(self, vpn, region):
        self.vpn = vpn
        self.region = region
        self.in_swap = False
        self.frame = None
        self.page_ins = 0
        #: On the segmented-FIFO daemon's inactive list: unmapped but
        #: still holding its frame, rescuable without I/O.
        self.inactive = False

    @property
    def resident(self):
        return self.frame is not None


@dataclass
class VmStats:
    """VM-level event totals (paging I/O lives in SwapStats)."""

    page_faults: int = 0
    daemon_cycles: int = 0
    fault_cycles: int = 0


class VirtualMemorySystem:
    """Sprite-like paging over the SPUR machine.

    Parameters
    ----------
    page_table:
        The global :class:`repro.translation.pagetable.PageTable`.
    space_map:
        :class:`repro.vm.segments.AddressSpaceMap` describing every
        process region.
    swap:
        :class:`repro.vm.swap.SwapDevice`.
    num_frames:
        Allocatable + wired physical frames.
    wired_frames:
        Frames reserved for kernel and wired page tables.
    low_water / high_water:
        Page-daemon trigger and target free-frame counts; default to
        about 3% and 6% of allocatable frames.
    """

    def __init__(
        self,
        page_table,
        space_map,
        swap,
        num_frames,
        wired_frames=0,
        low_water=None,
        high_water=None,
        daemon_kind="clock",
        inactive_fraction=0.25,
    ):
        self.page_table = page_table
        self.space_map = space_map
        self.swap = swap
        self.frame_table = FrameTable(num_frames, wired_frames)
        self.allocator = FrameAllocator(self.frame_table)
        allocatable = self.frame_table.allocatable_frames
        if low_water is None:
            low_water = max(2, allocatable // 32)
        if high_water is None:
            high_water = max(low_water, 2 * low_water)
        if high_water >= allocatable:
            raise ConfigurationError(
                "daemon high-water mark leaves no usable memory"
            )
        if daemon_kind == "clock":
            self.daemon = ClockPageDaemon(self, low_water, high_water)
        elif daemon_kind == "segfifo":
            from repro.vm.segfifo import SegmentedFifoDaemon

            inactive_target = max(
                2, int(allocatable * inactive_fraction)
            )
            self.daemon = SegmentedFifoDaemon(
                self, low_water, high_water, inactive_target
            )
        else:
            raise ConfigurationError(
                f"unknown daemon kind {daemon_kind!r}; "
                f"expected 'clock' or 'segfifo'"
            )
        self.pages = {}
        self.stats = VmStats()
        self.machine = None  # set by SpurMachine.attach

    @property
    def page_bytes(self):
        return self.space_map.page_bytes

    def attach_machine(self, machine):
        """Bind the machine (or SMP facade) this VM charges costs to."""
        self.machine = machine

    def page(self, vpn):
        """The :class:`VmPage` record for ``vpn`` (created lazily)."""
        record = self.pages.get(vpn)
        if record is None:
            vaddr = vpn * self.page_bytes
            region = self.space_map.region_of(vaddr)
            if region is None:
                raise ProtectionFault(
                    vaddr, "access to unmapped global address"
                )
            record = VmPage(vpn, region)
            self.pages[vpn] = record
        return record

    # -- page faults ----------------------------------------------------

    def handle_page_fault(self, vpn):
        """Make page ``vpn`` resident.  Returns handler cycles.

        The sequence mirrors Sprite: reclaim frames if the free pool is
        low, allocate a frame, fill it (swap read, file read, or zero
        fill), and install the PTE with policy-chosen protection and
        dirty/reference state.
        """
        machine = self.machine
        timing = machine.fault_timing
        counters = machine.counters
        counters.increment(Event.PAGE_FAULT)
        self.stats.page_faults += 1
        cycles = timing.page_fault_service

        page = self.page(vpn)

        if page.inactive and self.daemon.try_reactivate(vpn):
            # Segmented FIFO rescue: the frame still holds the page;
            # remap it without any I/O (the "soft fault").
            cycles += self.reactivate(vpn)
            self.stats.fault_cycles += cycles
            return cycles

        if self.daemon.needs_run():
            daemon_cycles = self.daemon.run()
            self.stats.daemon_cycles += daemon_cycles
            cycles += daemon_cycles

        frame = self.allocator.allocate(vpn)
        page.frame = frame
        page.page_ins += 1

        if page.in_swap:
            cycles += self.swap.page_in(vpn)
            counters.increment(Event.PAGE_IN)
            kind = PageKind.SWAP
        elif page.region.page_kind is PageKind.FILE:
            cycles += self.swap.page_in(vpn)
            counters.increment(Event.PAGE_IN)
            kind = PageKind.FILE
        else:
            self.swap.note_zero_fill()
            counters.increment(Event.ZERO_FILL_PAGE)
            cycles += machine.zero_fill_cycles
            kind = PageKind.ZERO_FILL

        protection = machine.dirty_policy.map_protection(
            page.region.writable
        )
        pte = self.page_table.map(vpn, frame, protection, kind)
        machine.reference_policy.on_map(pte)
        self.daemon.note_resident(vpn)
        self.stats.fault_cycles += cycles
        return cycles

    # -- eviction ---------------------------------------------------------

    def evict(self, vpn):
        """Remove page ``vpn`` from memory.  Returns cycles.

        Flushes the page's blocks out of the cache (dirty cache data
        must reach memory before the frame is written to swap or
        reused), writes the page to swap when the dirty state demands
        it, and releases the frame.
        """
        machine = self.machine
        counters = machine.counters
        pte = self.page_table.entry(vpn)
        if not pte.valid:
            raise ConfigurationError(f"evicting non-resident page {vpn}")
        page = self.page(vpn)

        page_vaddr = vpn * self.page_bytes
        cycles = machine.flush_page(page_vaddr)

        modified = pte.is_modified()
        if page.region.writable:
            self.swap.note_writable_replacement(modified)

        # Sprite writes a zero-fill page to swap on its first
        # replacement even if clean (paper, footnote 4); thereafter,
        # and for all other pages, only modified pages are written.
        first_zero_fill_out = (
            pte.kind is PageKind.ZERO_FILL and not page.in_swap
        )
        if modified or first_zero_fill_out:
            cycles += self.swap.page_out(vpn)
            counters.increment(Event.PAGE_OUT)
            page.in_swap = True

        counters.increment(Event.PAGE_RECLAIM)
        self.page_table.unmap(vpn)
        pte.dirty = False
        pte.software_dirty = False
        pte.referenced = False
        self.allocator.free(page.frame)
        page.frame = None
        self.daemon.note_evicted(vpn)
        return cycles

    # -- segmented-FIFO operations (soft eviction) ------------------------

    def deactivate(self, vpn):
        """Soft-evict: unmap the page but keep its frame and contents.

        The page's cache blocks must be flushed — a virtually
        addressed cache would otherwise keep *hitting* on the unmapped
        page, bypassing the fault that reactivation relies on (the
        same VA-cache staleness problem the whole paper is about).
        The PTE keeps its dirty state for the eventual hard eviction.
        Returns cycles.
        """
        machine = self.machine
        pte = self.page_table.entry(vpn)
        if not pte.valid:
            raise ConfigurationError(
                f"deactivating non-resident page {vpn}"
            )
        page = self.page(vpn)
        cycles = machine.flush_page(vpn * self.page_bytes)
        pte.valid = False
        page.inactive = True
        machine.counters.increment(Event.PAGE_DEACTIVATE)
        return cycles

    def reactivate(self, vpn):
        """Rescue an inactive page: remap its still-loaded frame."""
        machine = self.machine
        page = self.page(vpn)
        pte = self.page_table.entry(vpn)
        page.inactive = False
        pte.valid = True
        if pte.is_modified():
            pte.protection = Protection.READ_WRITE
        else:
            pte.protection = machine.dirty_policy.map_protection(
                page.region.writable
            )
        machine.reference_policy.on_map(pte)
        machine.counters.increment(Event.PAGE_REACTIVATE)
        return machine.fault_timing.page_fault_service

    def evict_inactive(self, vpn):
        """Hard-evict a page from the inactive list, freeing its frame.

        The cache was already flushed at deactivation, and the PTE has
        been invalid since — no access can have slipped in without
        reactivating — so only the backing-store write remains.
        """
        machine = self.machine
        counters = machine.counters
        page = self.page(vpn)
        pte = self.page_table.entry(vpn)
        if not page.inactive or page.frame is None:
            raise ConfigurationError(
                f"page {vpn} is not on the inactive list"
            )
        cycles = 0
        modified = pte.is_modified()
        if page.region.writable:
            self.swap.note_writable_replacement(modified)
        first_zero_fill_out = (
            pte.kind is PageKind.ZERO_FILL and not page.in_swap
        )
        if modified or first_zero_fill_out:
            cycles += self.swap.page_out(vpn)
            counters.increment(Event.PAGE_OUT)
            page.in_swap = True
        counters.increment(Event.PAGE_RECLAIM)
        pte.dirty = False
        pte.software_dirty = False
        pte.referenced = False
        self.allocator.free(page.frame)
        page.frame = None
        page.inactive = False
        return cycles

    # -- process teardown ---------------------------------------------------

    def teardown_process(self, pid):
        """Free everything a dead process owns, Sprite-style.

        Without teardown, a dead process's pages linger until the
        daemon reclaims them one by one — and its *dirty* pages get
        pointlessly written to swap on the way out.  Teardown knows
        the contents are garbage: cache lines are invalidated without
        write-back, frames are freed without page-outs, and swap
        images are dropped.

        Returns ``(cycles, pages_freed)``.
        """
        machine = self.machine
        # Per-line invalidation is one flush-loop iteration's worth of
        # work; use the active flusher's cheapest per-line price.
        line_cycles = getattr(
            machine.flusher, "check_cycles",
            getattr(machine.flusher, "op_cycles", 1),
        )
        cycles = 0
        freed = 0
        for vpn, page in list(self.pages.items()):
            if page.region.pid != pid:
                continue
            if page.frame is not None:
                # Invalidate the dead page's cache blocks; no
                # write-back — nobody will ever read this data.
                for cache in machine.caches():
                    for index in cache.lines_of_page(
                        vpn * self.page_bytes, self.page_bytes
                    ):
                        cache.invalidate(index, write_back=False)
                        cycles += line_cycles
                pte = self.page_table.entry(vpn)
                pte.clear()
                self.allocator.free(page.frame)
                page.frame = None
                page.inactive = False
                self.daemon.note_evicted(vpn)
                freed += 1
            if page.in_swap:
                self.swap.drop_image(vpn)
                page.in_swap = False
            del self.pages[vpn]
        return cycles, freed

    def resident_pages(self):
        """vpns currently resident (testing and diagnostics)."""
        return [
            vpn for vpn, page in self.pages.items() if page.resident
        ]
