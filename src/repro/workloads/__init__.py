"""Synthetic workloads standing in for the paper's measurement scripts.

The paper drove its prototype with two repeatable synthetic workloads —
WORKLOAD1 (a CAD-tool developer's mix of edits, compiles, a link and
debug of espresso, with the same CAD tool optimising a large PLA in the
background) and SLC (the SPUR Common Lisp compiler over a benchmark
suite) — plus long-running measurements of six Sprite development
machines (Table 3.5).

None of those traces survive, so this package generates equivalents:
multi-process reference streams with phased working sets, zero-fill
heap/stack allocation, file scans, and round-robin context switching,
tuned to reproduce the *event ratios* the paper's analysis consumes
(read-before-write fraction, zero-fill share of dirty faults, paging
pressure vs. memory size).  See DESIGN.md §2 for the substitution
argument.
"""

from repro.workloads.base import (
    DEFAULT_CHUNK_REFS,
    IFETCH,
    READ,
    WRITE,
    Workload,
    WorkloadInstance,
    chunk_accesses,
)
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage
from repro.workloads.mix import RoundRobinScheduler, SerialChain, serial
from repro.workloads.workload1 import Workload1
from repro.workloads.slc import SlcWorkload
from repro.workloads.devsystems import (
    DEV_SYSTEM_PROFILES,
    DevSystemProfile,
    DevSystemWorkload,
)
from repro.workloads.tracefile import (
    read_trace,
    read_trace_chunks,
    write_trace,
)
from repro.workloads.recorded import RecordedWorkload, record_workload
from repro.workloads.scripted import ScriptedWorkload
from repro.workloads.catalog import workload_by_name

__all__ = [
    "DEFAULT_CHUNK_REFS",
    "DEV_SYSTEM_PROFILES",
    "DevSystemProfile",
    "DevSystemWorkload",
    "IFETCH",
    "Phase",
    "PhasedProcess",
    "ProcessImage",
    "READ",
    "RecordedWorkload",
    "RoundRobinScheduler",
    "ScriptedWorkload",
    "SerialChain",
    "SlcWorkload",
    "WRITE",
    "Workload",
    "Workload1",
    "WorkloadInstance",
    "chunk_accesses",
    "read_trace",
    "read_trace_chunks",
    "record_workload",
    "serial",
    "workload_by_name",
    "write_trace",
]
