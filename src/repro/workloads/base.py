"""Workload abstractions.

A :class:`Workload` is a recipe; :meth:`Workload.instantiate` binds it
to a page size and seed, producing a :class:`WorkloadInstance` whose
``accesses()`` iterator the machine consumes.  Instances are one-shot
(generators are consumed); re-instantiate for each run, which is also
how repetitions get fresh-but-reproducible randomness.

References are plain ``(kind, vaddr)`` int tuples — the hot loop in
:mod:`repro.machine.simulator` depends on there being no per-reference
object construction beyond the tuple itself.
"""

from repro.common.rng import DeterministicRng

#: Integer access kinds matching ``int(AccessKind.*)``; workload code
#: uses these bare ints for speed.
IFETCH = 0
READ = 1
WRITE = 2


class WorkloadInstance:
    """A bound, runnable workload.

    Attributes
    ----------
    name:
        Workload name, e.g. ``"WORKLOAD1"``.
    space_map:
        The :class:`repro.vm.segments.AddressSpaceMap` describing every
        region the reference stream can touch.
    length_hint:
        Approximate number of references ``accesses()`` will yield.
    """

    def __init__(self, name, space_map, access_factory, length_hint):
        self.name = name
        self.space_map = space_map
        self._access_factory = access_factory
        self.length_hint = length_hint
        self._consumed = False

    def accesses(self):
        """The reference stream.  May be called once per instance."""
        if self._consumed:
            raise RuntimeError(
                "workload instance already consumed; instantiate a "
                "fresh one per run"
            )
        self._consumed = True
        return self._access_factory()


class Workload:
    """Base class for workload recipes."""

    #: Name used in result tables; matches the paper where applicable.
    name = "ABSTRACT"

    def instantiate(self, page_bytes, seed=0):
        """Bind to a page size and seed; returns a WorkloadInstance."""
        raise NotImplementedError

    def _rng(self, seed):
        """Seeded RNG namespaced by workload, so WORKLOAD1 seed 3 and
        SLC seed 3 do not share draws."""
        return DeterministicRng(seed).substream(self.name)
