"""Workload abstractions.

A :class:`Workload` is a recipe; :meth:`Workload.instantiate` binds it
to a page size and seed, producing a :class:`WorkloadInstance` whose
reference stream the machine consumes.  Instances are one-shot
(generators are consumed); re-instantiate for each run, which is also
how repetitions get fresh-but-reproducible randomness.

Two stream protocols share one instance:

``accesses()``
    The original iterator of ``(kind, vaddr)`` int tuples.

``access_chunks(chunk_refs)``
    The batched protocol: an iterator of flat ``array('q')`` buffers
    holding interleaved ``kind0, vaddr0, kind1, vaddr1, ...`` pairs.
    Every chunk carries exactly ``chunk_refs`` references except the
    last, which may be short.  The chunked hot loop in
    :meth:`repro.machine.simulator.SpurMachine.run_chunks` consumes
    these directly, amortising the per-reference interpreter overhead
    that dominates the tuple path.

Generators that know their own structure implement chunking natively
(see :mod:`repro.workloads.synthetic` and :mod:`repro.workloads.mix`);
:func:`chunk_accesses` adapts any legacy tuple iterator.  Both
protocols emit the identical reference sequence, so simulation results
are bit-identical regardless of which one a run uses.
"""

from array import array

from repro.common.rng import DeterministicRng

#: Integer access kinds matching ``int(AccessKind.*)``; workload code
#: uses these bare ints for speed.
IFETCH = 0
READ = 1
WRITE = 2

#: Default references per flat chunk.  Big enough to amortise chunk
#: bookkeeping, small enough that a chunk stays cache-resident on the
#: host and a max_references cap wastes little generation work.
DEFAULT_CHUNK_REFS = 4096


def chunk_accesses(accesses, chunk_refs=DEFAULT_CHUNK_REFS):
    """Batch a ``(kind, vaddr)`` iterator into flat ``array('q')`` chunks.

    The generic fallback adapter behind ``access_chunks``: any legacy
    iterator becomes a chunk stream with exactly ``chunk_refs``
    references per chunk (the last may be short).  Consumes the
    iterator as chunks are pulled, so a one-shot generator stays
    one-shot.
    """
    if chunk_refs <= 0:
        raise ValueError("chunk_refs must be positive")
    limit = 2 * chunk_refs
    buf = array("q")
    append = buf.append
    for kind, vaddr in accesses:
        append(kind)
        append(vaddr)
        if len(buf) == limit:
            yield buf
            buf = array("q")
            append = buf.append
    if buf:
        yield buf


class WorkloadInstance:
    """A bound, runnable workload.

    Attributes
    ----------
    name:
        Workload name, e.g. ``"WORKLOAD1"``.
    space_map:
        The :class:`repro.vm.segments.AddressSpaceMap` describing every
        region the reference stream can touch.
    length_hint:
        Approximate number of references the stream will yield.
    """

    def __init__(self, name, space_map, access_factory, length_hint,
                 chunk_factory=None):
        self.name = name
        self.space_map = space_map
        self._access_factory = access_factory
        self._chunk_factory = chunk_factory
        self.length_hint = length_hint
        self._consumed = False

    def _claim(self):
        if self._consumed:
            raise RuntimeError(
                "workload instance already consumed; instantiate a "
                "fresh one per run"
            )
        self._consumed = True

    def accesses(self):
        """The ``(kind, vaddr)`` tuple stream.  One-shot per instance."""
        self._claim()
        return self._access_factory()

    def access_chunks(self, chunk_refs=DEFAULT_CHUNK_REFS):
        """The flat-buffer chunk stream.  One-shot per instance.

        Shares the consumption flag with :meth:`accesses`: a run uses
        one protocol or the other, never both.  Generators with a
        native chunk implementation are used directly; anything else
        goes through the :func:`chunk_accesses` adapter.
        """
        self._claim()
        if self._chunk_factory is not None:
            return self._chunk_factory(chunk_refs)
        return chunk_accesses(self._access_factory(), chunk_refs)


class Workload:
    """Base class for workload recipes."""

    #: Name used in result tables; matches the paper where applicable.
    name = "ABSTRACT"

    def instantiate(self, page_bytes, seed=0):
        """Bind to a page size and seed; returns a WorkloadInstance."""
        raise NotImplementedError

    def _rng(self, seed):
        """Seeded RNG namespaced by workload, so WORKLOAD1 seed 3 and
        SLC seed 3 do not share draws."""
        return DeterministicRng(seed).substream(self.name)
