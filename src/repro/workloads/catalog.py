"""Resolve workload names to recipes (the CLI's vocabulary).

``slc``/``lisp``, ``workload1``/``w1``/``cad``, ``dev-<host>``, and
``*.json`` scripted-spec paths all map to workload recipes here.
Library callers get a :class:`ValueError` on unknown names; the CLI
wraps that into a ``SystemExit`` with the same message.
"""

from repro.workloads.devsystems import (
    DEV_SYSTEM_PROFILES,
    DevSystemWorkload,
)
from repro.workloads.slc import SlcWorkload
from repro.workloads.workload1 import Workload1


def workload_by_name(name, length_scale=1.0):
    """The workload recipe for a CLI-style *name*.

    Accepts ``slc``/``lisp``, ``workload1``/``w1``/``cad``,
    ``dev-<host>`` (a Table 3.5 development system), or a path to a
    ``.json`` scripted-workload spec.  Raises :class:`ValueError` for
    anything else.
    """
    if name.endswith(".json"):
        from repro.workloads.scripted import ScriptedWorkload

        return ScriptedWorkload(name, length_scale=length_scale)
    lowered = name.lower()
    if lowered in ("slc", "lisp"):
        return SlcWorkload(length_scale=length_scale)
    if lowered in ("workload1", "w1", "cad"):
        return Workload1(length_scale=length_scale)
    if lowered.startswith("dev-"):
        host = lowered[4:]
        for profile in DEV_SYSTEM_PROFILES:
            if profile.hostname == host:
                return DevSystemWorkload(profile,
                                         length_scale=length_scale)
        raise ValueError(
            f"unknown host {host!r}; known: "
            f"{sorted({p.hostname for p in DEV_SYSTEM_PROFILES})}"
        )
    raise ValueError(
        f"unknown workload {name!r}; try slc, workload1, "
        f"dev-<host>, or a .json spec file"
    )


__all__ = ["workload_by_name"]
