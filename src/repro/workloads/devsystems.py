"""The Sprite development machines of Table 3.5.

The paper measured page-out behaviour on six Berkeley workstations
(mace, sloth, sage, fenugreek, murder — mace appears twice) used for
OS development, mail, and paper writing, asking: of the writable pages
replaced, how many were actually modified?  With >= 8 MB of memory the
answer was at least 80%, rising past 90% at 12 MB — the basis for the
paper's claim that dirty bits save little I/O on big-memory machines.

Each host becomes a :class:`DevSystemProfile`: a memory size (as a
cache ratio, keeping the workload scale-invariant), a churn level (how
many short-lived compile-like jobs cycle through), and a read bias
(how much long-lived, read-mostly writable data — mailboxes, editor
buffers — the machine carries; that data is what gets replaced clean).
"""

from dataclasses import dataclass

from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.mix import RoundRobinScheduler, serial
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage

_SLICE = 0x0100_0000


@dataclass(frozen=True)
class DevSystemProfile:
    """One development machine's configuration and workload character.

    Attributes
    ----------
    hostname:
        As in Table 3.5.
    memory_mb:
        The host's physical memory in paper-scale megabytes.
    uptime_hours:
        Reported measurement interval (documentation; trace length is
        set by ``length_scale`` at instantiation).
    churn:
        Number of short-lived job chains (compiles, greps, TeX runs).
    read_bias:
        Fraction of the long-lived processes' data activity that is
        read-only re-reading of writable pages; drives the clean-
        replacement ("Not Modified") rate.
    """

    hostname: str
    memory_mb: int
    uptime_hours: int
    churn: int
    read_bias: float

    @property
    def memory_ratio(self):
        """Memory as a multiple of the 128 KB cache (scale-free)."""
        return self.memory_mb * 8  # 1 MB / 128 KB


#: The six measurement rows of Table 3.5, in paper order.
DEV_SYSTEM_PROFILES = (
    DevSystemProfile("mace", 8, 70, churn=4, read_bias=0.20),
    DevSystemProfile("sloth", 8, 37, churn=3, read_bias=0.07),
    DevSystemProfile("mace", 8, 46, churn=5, read_bias=0.28),
    DevSystemProfile("sage", 12, 45, churn=3, read_bias=0.06),
    DevSystemProfile("fenugreek", 12, 36, churn=3, read_bias=0.08),
    DevSystemProfile("murder", 16, 119, churn=5, read_bias=0.15),
)


class DevSystemWorkload(Workload):
    """Software-development activity for one profiled host."""

    def __init__(self, profile, length_scale=1.0):
        self.profile = profile
        self.length_scale = length_scale
        self.name = f"dev-{profile.hostname}-{profile.memory_mb}mb"

    def instantiate(self, page_bytes, seed=0):
        rng = self._rng(seed)
        profile = self.profile
        space_map = AddressSpaceMap(page_bytes)
        scale = self.length_scale

        def duration(base):
            return max(1024, int(base * scale))

        processes = []
        next_pid = [0]

        def new_space():
            pid = next_pid[0]
            next_pid[0] += 1
            return ProcessAddressSpace(
                pid, pid * _SLICE + page_bytes, _SLICE - page_bytes,
                space_map,
            )

        # -- churning short-lived jobs: write-heavy, fast turnover -------
        for chain in range(profile.churn):
            jobs = []
            for job in range(4):
                image = ProcessImage(
                    new_space(), code_pages=8, heap_pages=280,
                    file_pages=80,
                )
                jobs.append(PhasedProcess(
                    image,
                    [
                        Phase(
                            duration=duration(70_000),
                            code_hot_pages=4, ws_start=0, ws_pages=110,
                            write_frac=0.45, rmw_frac=0.14,
                            alloc_pages=150, alloc_write_frac=0.8,
                            scan_pages=280, data_skew=1.0,
                        ),
                    ],
                    rng.substream(f"job{chain}.{job}"),
                ))
            processes.append((serial(jobs), 1.0))

        # -- long-lived read-mostly service (mail reader, editor) ---------
        # Its heap pages are writable but mostly re-read; under memory
        # pressure they are the clean writable replacements.
        reader = ProcessImage(
            new_space(), code_pages=10, heap_pages=760, file_pages=96,
            data_pages=420,
        )
        read_bias = profile.read_bias
        reader_phases = []
        for window in range(6):
            reader_phases.append(Phase(
                duration=duration(90_000),
                code_hot_pages=5,
                ws_start=(window * 110) % (760 - 260),
                ws_pages=260,
                write_frac=0.10,
                rmw_frac=0.20,
                alloc_pages=max(2, int(110 * (1.0 - read_bias))),
                scan_pages=24,
                data_skew=0.35,
                data_frac=0.33 * read_bias,
                data_ws_pages=380,
                data_write_frac=0.06,
            ))
        processes.append((PhasedProcess(
            reader, reader_phases, rng.substream("reader")
        ), 1.0))

        space_map.seal()
        scheduler = RoundRobinScheduler(processes, quantum=8192)
        hint = int((profile.churn * 280_000 + 540_000) * scale)
        return WorkloadInstance(
            self.name, space_map, scheduler.accesses, hint,
            chunk_factory=scheduler.access_chunks,
        )
