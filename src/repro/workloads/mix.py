"""Multiprogramming: round-robin interleave of process streams.

The paper's workloads are multi-process scripts under Sprite; context
switches matter to the cache (each quantum refills it with the new
process's blocks, which is part of why the MISS approximation tracks
recency reasonably well).  The scheduler interleaves the per-process
generators in fixed-size quanta, dropping processes as they exit.
"""

import itertools


def serial(processes):
    """Run several processes back to back as one stream.

    Models a shell script's sequential jobs (compile; compile; link)
    occupying one scheduler slot: each job is a separate process image
    whose pages go dead when it exits.
    """
    for proc in processes:
        stream = proc.accesses() if hasattr(proc, "accesses") else proc
        yield from stream


class RoundRobinScheduler:
    """Interleave several reference generators in quanta.

    Parameters
    ----------
    processes:
        Iterable of objects with an ``accesses()`` generator method
        (e.g., :class:`repro.workloads.synthetic.PhasedProcess`), bare
        generators, or ``(process, weight)`` pairs where ``weight``
        scales the process's quantum (a weight-2 process gets twice
        the slice — crude priorities, enough for background jobs).
    quantum:
        References per time slice.
    """

    def __init__(self, processes, quantum=8192):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._streams = []
        for item in processes:
            if isinstance(item, tuple):
                proc, weight = item
            else:
                proc, weight = item, 1.0
            stream = (
                proc.accesses() if hasattr(proc, "accesses") else proc
            )
            slice_size = max(1, int(quantum * weight))
            self._streams.append((stream, slice_size))

    def accesses(self):
        """Yield the interleaved reference stream until all exit."""
        streams = list(self._streams)
        while streams:
            finished = []
            for entry in streams:
                stream, slice_size = entry
                emitted = 0
                for ref in itertools.islice(stream, slice_size):
                    yield ref
                    emitted += 1
                if emitted < slice_size:
                    finished.append(entry)
            for entry in finished:
                streams.remove(entry)
