"""Multiprogramming: round-robin interleave of process streams.

The paper's workloads are multi-process scripts under Sprite; context
switches matter to the cache (each quantum refills it with the new
process's blocks, which is part of why the MISS approximation tracks
recency reasonably well).  The scheduler interleaves the per-process
generators in fixed-size quanta, dropping processes as they exit.

Both stream protocols are supported: ``accesses()`` yields
``(kind, vaddr)`` tuples exactly as before, and ``access_chunks()``
yields flat ``array('q')`` buffers.  The chunked path pulls each
process's stream in whole-quantum chunks — the same slice boundaries
``itertools.islice`` produces — so the interleaved sequence is
bit-identical between the protocols.
"""

import itertools

from array import array

from repro.workloads.base import DEFAULT_CHUNK_REFS, chunk_accesses


def _chunk_stream(proc, chunk_refs):
    """A flat-chunk stream for one scheduled process.

    Processes with a native ``access_chunks`` (e.g.
    :class:`~repro.workloads.synthetic.PhasedProcess`,
    :class:`SerialChain`) chunk themselves; bare generators and
    plain ``accesses()`` objects go through the adapter.
    """
    if hasattr(proc, "access_chunks"):
        return proc.access_chunks(chunk_refs)
    stream = proc.accesses() if hasattr(proc, "accesses") else proc
    return chunk_accesses(stream, chunk_refs)


def serial(processes):
    """Chain several processes back to back as one stream.

    Models a shell script's sequential jobs (compile; compile; link)
    occupying one scheduler slot: each job is a separate process image
    whose pages go dead when it exits.  Returns a :class:`SerialChain`,
    which iterates like the old bare generator and also chunks
    natively.
    """
    return SerialChain(processes)


class SerialChain:
    """Sequential composition of process reference streams."""

    def __init__(self, processes):
        self.processes = list(processes)

    def __iter__(self):
        return self.accesses()

    def accesses(self):
        """Yield ``(kind, vaddr)`` from each process in turn."""
        for proc in self.processes:
            stream = (
                proc.accesses() if hasattr(proc, "accesses") else proc
            )
            yield from stream

    def access_chunks(self, chunk_refs=DEFAULT_CHUNK_REFS):
        """Yield exact ``chunk_refs``-sized flat chunks across jobs.

        Chunks span job boundaries (only the final chunk of the whole
        chain may be short), matching what the adapter would produce
        over the concatenated tuple stream.
        """
        if chunk_refs <= 0:
            raise ValueError("chunk_refs must be positive")
        limit = 2 * chunk_refs
        buf = array("q")
        for proc in self.processes:
            for chunk in _chunk_stream(proc, chunk_refs):
                buf.extend(chunk)
                while len(buf) >= limit:
                    yield buf[:limit]
                    buf = buf[limit:]
        if buf:
            yield buf


class RoundRobinScheduler:
    """Interleave several reference generators in quanta.

    Parameters
    ----------
    processes:
        Iterable of objects with an ``accesses()`` generator method
        (e.g., :class:`repro.workloads.synthetic.PhasedProcess`), bare
        generators, or ``(process, weight)`` pairs where ``weight``
        scales the process's quantum (a weight-2 process gets twice
        the slice — crude priorities, enough for background jobs).
    quantum:
        References per time slice.
    """

    def __init__(self, processes, quantum=8192):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._entries = []
        for item in processes:
            if isinstance(item, tuple):
                proc, weight = item
            else:
                proc, weight = item, 1.0
            slice_size = max(1, int(quantum * weight))
            self._entries.append((proc, slice_size))

    def accesses(self):
        """Yield the interleaved reference stream until all exit."""
        streams = [
            (
                proc.accesses() if hasattr(proc, "accesses") else proc,
                slice_size,
            )
            for proc, slice_size in self._entries
        ]
        while streams:
            finished = []
            for entry in streams:
                stream, slice_size = entry
                emitted = 0
                for ref in itertools.islice(stream, slice_size):
                    yield ref
                    emitted += 1
                if emitted < slice_size:
                    finished.append(entry)
            for entry in finished:
                streams.remove(entry)

    def access_chunks(self, chunk_refs=DEFAULT_CHUNK_REFS):
        """Yield the interleaved stream as exact flat chunks.

        Each round pulls one whole ``slice_size`` chunk per live
        process — precisely the references the tuple path's ``islice``
        slice would carry — and re-chunks the concatenation to
        ``chunk_refs`` boundaries.  A short (or missing) per-process
        chunk marks that process finished, mirroring the
        ``emitted < slice_size`` exit test.
        """
        if chunk_refs <= 0:
            raise ValueError("chunk_refs must be positive")
        limit = 2 * chunk_refs
        streams = [
            (_chunk_stream(proc, slice_size), slice_size)
            for proc, slice_size in self._entries
        ]
        buf = array("q")
        while streams:
            finished = []
            for entry in streams:
                stream, slice_size = entry
                chunk = next(stream, None)
                if chunk is None:
                    finished.append(entry)
                    continue
                buf.extend(chunk)
                while len(buf) >= limit:
                    yield buf[:limit]
                    buf = buf[limit:]
                if len(chunk) >> 1 < slice_size:
                    finished.append(entry)
            for entry in finished:
                streams.remove(entry)
        if buf:
            yield buf
