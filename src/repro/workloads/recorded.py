"""Recorded workloads: capture once, replay everywhere.

Trace-driven simulation was the methodology the paper *wanted* ("it
provides precise repeatability") but could not use at scale in 1989.
Here it is cheap: :func:`record_workload` captures a synthetic
workload's reference stream plus its region map to disk, and
:class:`RecordedWorkload` replays the capture as a drop-in
:class:`~repro.workloads.base.Workload` — bit-identical input for
policy comparisons, cross-machine regression tests, or archiving the
exact stimulus behind a published number.

A capture is two files: ``<path>`` (the binary reference stream, see
:mod:`repro.workloads.tracefile`) and ``<path>.regions`` (a small text
header with the page size and one region per line).
"""

import pathlib

from repro.common.errors import TraceFormatError
from repro.vm.segments import AddressSpaceMap, Region, RegionKind
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.tracefile import (
    read_trace,
    read_trace_chunks,
    write_trace,
)

_REGIONS_MAGIC = "SPUR-REGIONS-1"


def _regions_path(trace_path):
    return pathlib.Path(str(trace_path) + ".regions")


def record_workload(workload, page_bytes, trace_path, seed=0,
                    max_references=None):
    """Capture a workload instantiation to disk.

    Returns the number of references recorded.
    """
    instance = workload.instantiate(page_bytes, seed=seed)
    accesses = instance.accesses()
    if max_references is not None:
        import itertools

        accesses = itertools.islice(accesses, max_references)
    count = write_trace(trace_path, accesses)

    lines = [
        _REGIONS_MAGIC,
        f"name={instance.name}",
        f"page_bytes={page_bytes}",
        f"references={count}",
    ]
    for region in instance.space_map.regions():
        lines.append(
            f"region {region.name} {region.kind.value} "
            f"{region.start} {region.size} {region.pid}"
        )
    _regions_path(trace_path).write_text("\n".join(lines) + "\n")
    return count


class RecordedWorkload(Workload):
    """Replay a capture produced by :func:`record_workload`."""

    def __init__(self, trace_path):
        self.trace_path = pathlib.Path(trace_path)
        regions_path = _regions_path(trace_path)
        if not regions_path.exists():
            raise TraceFormatError(
                f"{regions_path}: region sidecar missing"
            )
        (self.name, self.page_bytes, self.length_hint,
         self._regions) = self._parse_regions(regions_path)

    @staticmethod
    def _parse_regions(path):
        lines = path.read_text().splitlines()
        if not lines or lines[0] != _REGIONS_MAGIC:
            raise TraceFormatError(f"{path}: bad region-file magic")
        header = {}
        regions = []
        for line in lines[1:]:
            if not line.strip():
                continue
            if line.startswith("region "):
                try:
                    _, name, kind, start, size, pid = line.split()
                    regions.append(Region(
                        name=name,
                        kind=RegionKind(kind),
                        start=int(start),
                        size=int(size),
                        pid=int(pid),
                    ))
                except ValueError as error:
                    raise TraceFormatError(
                        f"{path}: malformed region line {line!r}"
                    ) from error
            else:
                key, _, value = line.partition("=")
                header[key] = value
        try:
            return (
                header["name"],
                int(header["page_bytes"]),
                int(header["references"]),
                regions,
            )
        except KeyError as error:
            raise TraceFormatError(
                f"{path}: missing header field {error}"
            ) from None

    def instantiate(self, page_bytes, seed=0):
        """Rebuild the instance.  ``seed`` is ignored (it's a replay);
        ``page_bytes`` must match the recording."""
        if page_bytes != self.page_bytes:
            raise TraceFormatError(
                f"trace was recorded at page size {self.page_bytes}, "
                f"asked to replay at {page_bytes}"
            )
        space_map = AddressSpaceMap(self.page_bytes)
        for region in self._regions:
            space_map.add(region)
        space_map.seal()
        return WorkloadInstance(
            f"{self.name}@recorded",
            space_map,
            lambda: read_trace(self.trace_path),
            self.length_hint,
            chunk_factory=lambda chunk_refs: read_trace_chunks(
                self.trace_path, chunk_refs
            ),
        )
