"""Data-driven workloads: define a workload as a JSON/dict spec.

Studying a new scenario shouldn't require writing Python: a workload
spec is a plain dictionary (or JSON file) naming processes, their
region sizes, phase scripts and scheduler weights, validated eagerly
against the same rules as the code-defined workloads.  The CLI accepts
spec files wherever it accepts a workload name.

Example spec::

    {
      "name": "editor-vs-compiler",
      "quantum": 8192,
      "processes": [
        {
          "name": "editor", "weight": 0.5,
          "code_pages": 4, "heap_pages": 64, "file_pages": 16,
          "phases": [
            {"duration": 50000, "ws_pages": 32, "write_frac": 0.2,
             "scan_pages": 8}
          ]
        },
        {
          "name": "compiler",
          "code_pages": 8, "heap_pages": 256, "file_pages": 32,
          "phases": [
            {"duration": 80000, "ws_pages": 120, "write_frac": 0.4,
             "alloc_pages": 90, "scan_pages": 24}
          ]
        }
      ]
    }

Phase keys are exactly the :class:`~repro.workloads.synthetic.Phase`
fields; unknown keys are rejected rather than ignored.
"""

import dataclasses
import json
import pathlib

from repro.common.errors import ConfigurationError
from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.mix import RoundRobinScheduler
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage

#: Global-space slice reserved per process image.
_SLICE = 0x0100_0000

#: Keys a process entry may carry besides its phases.
_PROCESS_KEYS = {
    "name", "weight", "code_pages", "heap_pages", "stack_pages",
    "data_pages", "file_pages", "phases",
}

_PHASE_KEYS = {field.name for field in dataclasses.fields(Phase)}


class ScriptedWorkload(Workload):
    """A workload built from a validated spec dictionary."""

    def __init__(self, spec, length_scale=1.0):
        if isinstance(spec, (str, pathlib.Path)):
            spec = json.loads(pathlib.Path(spec).read_text())
        self.spec = spec
        self.length_scale = length_scale
        self.name = spec.get("name", "scripted")
        self._validate()

    def _validate(self):
        spec = self.spec
        processes = spec.get("processes")
        if not processes:
            raise ConfigurationError(
                "spec needs a non-empty 'processes' list"
            )
        for entry in processes:
            unknown = set(entry) - _PROCESS_KEYS
            if unknown:
                raise ConfigurationError(
                    f"process {entry.get('name', '?')!r}: unknown "
                    f"keys {sorted(unknown)}"
                )
            if "heap_pages" not in entry or "code_pages" not in entry:
                raise ConfigurationError(
                    f"process {entry.get('name', '?')!r}: needs "
                    f"code_pages and heap_pages"
                )
            phases = entry.get("phases")
            if not phases:
                raise ConfigurationError(
                    f"process {entry.get('name', '?')!r}: needs at "
                    f"least one phase"
                )
            for phase in phases:
                unknown = set(phase) - _PHASE_KEYS
                if unknown:
                    raise ConfigurationError(
                        f"process {entry.get('name', '?')!r}: "
                        f"unknown phase keys {sorted(unknown)}"
                    )
                if "duration" not in phase:
                    raise ConfigurationError(
                        f"process {entry.get('name', '?')!r}: every "
                        f"phase needs a duration"
                    )

    def instantiate(self, page_bytes, seed=0):
        """Build the process images and scheduler from the spec."""
        rng = self._rng(seed)
        space_map = AddressSpaceMap(page_bytes)
        scale = self.length_scale

        scheduled = []
        length_hint = 0
        for pid, entry in enumerate(self.spec["processes"]):
            space = ProcessAddressSpace(
                pid, (pid + 1) * _SLICE, _SLICE, space_map
            )
            image = ProcessImage(
                space,
                code_pages=entry["code_pages"],
                heap_pages=entry["heap_pages"],
                stack_pages=entry.get("stack_pages", 2),
                data_pages=entry.get("data_pages", 0),
                file_pages=entry.get("file_pages", 0),
            )
            phases = []
            for phase_spec in entry["phases"]:
                values = dict(phase_spec)
                values["duration"] = max(
                    1024, int(values["duration"] * scale)
                )
                phases.append(Phase(**values))
                length_hint += values["duration"]
            process = PhasedProcess(
                image, phases,
                rng.substream(entry.get("name", f"p{pid}")),
            )
            scheduled.append(
                (process, float(entry.get("weight", 1.0)))
            )

        space_map.seal()
        scheduler = RoundRobinScheduler(
            scheduled, quantum=int(self.spec.get("quantum", 8192))
        )
        return WorkloadInstance(
            self.name, space_map, scheduler.accesses, length_hint,
            chunk_factory=scheduler.access_chunks,
        )
