"""SLC: the SPUR Common Lisp compiler workload (paper, Section 2).

The original ran the SPUR Lisp system [Zorn87] and its compiler over a
set of benchmark programs.  Lisp's memory behaviour is dominated by
allocation: cons cells are created at a furious rate into fresh
zero-fill heap pages (written before ever being read — prime
:math:`N_{zfod}` territory), followed by garbage-collection sweeps
that read-modify-write the surviving data.  The paper's SLC numbers
show exactly this signature: zero-fill faults are a large,
memory-size-independent share of dirty faults (905 of 1661-2349), and
behaviour is more uniform across policies than WORKLOAD1's.

The synthetic equivalent compiles eight "benchmarks" in sequence
inside one big-heap Lisp process — each benchmark an allocation phase
followed by a GC/compile sweep over a wider survivor region — with a
small driver process alongside.  The heap is sized past the largest
memory configuration, so allocation keeps cycling through pages the
daemon evicted (the total-footprint pressure that gives the paper its
1056 page-ins even at 8 MB), while the sweep working set squeezes the
smaller memories much harder (the 4647 page-ins at 5 MB).
"""

from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.mix import RoundRobinScheduler
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage

_SLICE = 0x0100_0000


class SlcWorkload(Workload):
    """The paper's SLC workload, reconstructed synthetically."""

    name = "SLC"

    def __init__(self, length_scale=1.0, benchmarks=8):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if benchmarks < 1:
            raise ValueError("need at least one benchmark")
        self.length_scale = length_scale
        self.benchmarks = benchmarks

    def instantiate(self, page_bytes, seed=0):
        rng = self._rng(seed)
        space_map = AddressSpaceMap(page_bytes)
        scale = self.length_scale

        def duration(base):
            return max(1024, int(base * scale))

        # -- the Lisp system: one large heap, allocation + GC phases -----
        lisp_space = ProcessAddressSpace(
            0, page_bytes, _SLICE - page_bytes, space_map
        )
        lisp = ProcessImage(
            lisp_space, code_pages=14, heap_pages=2400, file_pages=64
        )
        phases = []
        region = 0
        for bench in range(self.benchmarks):
            # Allocation: cons into fresh pages; the benchmark also
            # reads its own recent structures (write-first dominates).
            phases.append(Phase(
                duration=duration(115_000),
                code_hot_pages=8,
                ws_start=region,
                ws_pages=440,
                write_frac=0.46,
                rmw_frac=0.06,
                alloc_pages=85,
                alloc_write_frac=0.85,
                scan_pages=6,
                data_skew=0.9,
            ))
            # GC / compile pass: sweep the survivors, RMW-heavy.
            phases.append(Phase(
                duration=duration(85_000),
                code_hot_pages=6,
                ws_start=region,
                ws_pages=1150,
                write_frac=0.36,
                rmw_frac=0.26,
                alloc_pages=12,
                data_skew=0.35,
            ))
            region = (region + 300) % (2400 - 1150)
        lisp_proc = PhasedProcess(lisp, phases, rng.substream("lisp"))

        # -- the compiler driver: small, steady ---------------------------
        driver_space = ProcessAddressSpace(
            1, _SLICE + page_bytes, _SLICE - page_bytes, space_map
        )
        driver = ProcessImage(
            driver_space, code_pages=6, heap_pages=72, file_pages=20
        )
        driver_proc = PhasedProcess(
            driver,
            [
                Phase(
                    duration=duration(240_000),
                    code_hot_pages=3, ws_start=0, ws_pages=48,
                    write_frac=0.24, rmw_frac=0.15,
                    alloc_pages=16, scan_pages=16, data_skew=1.0,
                ),
            ],
            rng.substream("driver"),
        )

        space_map.seal()
        scheduler = RoundRobinScheduler(
            [(lisp_proc, 1.0), (driver_proc, 0.35)], quantum=8192
        )
        hint = int(1_900_000 * scale)
        return WorkloadInstance(
            self.name, space_map, scheduler.accesses, hint,
            chunk_factory=scheduler.access_chunks,
        )
