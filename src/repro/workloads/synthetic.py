"""Phased synthetic process model.

A :class:`PhasedProcess` walks a script of :class:`Phase` records, each
describing a program phase: which code pages are hot, which slice of
the heap forms the data working set, the read/write mix, how much
read-modify-write behaviour there is (the source of the paper's
:math:`N_{w\\text{-}hit}` events), how fast fresh zero-fill pages are
allocated (the source of :math:`N_{zfod}`), and how much sequential
file scanning happens.

References are emitted in reusable *bursts* — short instruction/data
sequences repeated a few times — which both models loop locality and
keeps Python-side generation cost far below the simulator's per-
reference cost.

Internally every burst, allocation touch, and file scan is one flat
``array('q')`` *segment* of interleaved ``kind, vaddr`` pairs; the
segment stream drives both the legacy tuple iterator (``accesses``)
and the native chunk stream (``access_chunks``), so the two protocols
consume the RNG identically and emit the identical sequence.
"""

from array import array
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.vm.segments import RegionKind
from repro.workloads.base import DEFAULT_CHUNK_REFS, IFETCH, READ, WRITE

#: Cache block size assumed by the generators (fixed across scales).
BLOCK_BYTES = 32
WORD_BYTES = 4


class ProcessImage:
    """The regions of one process, carved from the global space.

    Parameters are in *pages* of the configured page size; the image
    allocates code, data (file-backed writable), heap and stack
    regions, plus an optional read-only file region for scans.
    """

    def __init__(self, space, code_pages, heap_pages, stack_pages=2,
                 data_pages=0, file_pages=0):
        page = space.space_map.page_bytes
        self.pid = space.pid
        self.page_bytes = page
        self.blocks_per_page = page // BLOCK_BYTES
        self.code = space.add_region("code", RegionKind.CODE,
                                     code_pages * page)
        self.data = (
            space.add_region("data", RegionKind.DATA, data_pages * page)
            if data_pages else None
        )
        self.heap = space.add_region("heap", RegionKind.HEAP,
                                     heap_pages * page)
        self.stack = space.add_region("stack", RegionKind.STACK,
                                      stack_pages * page)
        self.file = (
            space.add_region("file", RegionKind.FILE, file_pages * page)
            if file_pages else None
        )
        self.code_pages = code_pages
        self.heap_pages = heap_pages
        self.data_pages = data_pages
        self.file_pages = file_pages
        self.alloc_cursor = 0   # next fresh heap page to allocate
        self.scan_cursor = 0    # next file page to scan


@dataclass
class Phase:
    """One program phase of a synthetic process.

    Attributes
    ----------
    duration:
        Approximate references to emit.
    code_hot_pages:
        Size of the hot code footprint (pages from the code region's
        start).
    ws_start, ws_pages:
        The heap slice forming this phase's data working set.
    ifetch_per_op:
        Instructions fetched per data operation (the prototype's
        instruction buffer was disabled, so fetches dominate the mix).
    write_frac:
        Fraction of data operations that are writes.
    rmw_frac:
        Fraction of *writes* preceded by a read of the same block —
        these populate the cache by read and modify later, producing
        w-hit events and (while the page is clean) excess faults.
    alloc_pages:
        Fresh zero-fill heap pages touched during the phase,
        write-first (Sprite's ZFOD behaviour).
    alloc_write_frac:
        Fraction of each fresh page's blocks written at allocation.
    scan_pages:
        File pages read sequentially during the phase.
    data_skew:
        Zipf-style skew of page popularity inside the working set.
    stack_frac:
        Fraction of data operations directed at the stack top.
    """

    duration: int
    code_hot_pages: int = 2
    ws_start: int = 0
    ws_pages: int = 4
    ifetch_per_op: int = 3
    write_frac: float = 0.30
    rmw_frac: float = 0.20
    alloc_pages: int = 0
    alloc_write_frac: float = 0.75
    scan_pages: int = 0
    data_skew: float = 1.0
    stack_frac: float = 0.05
    #: Fraction of data operations directed at the file-backed
    #: writable DATA region (read-mostly: mailboxes, editor buffers,
    #: mapped databases).  These are the pages Table 3.5 finds clean
    #: at replacement.
    data_frac: float = 0.0
    data_ws_pages: int = 0
    data_write_frac: float = 0.05

    def validate(self, image):
        """Check the phase fits the image's regions; raise if not."""
        if self.duration <= 0:
            raise ConfigurationError("phase duration must be positive")
        if self.code_hot_pages > image.code_pages:
            raise ConfigurationError("hot code exceeds the code region")
        if self.ws_start + self.ws_pages > image.heap_pages:
            raise ConfigurationError(
                "working set exceeds the heap region"
            )
        if self.scan_pages and image.file is None:
            raise ConfigurationError("phase scans but image has no file")
        if self.data_frac:
            if image.data is None:
                raise ConfigurationError(
                    "phase touches data but image has no data region"
                )
            if self.data_ws_pages > image.data_pages:
                raise ConfigurationError(
                    "data working set exceeds the data region"
                )
        if not 0 <= self.write_frac <= 1 or not 0 <= self.rmw_frac <= 1:
            raise ConfigurationError("fractions must lie in [0, 1]")


class PhasedProcess:
    """Generator of one process's reference stream from a phase script."""

    def __init__(self, image, phases, rng, burst_ops=48,
                 burst_repeats=(3, 8)):
        self.image = image
        self.phases = list(phases)
        for phase in self.phases:
            phase.validate(image)
        self.rng = rng
        self.burst_ops = burst_ops
        self.burst_repeats = burst_repeats
        self.length_hint = sum(p.duration for p in self.phases)

    def accesses(self):
        """Yield ``(kind, vaddr)`` across all phases in order."""
        for segment in self._segments():
            it = iter(segment)
            yield from zip(it, it)

    def access_chunks(self, chunk_refs=DEFAULT_CHUNK_REFS):
        """Yield flat ``array('q')`` chunks of ``chunk_refs`` references.

        Same sequence as :meth:`accesses` (both drain
        :meth:`_segments`); every chunk is exactly ``chunk_refs``
        references except the last.
        """
        if chunk_refs <= 0:
            raise ValueError("chunk_refs must be positive")
        limit = 2 * chunk_refs
        buf = array("q")
        for segment in self._segments():
            buf.extend(segment)
            while len(buf) >= limit:
                yield buf[:limit]
                buf = buf[limit:]
        if buf:
            yield buf

    # -- phase machinery ---------------------------------------------------

    def _segments(self):
        """Yield flat reference segments across all phases in order."""
        for phase in self.phases:
            yield from self._phase_segments(phase)

    def _phase_segments(self, phase):
        rng = self.rng
        emitted = 0
        # Spread allocations and scans evenly through the phase.
        # A bound no emitted count can reach (bursts may overshoot the
        # phase duration by one burst, never by orders of magnitude).
        never = float("inf")
        alloc_every = (
            phase.duration // phase.alloc_pages if phase.alloc_pages
            else never
        )
        scan_every = (
            phase.duration // phase.scan_pages if phase.scan_pages
            else never
        )
        next_alloc = alloc_every
        next_scan = scan_every

        while emitted < phase.duration:
            burst = self._make_burst(phase)
            burst_refs = len(burst) >> 1
            low, high = self.burst_repeats
            for _ in range(rng.randint(low, high)):
                yield burst
                emitted += burst_refs
                if emitted >= next_alloc:
                    alloc = self._alloc_page(phase)
                    yield alloc
                    emitted += len(alloc) >> 1
                    next_alloc += alloc_every
                if emitted >= next_scan:
                    scan = self._scan_page()
                    yield scan
                    emitted += len(scan) >> 1
                    next_scan += scan_every
                if emitted >= phase.duration:
                    break

    def _make_burst(self, phase):
        """Build one reusable loop-body burst as a flat segment."""
        image = self.image
        rng = self.rng
        page_bytes = image.page_bytes
        blocks = image.blocks_per_page
        code_base = image.code.start
        heap_base = image.heap.start
        stack_top = image.stack.end - page_bytes

        burst = array("q")
        append = burst.append

        # One hot code page per burst, fetched sequentially — a loop.
        code_page = rng.zipf_index(phase.code_hot_pages, skew=1.5)
        code_page_base = code_base + code_page * page_bytes
        code_offset = rng.randrange(blocks) * BLOCK_BYTES

        for _ in range(self.burst_ops):
            for _ in range(phase.ifetch_per_op):
                append(IFETCH)
                append(code_page_base + code_offset)
                code_offset = (code_offset + WORD_BYTES) % page_bytes

            roll = rng.random()
            if roll < phase.stack_frac:
                # Stack traffic: write-then-read near the top.
                offset = rng.randrange(blocks) * BLOCK_BYTES
                append(WRITE)
                append(stack_top + offset)
                append(READ)
                append(stack_top + offset)
                continue
            if roll < phase.stack_frac + phase.data_frac:
                # Read-mostly traffic over file-backed writable data.
                data_page = rng.zipf_index(
                    max(1, phase.data_ws_pages), skew=0.3
                )
                addr = (
                    image.data.start
                    + data_page * page_bytes
                    + rng.randrange(blocks) * BLOCK_BYTES
                )
                if rng.random() < phase.data_write_frac:
                    append(WRITE)
                else:
                    append(READ)
                append(addr)
                continue

            page = phase.ws_start + rng.zipf_index(
                phase.ws_pages, skew=phase.data_skew
            )
            block = rng.randrange(blocks)
            addr = (
                heap_base
                + page * page_bytes
                + block * BLOCK_BYTES
                + rng.randrange(BLOCK_BYTES // WORD_BYTES) * WORD_BYTES
            )
            if rng.random() < phase.write_frac:
                if rng.random() < phase.rmw_frac:
                    # Scatter-gather update: read a run of consecutive
                    # blocks, then write most of them back.  This is
                    # the Figure 3.1 pattern — several blocks of one
                    # page enter the cache by read and are modified
                    # afterwards — and is what generates the paper's
                    # N_w-hit events and, while the page is still
                    # clean, its excess faults / dirty-bit misses.
                    page_base = heap_base + page * page_bytes
                    span = 2 + rng.randrange(2)
                    run = [
                        page_base + ((block + i) % blocks) * BLOCK_BYTES
                        for i in range(span)
                    ]
                    for run_addr in run:
                        append(READ)
                        append(run_addr)
                    for run_addr in run:
                        if rng.random() < 0.55:
                            append(WRITE)
                            append(run_addr)
                else:
                    append(WRITE)
                    append(addr)
            else:
                append(READ)
                append(addr)
        return burst

    def _alloc_page(self, phase):
        """Touch one fresh zero-fill heap page, write-first."""
        image = self.image
        page_bytes = image.page_bytes
        page = image.alloc_cursor % image.heap_pages
        image.alloc_cursor += 1
        base = image.heap.start + page * page_bytes
        refs = array("q")
        written = max(
            1, int(image.blocks_per_page * phase.alloc_write_frac)
        )
        for block in range(written):
            refs.append(WRITE)
            refs.append(base + block * BLOCK_BYTES)
        return refs

    def _scan_page(self):
        """Sequentially read one file page (compiler input, etc.)."""
        image = self.image
        page_bytes = image.page_bytes
        page = image.scan_cursor % image.file_pages
        image.scan_cursor += 1
        base = image.file.start + page * page_bytes
        refs = array("q")
        for block in range(image.blocks_per_page):
            refs.append(READ)
            refs.append(base + block * BLOCK_BYTES)
        return refs
