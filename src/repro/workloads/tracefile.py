"""Trace serialisation.

A tiny binary format for storing reference streams: useful for exact
repeatability across machines, for regression-testing the generators,
and for replaying a captured stream against many configurations
without regeneration cost.

Format: an 16-byte header (magic, version, record count) followed by
one ``<BQ`` record per reference (kind byte, 64-bit virtual address),
little endian throughout.
"""

import struct

from array import array

from repro.common.errors import TraceFormatError
from repro.workloads.base import DEFAULT_CHUNK_REFS

_MAGIC = b"SPURTRC1"
_HEADER = struct.Struct("<8sQ")
_RECORD = struct.Struct("<BQ")
_CHUNK_RECORDS = 4096


def write_trace(path, accesses):
    """Write ``(kind, vaddr)`` tuples to ``path``; returns the count."""
    count = 0
    pack = _RECORD.pack
    with open(path, "wb") as stream:
        stream.write(_HEADER.pack(_MAGIC, 0))  # count patched below
        buffer = []
        for kind, vaddr in accesses:
            buffer.append(pack(kind, vaddr))
            count += 1
            if len(buffer) >= _CHUNK_RECORDS:
                stream.write(b"".join(buffer))
                buffer.clear()
        if buffer:
            stream.write(b"".join(buffer))
        stream.seek(0)
        stream.write(_HEADER.pack(_MAGIC, count))
    return count


def read_trace(path):
    """Yield ``(kind, vaddr)`` tuples from a trace file.

    Raises
    ------
    TraceFormatError
        On a bad magic number or a truncated file.
    """
    record = _RECORD
    record_size = record.size
    with open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        remaining = count
        while remaining > 0:
            chunk = stream.read(record_size * min(remaining,
                                                  _CHUNK_RECORDS))
            if not chunk or len(chunk) % record_size:
                raise TraceFormatError(
                    f"{path}: truncated after "
                    f"{count - remaining} of {count} records"
                )
            for offset in range(0, len(chunk), record_size):
                yield record.unpack_from(chunk, offset)
            remaining -= len(chunk) // record_size


def read_trace_chunks(path, chunk_refs=DEFAULT_CHUNK_REFS):
    """Yield flat ``array('q')`` chunks of ``chunk_refs`` references.

    The chunked counterpart of :func:`read_trace`: records are
    bulk-unpacked straight into the interleaved ``kind, vaddr`` layout
    the chunked hot loop consumes (a repeated ``<BQ`` struct unpacks
    to exactly that flat sequence), skipping per-record tuple
    construction entirely.

    Raises
    ------
    TraceFormatError
        On a bad magic number or a truncated file.
    """
    if chunk_refs <= 0:
        raise ValueError("chunk_refs must be positive")
    record_size = _RECORD.size
    full_chunk = struct.Struct("<" + "BQ" * chunk_refs)
    with open(path, "rb") as stream:
        header = stream.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise TraceFormatError(f"{path}: truncated header")
        magic, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        remaining = count
        while remaining > 0:
            records = min(remaining, chunk_refs)
            data = stream.read(record_size * records)
            if len(data) != record_size * records:
                raise TraceFormatError(
                    f"{path}: truncated after "
                    f"{count - remaining} of {count} records"
                )
            if records == chunk_refs:
                values = full_chunk.unpack(data)
            else:
                values = struct.Struct("<" + "BQ" * records).unpack(
                    data
                )
            yield array("q", values)
            remaining -= records
