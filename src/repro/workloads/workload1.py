"""WORKLOAD1: the CAD-tool developer's day (paper, Section 2).

The original script compiled several modules, linked and debugged a
12,000-line CAD tool (espresso), ran the same tool in the background
optimising a large PLA, performed edit/compile/miscellaneous file
commands, and ran two small performance monitors.  (The paper notes it
lacked window-system activity; so does this stand-in.)

The synthetic equivalent is a multiprogrammed mix with the same cast:

* a long-running background *espresso* with a large heap whose working
  set oscillates across the PLA data structures (iterative
  expand/reduce passes revisit earlier regions, which is what makes
  evicted pages come back — the paging traffic the paper measures),
* a serial chain of *compile* jobs — parse (file scan + fresh heap),
  optimise (read-modify-write over the middle end's structures),
  code generation (write-heavy output building),
* a *linker* pass scanning many object pages and writing a large
  output image,
* an *editor* with a small, read-mostly working set,
* two tiny periodic *monitor* programs.

Footprints are expressed in pages, which makes the workload
scale-invariant: at paper scale (4 KB pages, 5-8 MB memory) and at the
default bench scale (512 B pages, memory shrunk by the same factor)
the ratio of working set to memory — what the paging results depend
on — is identical.  The aggregate active working set is sized to
exceed memory at the 5 MB-equivalent point and approach it at the
8 MB-equivalent point, reproducing the paper's heavy-to-light paging
gradient.
"""

from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace
from repro.workloads.base import Workload, WorkloadInstance
from repro.workloads.mix import RoundRobinScheduler, serial
from repro.workloads.synthetic import Phase, PhasedProcess, ProcessImage

#: Global-space slice reserved per process image.
_SLICE = 0x0100_0000

#: Espresso pass working-set origins: expand/reduce iterations sweep
#: forward then fall back, so previously evicted regions are revisited.
_ESPRESSO_WALK = (0, 240, 480, 240, 0, 240, 480, 700, 480, 240)


class Workload1(Workload):
    """The paper's WORKLOAD1, reconstructed synthetically."""

    name = "WORKLOAD1"

    def __init__(self, length_scale=1.0):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = length_scale

    def instantiate(self, page_bytes, seed=0):
        rng = self._rng(seed)
        space_map = AddressSpaceMap(page_bytes)
        scale = self.length_scale

        def duration(base):
            return max(1024, int(base * scale))

        processes = []
        next_pid = [0]

        def new_space():
            pid = next_pid[0]
            next_pid[0] += 1
            return ProcessAddressSpace(
                pid, pid * _SLICE + page_bytes, _SLICE - page_bytes,
                space_map,
            )

        # -- background espresso: iterative passes over a big PLA ------
        espresso = ProcessImage(
            new_space(), code_pages=12, heap_pages=1650, file_pages=96
        )
        espresso_phases = [
            Phase(
                duration=duration(115_000),
                code_hot_pages=6,
                ws_start=start,
                ws_pages=900,
                write_frac=0.34,
                rmw_frac=0.16,
                alloc_pages=24,
                scan_pages=6,
                data_skew=0.45,
            )
            for start in _ESPRESSO_WALK
        ]
        processes.append((PhasedProcess(
            espresso, espresso_phases, rng.substream("espresso")
        ), 1.0))

        # -- serial compile jobs (four modules) --------------------------
        compile_jobs = []
        for job in range(4):
            image = ProcessImage(
                new_space(), code_pages=10, heap_pages=460,
                file_pages=40, data_pages=8,
            )
            compile_jobs.append(PhasedProcess(
                image,
                [
                    Phase(  # parse: scan source, build fresh AST pages
                        duration=duration(60_000),
                        code_hot_pages=4, ws_start=0, ws_pages=150,
                        write_frac=0.42, rmw_frac=0.08,
                        alloc_pages=64, scan_pages=36, data_skew=0.6,
                    ),
                    Phase(  # optimise: RMW over the middle end
                        duration=duration(80_000),
                        code_hot_pages=6, ws_start=20, ws_pages=330,
                        write_frac=0.34, rmw_frac=0.20,
                        alloc_pages=48, data_skew=0.8,
                    ),
                    Phase(  # code generation: write-heavy output
                        duration=duration(60_000),
                        code_hot_pages=5, ws_start=140, ws_pages=300,
                        write_frac=0.52, rmw_frac=0.07,
                        alloc_pages=56, scan_pages=4, data_skew=0.7,
                    ),
                ],
                rng.substream(f"cc{job}"),
            ))
        processes.append((serial(compile_jobs), 1.0))

        # -- link and debug of the CAD tool -------------------------------
        linker = ProcessImage(
            new_space(), code_pages=8, heap_pages=520, file_pages=128
        )
        processes.append((PhasedProcess(
            linker,
            [
                Phase(  # read every object file
                    duration=duration(90_000),
                    code_hot_pages=4, ws_start=0, ws_pages=160,
                    write_frac=0.30, rmw_frac=0.10,
                    alloc_pages=90, scan_pages=112, data_skew=0.5,
                ),
                Phase(  # relocate and emit the image
                    duration=duration(100_000),
                    code_hot_pages=4, ws_start=60, ws_pages=420,
                    write_frac=0.55, rmw_frac=0.13,
                    alloc_pages=160, data_skew=0.55,
                ),
            ],
            rng.substream("linker"),
        ), 1.0))

        # -- editor and miscellaneous file commands ------------------------
        editor = ProcessImage(
            new_space(), code_pages=6, heap_pages=64, file_pages=24
        )
        processes.append((PhasedProcess(
            editor,
            [
                Phase(
                    duration=duration(180_000),
                    code_hot_pages=3, ws_start=0, ws_pages=40,
                    write_frac=0.18, rmw_frac=0.18,
                    alloc_pages=12, scan_pages=18, data_skew=1.2,
                    stack_frac=0.08,
                ),
            ],
            rng.substream("editor"),
        ), 0.5))

        # -- two periodic performance monitors ------------------------------
        for monitor in range(2):
            image = ProcessImage(
                new_space(), code_pages=2, heap_pages=8
            )
            processes.append((PhasedProcess(
                image,
                [
                    Phase(
                        duration=duration(40_000),
                        code_hot_pages=2, ws_start=0, ws_pages=6,
                        write_frac=0.25, rmw_frac=0.2,
                        alloc_pages=4, data_skew=1.0,
                    ),
                ],
                rng.substream(f"monitor{monitor}"),
            ), 0.25))

        space_map.seal()
        scheduler = RoundRobinScheduler(processes, quantum=8192)
        hint = int(2_700_000 * scale)
        return WorkloadInstance(
            self.name, space_map, scheduler.accesses, hint,
            chunk_factory=scheduler.access_chunks,
        )
