"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.charts import bar_chart, line_plot, sparkline


class TestBarChart:
    def test_longest_bar_belongs_to_peak(self):
        text = bar_chart([("a", 10), ("b", 5)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_labels_and_values_present(self):
        text = bar_chart([("miss", 3), ("ref", 4)], title="T")
        assert "T" in text
        assert "miss" in text and "4" in text

    def test_zero_values_render(self):
        text = bar_chart([("a", 0), ("b", 0)])
        assert "#" not in text

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1)])

    def test_empty(self):
        assert bar_chart([], title="empty") == "empty"


class TestLinePlot:
    def test_marks_and_legend(self):
        text = line_plot(
            {"miss": [(0, 1), (1, 2)], "ref": [(0, 2), (1, 4)]},
            width=20, height=5,
        )
        assert "o = miss" in text
        assert "x = ref" in text
        assert "o" in text and "x" in text

    def test_axis_bounds_shown(self):
        text = line_plot({"s": [(40, 100), (64, 900)]},
                         width=20, height=5)
        assert "40" in text and "64" in text
        assert "100" in text and "900" in text

    def test_flat_series_does_not_crash(self):
        text = line_plot({"s": [(0, 5), (1, 5)]}, width=10, height=3)
        assert "o" in text

    def test_empty(self):
        assert line_plot({}, title="t") == "t"


class TestSparkline:
    def test_monotone_values_monotone_glyphs(self):
        levels = " .:#"
        line = sparkline([0, 1, 2, 3], levels=levels)
        assert line == " .:#"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_empty(self):
        assert sparkline([]) == ""
