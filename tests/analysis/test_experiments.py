"""Tests for the per-table experiment drivers (miniature runs)."""

import pytest

from repro.analysis.experiments import (
    build_table_3_4,
    run_table_3_3,
    run_table_3_5,
    run_table_4_1,
)
from repro.workloads.devsystems import DEV_SYSTEM_PROFILES

#: Small enough to keep the whole module under a few seconds.
SCALE = 0.01
CAP = 30_000


class TestTable33Driver:
    def test_produces_all_six_points(self):
        rows, table = run_table_3_3(length_scale=SCALE,
                                    max_references=CAP)
        assert len(rows) == 6
        assert {(r.workload, r.memory_mb) for r in rows} == {
            (w, m) for w in ("SLC", "WORKLOAD1") for m in (5, 6, 8)
        }
        assert "Table 3.3" in table.render()

    def test_counts_internally_consistent(self):
        rows, _ = run_table_3_3(length_scale=SCALE,
                                max_references=CAP)
        for row in rows:
            assert row.counts.n_zfod <= row.counts.n_ds
            assert row.references > 0
            assert row.elapsed_seconds > 0


class TestTable34Driver:
    def test_paper_counts_variant(self):
        results, table = build_table_3_4()
        assert ("SLC", 5) in results
        assert "paper Table 3.3 counts" in table.render()

    def test_measured_counts_variant(self):
        rows, _ = run_table_3_3(length_scale=SCALE,
                                max_references=CAP)
        results, table = build_table_3_4(rows)
        assert len(results) == 6
        for overheads in results.values():
            if overheads["MIN"][0] == 0:
                # A capped miniature run can see zero intrinsic
                # faults; ratios are undefined there.
                continue
            assert overheads["MIN"][1] == pytest.approx(1.0)
            assert overheads["FLUSH"][1] == pytest.approx(1.5)

    def test_zero_fill_inclusion_raises_min(self):
        with_z, _ = build_table_3_4(exclude_zero_fill=False)
        without_z, _ = build_table_3_4(exclude_zero_fill=True)
        for key in with_z:
            assert with_z[key]["MIN"][0] > without_z[key]["MIN"][0]


class TestTable35Driver:
    def test_single_profile_run(self):
        rows, table = run_table_3_5(
            length_scale=SCALE, profiles=DEV_SYSTEM_PROFILES[:1],
            max_references=CAP,
        )
        assert len(rows) == 1
        assert rows[0].hostname == "mace"
        assert "Table 3.5" in table.render()


class TestTable41Driver:
    def test_matrix_shape(self):
        rows, table = run_table_4_1(
            length_scale=SCALE, repetitions=1, max_references=CAP,
        )
        assert len(rows) == 18  # 2 workloads x 3 memories x 3 policies
        miss_rows = [r for r in rows if r.policy == "MISS"]
        for row in miss_rows:
            assert row.page_ins_pct == pytest.approx(100.0)
        assert "Table 4.1" in table.render()
