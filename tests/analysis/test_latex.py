"""Tests for LaTeX table output."""

import pytest

from repro.analysis.latex import escape, table_to_latex
from repro.analysis.tables import Table


class TestEscape:
    def test_special_characters(self):
        assert escape("50%") == r"50\%"
        assert escape("a_b") == r"a\_b"
        assert escape("x & y") == r"x \& y"
        assert escape("$5") == r"\$5"

    def test_backslash(self):
        assert escape("a\\b") == r"a\textbackslash{}b"

    def test_plain_text_untouched(self):
        assert escape("WORKLOAD1") == "WORKLOAD1"

    def test_non_string_cells(self):
        assert escape(42) == "42"


class TestTableConversion:
    def make_table(self):
        table = Table("Table 4.1: Reference Bit Results",
                      ["Workload", "Policy", "Page-Ins"])
        table.add_row("SLC", "MISS", "3291 (100%)")
        table.add_row("  (paper)", "MISS", "4647 (100%)")
        table.add_separator()
        table.add_row("SLC", "REF", "3255 (99%)")
        table.add_note("percentages relative to MISS")
        return table

    def test_structure(self):
        tex = table_to_latex(self.make_table())
        assert r"\begin{tabular}{lll}" in tex
        assert r"\toprule" in tex and r"\bottomrule" in tex
        assert tex.count(r"\midrule") == 2  # header + separator

    def test_cells_escaped(self):
        tex = table_to_latex(self.make_table())
        assert r"3291 (100\%)" in tex

    def test_paper_rows_grey(self):
        tex = table_to_latex(self.make_table())
        assert r"\textcolor{gray}" in tex

    def test_caption_label_notes(self):
        tex = table_to_latex(self.make_table(),
                             caption="Reference bits",
                             label="tab:refbits")
        assert r"\caption{Reference bits}" in tex
        assert r"\label{tab:refbits}" in tex
        assert r"\footnotesize percentages" in tex

    def test_default_caption_is_title(self):
        tex = table_to_latex(self.make_table())
        assert r"\caption{Table 4.1: Reference Bit Results}" in tex


class TestEndToEnd:
    def test_real_driver_output_converts(self):
        from repro.analysis.experiments import build_table_3_4

        _, table = build_table_3_4()
        tex = table_to_latex(table, label="tab:overheads")
        assert "WORKLOAD1" in tex
        assert r"\end{table}" in tex
        # Every data row has the right number of columns.
        for line in tex.splitlines():
            if line.endswith(r"\\") and "&" in line:
                assert line.count("&") == len(table.columns) - 1
