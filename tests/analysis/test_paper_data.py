"""Consistency checks on the transcribed paper data.

These tests cross-validate the transcription against itself: the
published Table 3.4 must be regenerable from the published Table 3.3
through our cost models, and Table 3.5's derived percentages must
follow from its raw columns.  A typo in either table breaks the chain.
"""

import pytest

from repro.analysis import paper_data
from repro.policies.costs import overhead_table


class TestTable33To34Chain:
    @pytest.mark.parametrize(
        "key", sorted(paper_data.TABLE_3_3), ids=str
    )
    def test_published_table_3_4_reproduces(self, key):
        counts, _ = paper_data.TABLE_3_3[key]
        ours = overhead_table(counts, paper_data.TABLE_3_2)
        for policy, (mcycles, ratio) in paper_data.TABLE_3_4[key].items():
            got_mcycles = ours[policy][0] / 1e6
            assert got_mcycles == pytest.approx(mcycles, rel=0.02), (
                f"{key} {policy}"
            )
            assert ours[policy][1] == pytest.approx(ratio, rel=0.02)


class TestTable35Consistency:
    @pytest.mark.parametrize(
        "row", paper_data.TABLE_3_5, ids=lambda r: f"{r[0]}-{r[2]}h"
    )
    def test_percentages_follow_from_counts(self, row):
        (_, _, _, page_ins, potentially, not_modified,
         pct_not, pct_additional) = row
        derived_not = 100.0 * not_modified / potentially
        assert derived_not == pytest.approx(pct_not, abs=1.0)
        modified = potentially - not_modified
        derived_additional = (
            100.0 * not_modified / (page_ins + modified)
        )
        assert derived_additional == pytest.approx(
            pct_additional, abs=0.15
        )


class TestTable41Consistency:
    def test_percentages_relative_to_miss(self):
        for (workload, mb, policy), (
            page_ins, pct, elapsed, elapsed_pct
        ) in paper_data.TABLE_4_1.items():
            base = paper_data.TABLE_4_1[(workload, mb, "MISS")]
            derived = round(100.0 * page_ins / base[0])
            assert abs(derived - pct) <= 1, (workload, mb, policy)

    def test_headline_claims_hold_in_the_data(self):
        # MISS always has the fastest or tied elapsed time except
        # WORKLOAD1 at 8 MB, where NOREF wins by 2%.
        for workload in ("SLC", "WORKLOAD1"):
            for mb in (5, 6, 8):
                miss = paper_data.TABLE_4_1[(workload, mb, "MISS")]
                noref = paper_data.TABLE_4_1[(workload, mb, "NOREF")]
                ref = paper_data.TABLE_4_1[(workload, mb, "REF")]
                assert ref[2] >= miss[2]  # REF never faster
                if (workload, mb) != ("WORKLOAD1", 8):
                    assert noref[2] >= miss[2]


class TestMemoryPoints:
    def test_ratios_consistent_with_cache_size(self):
        # 128 KB cache: 5 MB = 40x, 6 MB = 48x, 8 MB = 64x.
        for mb, ratio in paper_data.MEMORY_POINTS:
            assert ratio == mb * 8
