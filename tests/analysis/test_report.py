"""Tests for the Markdown reproduction-report generator."""

import pytest

from repro.analysis.report import generate_report


@pytest.fixture(scope="module")
def report():
    # Miniature run: the checklist will show failures (statistics are
    # meaningless at this scale), but structure must be complete.
    return generate_report(length_scale=0.01, repetitions=1,
                           timestamp="2026-01-01T00:00:00")


class TestStructure:
    def test_all_sections_present(self, report):
        text, _ = report
        for heading in (
            "# Reproduction report",
            "## Shape-target checklist",
            "## Table 3.3",
            "## Table 3.4 — dirty-bit overheads (published counts)",
            "## Table 3.5",
            "## Table 4.1",
        ):
            assert heading in text

    def test_timestamp_embedded(self, report):
        text, _ = report
        assert "2026-01-01T00:00:00" in text

    def test_checklist_has_six_items(self, report):
        text, _ = report
        assert text.count("- [") == 6

    def test_published_table_3_4_check_passes_even_in_miniature(
        self, report
    ):
        # The published-counts check is simulation-independent and
        # must pass at any scale.
        text, _ = report
        assert (
            "- [x] published Table 3.4 regenerated exactly "
            "from published counts" in text
        )

    def test_returns_overall_verdict(self, report):
        _, all_passed = report
        assert isinstance(all_passed, bool)
