"""Unit tests for the experiment statistics helpers."""

import pytest

from repro.analysis.stats import (
    PairedComparison,
    Summary,
    paired,
    relative,
    summarize,
)


class TestSummarize:
    def test_basic_moments(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.n == 3
        assert summary.mean == pytest.approx(4.0)
        assert summary.std == pytest.approx(2.0)
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0

    def test_single_observation(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.sem == 0.0
        assert summary.ci95() == 0.0

    def test_sem_and_ci(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.sem == pytest.approx(
            summary.std / 2.0
        )
        assert summary.ci95() == pytest.approx(1.96 * summary.sem)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_integer_inputs_accepted(self):
        assert summarize([1, 2, 3]).mean == pytest.approx(2.0)

    def test_str_formats(self):
        assert str(summarize([5.0])) == "5"
        assert "±" in str(summarize([1.0, 2.0]))


class TestPaired:
    def test_mean_difference(self):
        comparison = paired([5.0, 7.0, 9.0], [4.0, 5.0, 6.0])
        assert comparison.mean_difference == pytest.approx(2.0)
        assert comparison.n == 3

    def test_consistent_sign(self):
        assert paired([2, 3], [1, 2]).consistent_sign
        assert not paired([2, 1], [1, 2]).consistent_sign

    def test_clearly_nonzero(self):
        tight = paired([10.0, 10.1, 10.2], [5.0, 5.1, 5.2])
        assert tight.clearly_nonzero
        noisy = paired([10.0, 2.0, 7.0], [5.0, 9.0, 6.0])
        assert not noisy.clearly_nonzero

    def test_single_pair_never_clear(self):
        assert not paired([3.0], [1.0]).clearly_nonzero

    def test_removes_between_seed_variance(self):
        # Raw samples overlap heavily, but the paired differences are
        # constant: the comparison must come out clear.
        baseline = [100.0, 200.0, 300.0, 400.0]
        values = [b + 1.0 for b in baseline]
        comparison = paired(values, baseline)
        assert comparison.clearly_nonzero
        assert comparison.std_difference == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired([1.0], [])
        with pytest.raises(ValueError):
            paired([], [])

    def test_str_verdicts(self):
        assert "clear" in str(paired([2.0, 2.0], [1.0, 1.0]))
        assert "single run" in str(paired([2.0], [1.0]))


class TestRelative:
    def test_paired_ratios(self):
        assert relative([2.0, 6.0], [1.0, 3.0]) == [2.0, 2.0]

    def test_zero_baseline_is_nan(self):
        import math
        result = relative([1.0], [0.0])
        assert math.isnan(result[0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative([1.0], [1.0, 2.0])
