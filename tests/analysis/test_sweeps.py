"""Tests for the generic sweep driver."""

import pytest

from repro.analysis.sweeps import METRICS, SweepDriver
from repro.machine.config import scaled_config
from repro.workloads.slc import SlcWorkload

SCALE = 0.005


def make_driver(**kwargs):
    values = kwargs.pop("values", (40, 64))
    field = kwargs.pop("field", "memory_bytes")
    if field == "memory_bytes":
        base = scaled_config(memory_ratio=40)
        values = tuple(
            ratio * base.cache.size_bytes for ratio in (40, 64)
        )
    else:
        base = scaled_config(memory_ratio=40)
    return SweepDriver(
        base,
        field,
        values,
        lambda: SlcWorkload(length_scale=SCALE),
        **kwargs,
    )


class TestDriver:
    def test_field_sweep_runs_every_point(self):
        driver = make_driver()
        results = driver.run()
        assert set(results) == {""}
        assert len(results[""]) == 2
        memories = {
            run.memory_bytes for run in results[""].values()
        }
        assert len(memories) == 2

    def test_variants_produce_series(self):
        driver = make_driver()
        results = driver.run(variants={
            "MISS": lambda c: c.with_policies(reference="MISS"),
            "NOREF": lambda c: c.with_policies(reference="NOREF"),
        })
        assert set(results) == {"MISS", "NOREF"}
        for series in results.values():
            for run in series.values():
                assert run.references > 0

    def test_callable_field(self):
        def bump_wired(config, value):
            import dataclasses
            return dataclasses.replace(config, wired_frames=value)

        driver = SweepDriver(
            scaled_config(memory_ratio=40), bump_wired, (4, 8),
            lambda: SlcWorkload(length_scale=SCALE),
        )
        results = driver.run()
        assert len(results[""]) == 2

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            SweepDriver(
                scaled_config(), "not_a_field", (1,),
                lambda: SlcWorkload(length_scale=SCALE),
            )

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            SweepDriver(
                scaled_config(), "memory_bytes", (),
                lambda: SlcWorkload(length_scale=SCALE),
            )


class TestRendering:
    @pytest.fixture(scope="class")
    def sweep(self):
        driver = make_driver()
        return driver, driver.run()

    def test_tabulate(self, sweep):
        driver, results = sweep
        text = driver.tabulate(results, "page_ins").render()
        assert "memory_bytes" in text
        assert "page_ins" in text

    def test_plot(self, sweep):
        driver, results = sweep
        text = driver.plot(results, "cycles", width=20, height=5)
        assert "cycles vs memory_bytes" in text

    def test_custom_metric_callable(self, sweep):
        driver, results = sweep
        text = driver.tabulate(
            results, lambda run: run.zero_fills
        ).render()
        assert "Sweep of memory_bytes" in text

    def test_standard_metrics_registry(self):
        assert "page_ins" in METRICS
        assert "cycles_per_reference" in METRICS
