"""Unit tests for the table renderer."""

import pytest

from repro.analysis.tables import Table, format_percent, format_ratio


class TestFormatting:
    def test_format_ratio(self):
        assert format_ratio(1.68, 1.44) == "1.68 (1.17)"

    def test_format_ratio_zero_reference(self):
        assert format_ratio(5, 0) == "5"

    def test_format_percent(self):
        assert format_percent(4738, 4647) == "4738 (102%)"

    def test_format_percent_zero_reference(self):
        assert format_percent(10, 0) == "10"


class TestTable:
    def test_render_contains_everything(self):
        table = Table("Demo", ["a", "bb"])
        table.add_row(1, "xyz")
        table.add_note("a note")
        text = table.render()
        assert "Demo" in text
        assert "xyz" in text
        assert "note: a note" in text

    def test_columns_aligned(self):
        table = Table("T", ["col"])
        table.add_row("short")
        table.add_row("a much longer cell")
        lines = [
            line for line in table.render().splitlines()
            if line.startswith("|")
        ]
        assert len({len(line) for line in lines}) == 1

    def test_wrong_cell_count_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_separator_renders_as_rule(self):
        table = Table("T", ["a"])
        table.add_row(1)
        table.add_separator()
        table.add_row(2)
        body = table.render().splitlines()
        rules = [line for line in body if line.startswith("+")]
        assert len(rules) >= 4  # header rules + separator + footer

    def test_str_equals_render(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert str(table) == table.render()
