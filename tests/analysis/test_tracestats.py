"""Tests for the trace-characterisation tool."""

import pytest

from repro.analysis.tracestats import (
    REUSE_BUCKETS,
    TraceStatistics,
    analyze_trace,
)
from repro.common.errors import ConfigurationError
from repro.workloads.base import IFETCH, READ, WRITE

PAGE = 128


class TestBasicCounting:
    def test_reference_mix(self):
        trace = [(IFETCH, 0)] * 6 + [(READ, 0)] * 3 + [(WRITE, 0)]
        stats = analyze_trace(trace, PAGE)
        assert stats.references == 10
        assert stats.ifetch_fraction == pytest.approx(0.6)
        assert stats.write_fraction == pytest.approx(0.25)

    def test_footprint(self):
        trace = [(READ, 0), (READ, PAGE), (READ, 2 * PAGE),
                 (READ, 32), (READ, 0)]
        stats = analyze_trace(trace, PAGE, block_bytes=32)
        assert stats.distinct_pages == 3
        assert stats.distinct_blocks == 4

    def test_write_first_pages(self):
        trace = [(WRITE, 0), (READ, 0),       # page 0: write first
                 (READ, PAGE), (WRITE, PAGE)]  # page 1: read first
        stats = analyze_trace(trace, PAGE)
        assert stats.write_first_pages == 1
        assert stats.write_first_fraction == pytest.approx(0.5)

    def test_empty_trace(self):
        stats = analyze_trace([], PAGE)
        assert stats.references == 0
        assert stats.ifetch_fraction == 0
        assert stats.mean_working_set_pages == 0

    def test_max_references_cap(self):
        trace = [(READ, i * PAGE) for i in range(100)]
        stats = analyze_trace(trace, PAGE, max_references=10)
        assert stats.references == 10
        assert stats.distinct_pages == 10

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_trace([], 0)


class TestWorkingSet:
    def test_window_sampling(self):
        # Two windows touching 2 and 4 distinct pages respectively.
        trace = (
            [(READ, 0), (READ, PAGE)] * 2
            + [(READ, i * PAGE) for i in range(4)]
        )
        stats = analyze_trace(trace, PAGE, window=4)
        assert stats.working_set_samples == [2, 4]
        assert stats.mean_working_set_pages == pytest.approx(3.0)


class TestReuseDistance:
    def test_cold_blocks(self):
        trace = [(READ, i * 32) for i in range(5)]
        stats = analyze_trace(trace, PAGE)
        assert stats.cold_blocks == 5
        assert sum(stats.reuse_histogram.values()) == 0

    def test_immediate_reuse_in_first_bucket(self):
        trace = [(READ, 0), (READ, 0)]
        stats = analyze_trace(trace, PAGE)
        assert stats.reuse_histogram[f"<={REUSE_BUCKETS[0]}"] == 1

    def test_long_distance_in_last_bucket(self):
        filler = [(READ, (1 + i) * 32) for i in range(20_000)]
        trace = [(READ, 0)] + filler + [(READ, 0)]
        stats = analyze_trace(trace, PAGE)
        assert stats.reuse_histogram[f">{REUSE_BUCKETS[-1]}"] == 1


class TestSummary:
    def test_summary_lines_render(self):
        trace = [(READ, 0), (WRITE, 32), (IFETCH, PAGE)]
        stats = analyze_trace(trace, PAGE)
        text = "\n".join(stats.summary_lines())
        assert "references" in text
        assert "reuse distances" in text


class TestOnRealWorkload:
    def test_workload1_characterisation(self):
        from repro.workloads.workload1 import Workload1

        instance = Workload1(length_scale=0.01).instantiate(512)
        stats = analyze_trace(
            instance.accesses(), page_bytes=512,
            max_references=60_000, window=16_384,
        )
        # Fetch-dominated mix (instruction buffer disabled).
        assert stats.ifetch_fraction > 0.4
        # Working sets far exceed the 32-page cache.
        assert stats.mean_working_set_pages > 32
        # Significant write-first allocation (ZFOD behaviour).
        assert stats.write_first_fraction > 0.1
