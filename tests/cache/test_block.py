"""Unit tests for the cache tag format of Figure 3.2(b)."""

from repro.cache.block import CACHE_TAG_LAYOUT, CacheLineView
from repro.cache.coherence import CoherencyState
from repro.common.types import Protection


class TestTagLayout:
    def test_figure_3_2b_fields_present(self):
        for name in ("PR", "P", "B", "CS", "V", "TAG"):
            assert name in CACHE_TAG_LAYOUT

    def test_field_widths_match_figure(self):
        assert CACHE_TAG_LAYOUT["PR"].width == 2    # protection
        assert CACHE_TAG_LAYOUT["P"].width == 1     # page dirty
        assert CACHE_TAG_LAYOUT["B"].width == 1     # block dirty
        assert CACHE_TAG_LAYOUT["CS"].width == 2    # coherency state

    def test_page_and_block_dirty_are_distinct_bits(self):
        # The paper stresses this distinction (Figure 3.2 caption).
        assert (
            CACHE_TAG_LAYOUT["P"].mask & CACHE_TAG_LAYOUT["B"].mask
        ) == 0


class TestView:
    def make_view(self, **overrides):
        values = dict(
            index=5,
            valid=True,
            vaddr=0x1240,
            protection=Protection.READ_ONLY,
            page_dirty=True,
            block_dirty=False,
            state=CoherencyState.UNOWNED,
            filled_by_read=True,
            holds_pte=False,
        )
        values.update(overrides)
        return CacheLineView(**values)

    def test_pack_tag_round_trips_through_layout(self):
        view = self.make_view()
        word = view.pack_tag(tag_value=0x123)
        fields = CACHE_TAG_LAYOUT.unpack(word)
        assert fields["V"] == 1
        assert fields["PR"] == int(Protection.READ_ONLY)
        assert fields["P"] == 1
        assert fields["B"] == 0
        assert fields["CS"] == int(CoherencyState.UNOWNED)
        assert fields["TAG"] == 0x123

    def test_view_is_immutable(self):
        view = self.make_view()
        try:
            view.valid = False
        except AttributeError:
            return
        raise AssertionError("CacheLineView must be immutable")
