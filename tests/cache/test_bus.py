"""Unit tests for the snoopy bus and multi-cache coherency."""

import pytest

from repro.cache.bus import SnoopyBus
from repro.cache.cache import VirtualCache
from repro.cache.coherence import CoherencyState
from repro.common.params import CacheGeometry, MemoryTiming
from repro.common.types import Protection


def two_caches():
    bus = SnoopyBus()
    caches = []
    for name in ("cpu0", "cpu1"):
        cache = VirtualCache(
            CacheGeometry(size_bytes=1024, block_bytes=32),
            MemoryTiming(),
            name=name,
        )
        bus.attach(cache)
        caches.append(cache)
    return bus, caches[0], caches[1]


class TestAttachment:
    def test_attach_sets_back_reference(self):
        bus, a, b = two_caches()
        assert a.bus is bus and b.bus is bus

    def test_double_attach_rejected(self):
        bus, a, _ = two_caches()
        with pytest.raises(ValueError):
            bus.attach(a)


class TestCoherency:
    def test_write_fill_invalidates_other_copies(self):
        _, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, False, False)
        b.fill(0x40, Protection.READ_WRITE, False, True)
        assert a.probe(0x40) == -1
        assert b.view(b.probe(0x40)).state is (
            CoherencyState.OWNED_EXCLUSIVE
        )

    def test_read_fill_downgrades_exclusive_owner(self):
        _, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, True, True)  # owned excl
        b.fill(0x40, Protection.READ_WRITE, False, False)
        assert a.view(a.probe(0x40)).state is (
            CoherencyState.OWNED_SHARED
        )

    def test_ownership_acquisition_invalidates_sharers(self):
        _, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, False, False)
        b.fill(0x40, Protection.READ_WRITE, False, False)
        index = b.probe(0x40)
        b.acquire_ownership(index)
        assert a.probe(0x40) == -1
        assert b.view(index).state is CoherencyState.OWNED_EXCLUSIVE

    def test_snoop_invalidation_does_not_write_back(self):
        # Ownership (and dirty data) moves over the bus; the loser must
        # not also write to memory.
        _, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, True, True)
        write_backs = a.stats["write_backs"]
        b.fill(0x40, Protection.READ_WRITE, True, True)
        assert a.stats["write_backs"] == write_backs


class TestTrafficAccounting:
    def test_transactions_counted(self):
        bus, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, False, False)
        b.fill(0x80, Protection.READ_WRITE, False, False)
        assert bus.transactions == 2

    def test_snoop_hits_counted(self):
        bus, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, False, False)
        b.fill(0x40, Protection.READ_WRITE, False, False)
        assert bus.snoop_hits == 1

    def test_ownership_transfers_counted(self):
        bus, a, b = two_caches()
        a.fill(0x40, Protection.READ_WRITE, True, True)
        b.fill(0x40, Protection.READ_WRITE, False, True)  # read-owned
        assert bus.ownership_transfers == 1

    def test_reset_stats(self):
        bus, a, _ = two_caches()
        a.fill(0x40, Protection.READ_WRITE, False, False)
        bus.reset_stats()
        assert bus.transactions == 0


class TestUniprocessor:
    def test_single_cache_broadcasts_reach_no_one(self):
        bus = SnoopyBus()
        cache = VirtualCache(
            CacheGeometry(size_bytes=1024, block_bytes=32),
            MemoryTiming(),
        )
        bus.attach(cache)
        cache.fill(0x40, Protection.READ_WRITE, False, True)
        assert bus.transactions == 1
        assert bus.snoop_hits == 0
