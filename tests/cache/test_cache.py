"""Unit tests for the direct-mapped virtual-address cache."""

import pytest

from repro.cache.cache import VirtualCache
from repro.cache.coherence import CoherencyState
from repro.common.params import CacheGeometry, MemoryTiming
from repro.common.types import Protection


def make_cache(size=1024, block=32):
    return VirtualCache(
        CacheGeometry(size_bytes=size, block_bytes=block),
        MemoryTiming(),
    )


class TestProbeAndFill:
    def test_empty_cache_misses(self):
        assert make_cache().probe(0x40) == -1

    def test_fill_then_hit(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, False, False)
        assert cache.probe(0x45) == index
        # Same block, different offset: still a hit.
        assert cache.probe(0x5F) == index

    def test_fill_copies_pte_state_into_tag(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_ONLY, True, False)
        view = cache.view(index)
        assert view.protection is Protection.READ_ONLY
        assert view.page_dirty
        assert not view.block_dirty
        assert view.filled_by_read

    def test_write_fill_marks_block_dirty_and_owned(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, True, True)
        view = cache.view(index)
        assert view.block_dirty
        assert not view.filled_by_read
        assert view.state is CoherencyState.OWNED_EXCLUSIVE

    def test_read_fill_is_unowned(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, False, False)
        assert cache.view(index).state is CoherencyState.UNOWNED

    def test_conflicting_fill_evicts(self):
        cache = make_cache(size=1024)
        cache.fill(0x45, Protection.READ_WRITE, False, False)
        cache.fill(0x45 + 1024, Protection.READ_WRITE, False, False)
        assert cache.probe(0x45) == -1
        assert cache.probe(0x45 + 1024) >= 0

    def test_fill_cycles_include_transfer(self):
        cache = make_cache()
        _, cycles = cache.fill(0x45, Protection.READ_WRITE, False, False)
        assert cycles == cache.block_transfer_cycles

    def test_dirty_eviction_costs_write_back(self):
        cache = make_cache(size=1024)
        cache.fill(0x45, Protection.READ_WRITE, True, True)
        _, cycles = cache.fill(
            0x45 + 1024, Protection.READ_WRITE, False, False
        )
        assert cycles == 2 * cache.block_transfer_cycles
        assert cache.stats["write_backs"] == 1


class TestInvalidate:
    def test_invalidate_clean_line(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, False, False)
        assert cache.invalidate(index) == 0
        assert cache.probe(0x45) == -1

    def test_invalidate_dirty_line_writes_back(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, True, True)
        assert cache.invalidate(index) == cache.block_transfer_cycles

    def test_invalidate_dirty_without_write_back(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, True, True)
        assert cache.invalidate(index, write_back=False) == 0

    def test_invalidate_empty_line_is_noop(self):
        cache = make_cache()
        assert cache.invalidate(3) == 0

    def test_clear_invalidates_everything_silently(self):
        cache = make_cache()
        cache.fill(0x45, Protection.READ_WRITE, True, True)
        write_backs = cache.stats["write_backs"]
        cache.clear()
        assert cache.probe(0x45) == -1
        assert cache.stats["write_backs"] == write_backs


class TestOwnership:
    def test_write_hit_on_unowned_needs_bus(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, False, False)
        assert cache.acquire_ownership(index) is True
        assert cache.view(index).state is CoherencyState.OWNED_EXCLUSIVE

    def test_write_hit_on_exclusive_is_silent(self):
        cache = make_cache()
        index, _ = cache.fill(0x45, Protection.READ_WRITE, True, True)
        assert cache.acquire_ownership(index) is False


class TestPageHelpers:
    def test_page_line_range_is_contiguous(self):
        cache = make_cache(size=1024)  # 32 lines
        frames = cache.page_line_range(0, 128)  # 4 blocks per page
        assert list(frames) == [0, 1, 2, 3]

    def test_page_line_range_wraps(self):
        cache = make_cache(size=1024)
        frames = cache.page_line_range(31 * 32, 128)
        assert list(frames) == [31, 0, 1, 2]

    def test_page_larger_than_cache_covers_all_lines(self):
        cache = make_cache(size=128)  # 4 lines
        assert list(cache.page_line_range(0, 256)) == [0, 1, 2, 3]

    def test_lines_of_page_filters_foreign_blocks(self):
        cache = make_cache(size=1024)
        page_base = 0x400  # maps to the same frames as page 0x0
        cache.fill(0x00, Protection.READ_WRITE, False, False)
        cache.fill(page_base + 32, Protection.READ_WRITE, False, False)
        lines = cache.lines_of_page(page_base, 128)
        assert len(lines) == 1
        assert cache.view(lines[0]).vaddr == page_base + 32

    def test_resident_lines(self):
        cache = make_cache()
        cache.fill(0x00, Protection.READ_WRITE, False, False)
        cache.fill(0x20, Protection.READ_WRITE, False, False)
        assert len(cache.resident_lines()) == 2


class TestStats:
    def test_fill_and_eviction_counts(self):
        cache = make_cache(size=1024)
        cache.fill(0x45, Protection.READ_WRITE, False, False)
        cache.fill(0x45 + 1024, Protection.READ_WRITE, False, False)
        assert cache.stats["fills"] == 2
        assert cache.stats["evictions"] == 1
