"""Unit tests for the Berkeley Ownership protocol transitions."""

import pytest

from repro.cache.coherence import BerkeleyOwnership, BusOp, CoherencyState


class TestStates:
    def test_owned_states(self):
        assert CoherencyState.OWNED_SHARED.is_owned
        assert CoherencyState.OWNED_EXCLUSIVE.is_owned
        assert not CoherencyState.UNOWNED.is_owned
        assert not CoherencyState.INVALID.is_owned

    def test_two_bit_encoding(self):
        assert all(0 <= int(state) < 4 for state in CoherencyState)


class TestProcessorTransitions:
    def test_read_fill_is_unowned(self):
        assert (
            BerkeleyOwnership.on_read_fill(False)
            is CoherencyState.UNOWNED
        )

    def test_write_fill_is_exclusive(self):
        assert (
            BerkeleyOwnership.on_write_fill()
            is CoherencyState.OWNED_EXCLUSIVE
        )

    def test_write_hit_exclusive_stays_silent(self):
        state, bus_op = BerkeleyOwnership.on_write_hit(
            CoherencyState.OWNED_EXCLUSIVE
        )
        assert state is CoherencyState.OWNED_EXCLUSIVE
        assert bus_op is None

    def test_write_hit_unowned_acquires_ownership(self):
        state, bus_op = BerkeleyOwnership.on_write_hit(
            CoherencyState.UNOWNED
        )
        assert state is CoherencyState.OWNED_EXCLUSIVE
        assert bus_op is BusOp.WRITE_FOR_OWNERSHIP

    def test_write_hit_owned_shared_invalidates_others(self):
        state, bus_op = BerkeleyOwnership.on_write_hit(
            CoherencyState.OWNED_SHARED
        )
        assert state is CoherencyState.OWNED_EXCLUSIVE
        assert bus_op is BusOp.WRITE_FOR_OWNERSHIP

    def test_write_hit_invalid_is_an_error(self):
        with pytest.raises(ValueError):
            BerkeleyOwnership.on_write_hit(CoherencyState.INVALID)


class TestSnoopTransitions:
    def test_invalid_ignores_everything(self):
        for bus_op in BusOp:
            state, supplies, writes_back = BerkeleyOwnership.on_snoop(
                CoherencyState.INVALID, bus_op
            )
            assert state is CoherencyState.INVALID
            assert not supplies and not writes_back

    def test_exclusive_owner_downgrades_on_read_and_supplies(self):
        state, supplies, _ = BerkeleyOwnership.on_snoop(
            CoherencyState.OWNED_EXCLUSIVE, BusOp.READ
        )
        assert state is CoherencyState.OWNED_SHARED
        assert supplies

    def test_shared_owner_supplies_on_read(self):
        state, supplies, _ = BerkeleyOwnership.on_snoop(
            CoherencyState.OWNED_SHARED, BusOp.READ
        )
        assert state is CoherencyState.OWNED_SHARED
        assert supplies

    def test_unowned_copy_survives_read(self):
        state, supplies, _ = BerkeleyOwnership.on_snoop(
            CoherencyState.UNOWNED, BusOp.READ
        )
        assert state is CoherencyState.UNOWNED
        assert not supplies

    def test_read_owned_invalidates_and_owner_supplies(self):
        state, supplies, _ = BerkeleyOwnership.on_snoop(
            CoherencyState.OWNED_EXCLUSIVE, BusOp.READ_OWNED
        )
        assert state is CoherencyState.INVALID
        assert supplies

    def test_write_for_ownership_invalidates_unowned_copies(self):
        state, supplies, _ = BerkeleyOwnership.on_snoop(
            CoherencyState.UNOWNED, BusOp.WRITE_FOR_OWNERSHIP
        )
        assert state is CoherencyState.INVALID
        assert not supplies

    def test_write_back_leaves_state_alone(self):
        for state in CoherencyState:
            next_state, _, _ = BerkeleyOwnership.on_snoop(
                state, BusOp.WRITE_BACK
            )
            assert next_state is state
