"""The flat column store behind the cache's tag state.

Covers the storage contract the batched classifier depends on: column
shapes and initial values, zero-copy view aliasing, view immutability,
and the fast install/ownership twins producing the same column state
and deferred bookkeeping as their legacy counterparts.
"""

from array import array

import pytest

from repro.cache.cache import (
    TALLY_BUS,
    TALLY_CACHE_SLOTS,
    TALLY_EVICTIONS,
    TALLY_FILLS,
    TALLY_WRITE_BACKS,
    VirtualCache,
)
from repro.cache.columns import (
    FLAG_COLUMNS,
    HAVE_NUMPY,
    WORD_COLUMNS,
    ColumnStore,
)
from repro.cache.bus import SnoopyBus
from repro.common.params import CacheGeometry, MemoryTiming
from repro.common.types import Protection

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy unavailable")


def small_cache(name="c0"):
    return VirtualCache(
        CacheGeometry(size_bytes=1024, block_bytes=32),
        MemoryTiming(),
        name=name,
    )


class TestColumnStore:
    def test_shapes_and_initial_values(self):
        store = ColumnStore(32)
        names = dict(store.columns())
        assert set(names) == (
            {name for name, _ in WORD_COLUMNS} | set(FLAG_COLUMNS)
        )
        for name, initial in WORD_COLUMNS:
            column = names[name]
            assert isinstance(column, array) and column.typecode == "q"
            assert len(column) == 32
            assert set(column) == {initial}
        for name in FLAG_COLUMNS:
            column = names[name]
            assert isinstance(column, bytearray)
            assert len(column) == 32 and not any(column)

    def test_cache_attributes_alias_the_store(self):
        cache = small_cache()
        for name, column in cache.columns.columns():
            assert getattr(cache, name) is column

    @needs_numpy
    def test_views_alias_in_place_mutations(self):
        store = ColumnStore(8)
        store.line_block[3] = 77
        store.valid[5] = 1
        assert store.views.line_block[3] == 77
        assert store.views.valid[5] == 1

    @needs_numpy
    def test_views_are_read_only(self):
        store = ColumnStore(8)
        with pytest.raises(ValueError):
            store.views.tags[0] = 1
        with pytest.raises(ValueError):
            store.views.valid[0] = 1


class TestFastTwins:
    """fill_fast / acquire_ownership_fast mirror the legacy methods:
    identical column state, with bookkeeping deferred into the tally
    instead of the live stats/counters."""

    def tally(self):
        return array("q", [0]) * TALLY_CACHE_SLOTS

    def columns_state(self, cache):
        state = {name: list(col) for name, col in cache.columns.columns()}
        state["state"] = list(cache.state)
        return state

    def drive(self, cache, fast, tally):
        fills = [
            (0x400, int(Protection.READ_WRITE), False, False, False),
            (0x800, int(Protection.READ_WRITE), True, True, False),
            # Conflicts with 0x400's line after it was dirtied below,
            # forcing the eviction + write-back path.
            (0x400 + 1024, int(Protection.KERNEL), True, False, True),
        ]
        cycles = 0
        for step, (vaddr, prot, page_dirty, by_write, holds) in enumerate(
            fills
        ):
            if fast:
                cycles += cache.fill_fast(vaddr, prot, page_dirty,
                                          by_write, holds, tally)
            else:
                _, fill_cycles = cache.fill(
                    vaddr, Protection(prot), page_dirty=page_dirty,
                    by_write=by_write, holds_pte=holds,
                )
                cycles += fill_cycles
            if step == 0:
                index = cache.probe(vaddr)
                cache.block_dirty[index] = True
                if fast:
                    cache.acquire_ownership_fast(index, tally)
                else:
                    cache.acquire_ownership(index)
        return cycles

    def test_fast_matches_legacy_columns_and_cycles(self):
        legacy = small_cache("legacy")
        SnoopyBus().attach(legacy)
        fast = small_cache("fast")
        SnoopyBus().attach(fast)
        tally = self.tally()

        legacy_cycles = self.drive(legacy, fast=False, tally=tally)
        fast_cycles = self.drive(fast, fast=True, tally=tally)

        assert fast_cycles == legacy_cycles
        assert self.columns_state(fast) == self.columns_state(legacy)

    def test_tally_carries_the_deferred_bookkeeping(self):
        legacy = small_cache("legacy")
        SnoopyBus().attach(legacy)
        fast = small_cache("fast")
        SnoopyBus().attach(fast)
        tally = self.tally()

        self.drive(legacy, fast=False, tally=tally)
        self.drive(fast, fast=True, tally=tally)

        assert fast.stats["fills"] == 0
        assert tally[TALLY_FILLS] == legacy.stats["fills"]
        assert tally[TALLY_EVICTIONS] == legacy.stats["evictions"]
        assert tally[TALLY_WRITE_BACKS] == legacy.stats["write_backs"]
        assert tally[TALLY_BUS] == legacy.bus.transactions
        assert fast.bus.transactions == 0

    def test_fast_ownership_broadcasts_live_with_peers(self):
        bus = SnoopyBus()
        a = small_cache("a")
        b = small_cache("b")
        bus.attach(a)
        bus.attach(b)
        assert a.has_peers and b.has_peers
        a.fill(0x400, Protection.READ_WRITE, False, False)
        b.fill(0x400, Protection.READ_WRITE, False, False)
        tally = self.tally()
        index = a.probe(0x400)
        a.acquire_ownership_fast(index, tally)
        # Live broadcast, not tallied: the peer must have snooped.
        assert tally[TALLY_BUS] == 0
        assert bus.transactions == 3  # two fills + the ownership op
        assert b.probe(0x400) < 0  # invalidated by the snoop
