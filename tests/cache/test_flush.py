"""Unit tests for the page-flush strategies."""

import pytest

from repro.cache.cache import VirtualCache
from repro.cache.flush import TagCheckedFlush, TaglessFlush
from repro.common.params import CacheGeometry, MemoryTiming
from repro.common.types import Protection

PAGE = 128  # 4 blocks per page with 32-byte blocks


def make_cache():
    return VirtualCache(
        CacheGeometry(size_bytes=1024, block_bytes=32), MemoryTiming()
    )


def fill_page(cache, page_base, dirty_blocks=()):
    for block in range(4):
        vaddr = page_base + block * 32
        cache.fill(vaddr, Protection.READ_WRITE,
                   page_dirty=False, by_write=block in dirty_blocks)


class TestTagChecked:
    def test_flushes_only_target_page(self):
        cache = make_cache()
        fill_page(cache, 0x000)
        # A block from another page sharing the frame range would have
        # to conflict; instead fill a disjoint page and check survival.
        cache.fill(0x200, Protection.READ_WRITE, False, False)
        result = TagCheckedFlush().flush_page(cache, 0x000, PAGE)
        assert result.blocks_flushed == 4
        assert result.foreign_blocks_flushed == 0
        assert cache.probe(0x200) >= 0
        assert cache.probe(0x000) == -1

    def test_leaves_foreign_blocks_in_shared_frames(self):
        cache = make_cache()
        # 0x000 and 0x400 map to the same frames (cache is 1 KB).
        cache.fill(0x400, Protection.READ_WRITE, False, False)
        result = TagCheckedFlush().flush_page(cache, 0x000, PAGE)
        assert result.blocks_flushed == 0
        assert cache.probe(0x400) >= 0

    def test_dirty_blocks_cost_more_and_count_write_backs(self):
        cache = make_cache()
        fill_page(cache, 0x000, dirty_blocks={1, 2})
        flusher = TagCheckedFlush()
        result = flusher.flush_page(cache, 0x000, PAGE)
        assert result.write_backs == 2
        clean_cost = 4 * flusher.loop_cycles + 2 * flusher.check_cycles
        dirty_cost = 2 * flusher.flush_cycles
        transfers = 2 * cache.block_transfer_cycles
        assert result.cycles == clean_cost + dirty_cost + transfers

    def test_empty_page_costs_only_checks(self):
        cache = make_cache()
        flusher = TagCheckedFlush()
        result = flusher.flush_page(cache, 0x000, PAGE)
        assert result.blocks_flushed == 0
        assert result.cycles == 4 * (
            flusher.loop_cycles + flusher.check_cycles
        )

    def test_lines_checked_equals_blocks_per_page(self):
        cache = make_cache()
        result = TagCheckedFlush().flush_page(cache, 0x000, PAGE)
        assert result.lines_checked == 4


class TestTagless:
    def test_flushes_foreign_blocks_too(self):
        cache = make_cache()
        # Fill the frames with blocks from a different page that maps
        # to the same index range (0x400 vs 0x000 in a 1 KB cache).
        fill_page(cache, 0x400)
        result = TaglessFlush().flush_page(cache, 0x000, PAGE)
        assert result.blocks_flushed == 4
        assert result.foreign_blocks_flushed == 4
        assert cache.probe(0x400) == -1

    def test_costs_more_than_tag_checked_on_dirty_foreigners(self):
        tagless_cache = make_cache()
        checked_cache = make_cache()
        for cache in (tagless_cache, checked_cache):
            fill_page(cache, 0x400, dirty_blocks={0, 1, 2, 3})
        tagless = TaglessFlush().flush_page(tagless_cache, 0x000, PAGE)
        checked = TagCheckedFlush().flush_page(checked_cache, 0x000, PAGE)
        assert tagless.cycles > checked.cycles
        assert checked.write_backs == 0  # foreign blocks left alone

    def test_write_backs_counted(self):
        cache = make_cache()
        fill_page(cache, 0x000, dirty_blocks={0})
        result = TaglessFlush().flush_page(cache, 0x000, PAGE)
        assert result.write_backs == 1


class TestScaledCosts:
    def test_cost_scale_multiplies_cycle_prices(self):
        cheap_cache, priced_cache = make_cache(), make_cache()
        fill_page(cheap_cache, 0x000, dirty_blocks={1})
        fill_page(priced_cache, 0x000, dirty_blocks={1})
        cheap = TagCheckedFlush().flush_page(cheap_cache, 0x000, PAGE)
        priced = TagCheckedFlush(
            loop_cycles=16, check_cycles=8, flush_cycles=80
        ).flush_page(priced_cache, 0x000, PAGE)
        transfers = cheap_cache.block_transfer_cycles
        assert priced.cycles - transfers == 8 * (cheap.cycles - transfers)
