"""Subprocess half of the kill-resume tests: a paced journaled campaign.

Run as a script (``python _campaign_script.py --journal J --cache-dir
C --delay 0.3``) it executes the Table 4.1-shaped grid below through
the campaign service, sleeping ``--delay`` seconds before recording
each computed cell so the parent test can kill it mid-campaign at a
known point.  The test imports :func:`campaign_cells` from this same
file, so both processes agree on the grid by construction.
"""

import argparse
import sys
import time

from repro.campaignd.drivers import LocalDriver
from repro.campaignd.service import CampaignService
from repro.machine.config import scaled_config
from repro.parallel import ResultCache, RunCell
from repro.workloads.slc import SlcWorkload
from repro.workloads.workload1 import Workload1

TINY_SCALE = 0.003
MAX_REFS = 2000


def campaign_cells():
    """A small Table 4.1-shaped grid: 2 workloads x 2 memories x 2 seeds."""
    cells = []
    for name, cls in (("SLC", SlcWorkload), ("WORKLOAD1", Workload1)):
        for ratio in (40, 48):
            for seed in (0, 1):
                cells.append(RunCell(
                    scaled_config(memory_ratio=ratio),
                    cls(length_scale=TINY_SCALE),
                    seed=seed,
                    max_references=MAX_REFS,
                    label=f"{name}-{ratio}-s{seed}",
                ))
    return cells


class PacedLocalDriver(LocalDriver):
    """A serial LocalDriver that sleeps before recording each cell."""

    def __init__(self, delay):
        super().__init__(workers=1)
        self.delay = delay

    def run(self, cells, pending, record):
        def paced(index, outcome):
            if self.delay > 0:
                time.sleep(self.delay)
            record(index, outcome)

        super().run(cells, pending, paced)


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--journal", required=True)
    parser.add_argument("--cache-dir", required=True)
    parser.add_argument("--delay", type=float, default=0.0)
    args = parser.parse_args(argv)
    service = CampaignService(
        campaign_cells(),
        journal=args.journal,
        cache=ResultCache(args.cache_dir),
        driver=PacedLocalDriver(args.delay),
    )
    service.run()
    print("campaign complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
