"""Shared campaignd fixtures: a tiny campaign grid and its results.

The grid is deliberately small (one config, one workload recipe, a
few seeds) so every test that needs *real* RunResults — journal
payloads, cache entries, bit-identity comparisons — pays for the
simulation once per session.
"""

import pytest

from repro.machine.config import scaled_config
from repro.parallel import RunCell, execute_cells
from repro.workloads.slc import SlcWorkload

TINY_SCALE = 0.003
MAX_REFS = 2000


def make_cells(seeds=(0, 1, 2, 3), memory_ratio=40):
    """A tiny, fully cacheable campaign grid (one cell per seed)."""
    return [
        RunCell(
            scaled_config(memory_ratio=memory_ratio),
            SlcWorkload(length_scale=TINY_SCALE),
            seed=seed,
            max_references=MAX_REFS,
            label=f"slc-{memory_ratio}-s{seed}",
        )
        for seed in seeds
    ]


@pytest.fixture(scope="session")
def tiny_cells():
    """Four tiny cells, shared (read-only) across the session."""
    return make_cells()


@pytest.fixture(scope="session")
def tiny_results(tiny_cells):
    """The tiny grid's results, computed once per session."""
    return execute_cells(tiny_cells)
