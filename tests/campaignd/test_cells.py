"""The portable cell-spec codec: round trips and refusals."""

import json

import pytest

from repro.campaignd.cells import (
    SPEC_FORMAT,
    SpecError,
    cell_key,
    cell_to_spec,
    decode_value,
    encode_value,
    spec_to_cell,
    workload_from_spec,
    workload_to_spec,
)
from repro.counters.events import Event
from repro.machine.config import scaled_config
from repro.vm.segments import RegionKind
from repro.workloads.slc import SlcWorkload

from tests.campaignd.conftest import make_cells


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, "text", "",
        0.1, -2.5, 1e300, float("inf"),
        (1, 2, ("a",)),
        [1, [2, 3]],
        {3, 1, 2},
        frozenset({"b", "a"}),
        {"k": 1, "nested": {"x": (1.5,)}},
        RegionKind.HEAP,
        scaled_config(memory_ratio=40),
    ])
    def test_round_trip(self, value):
        rendered = encode_value(value)
        # The rendering must itself be plain JSON.
        rendered = json.loads(json.dumps(rendered))
        rebuilt = decode_value(rendered)
        assert rebuilt == value
        assert type(rebuilt) is type(value)

    def test_float_precision_survives(self):
        value = 0.1 + 0.2  # not representable as a short decimal
        assert decode_value(encode_value(value)) == value

    def test_int_and_float_stay_distinct(self):
        assert decode_value(encode_value(1)) == 1
        assert isinstance(decode_value(encode_value(1.0)), float)

    def test_unencodable_value_raises(self):
        class Opaque:
            pass

        with pytest.raises(SpecError, match="Opaque"):
            encode_value(Opaque())

    def test_unknown_tag_raises(self):
        with pytest.raises(SpecError, match="unknown spec tag"):
            decode_value({"$mystery": 1})

    def test_bare_list_rejected(self):
        with pytest.raises(SpecError, match="list"):
            decode_value([1, 2])

    def test_untrusted_import_path_rejected(self):
        with pytest.raises(SpecError, match="repro"):
            decode_value({"$enum": "os:environ", "member": "x"})

    def test_malformed_symbol_path_rejected(self):
        with pytest.raises(SpecError, match="malformed"):
            decode_value({"$enum": "no-colon-here", "member": "x"})

    def test_missing_enum_member_rejected(self):
        rendered = encode_value(RegionKind.HEAP)
        rendered["member"] = "NOT_A_MEMBER"
        with pytest.raises(SpecError, match="NOT_A_MEMBER"):
            decode_value(rendered)

    def test_int_enum_renders_as_plain_int(self):
        # IntEnum members *are* ints, so they take the primitive
        # branch — exactly what the cache-key canonicaliser does,
        # which keeps spec round trips and cache keys in agreement.
        rendered = encode_value(Event.DIRTY_FAULT)
        assert rendered == int(Event.DIRTY_FAULT)
        assert decode_value(rendered) == Event.DIRTY_FAULT


class TestWorkloadSpec:
    def test_round_trip_is_bit_exact(self):
        workload = SlcWorkload(length_scale=0.003)
        rebuilt = workload_from_spec(
            json.loads(json.dumps(workload_to_spec(workload)))
        )
        assert type(rebuilt) is SlcWorkload
        # Constructor-derived state must come back verbatim, not be
        # re-derived: the instance dicts compare equal field by field.
        assert vars(rebuilt) == vars(workload)

    def test_dataclass_rejected_as_workload(self):
        spec = {
            "class": "repro.machine.config:MachineConfig",
            "state": {},
        }
        with pytest.raises(SpecError, match="dataclass"):
            workload_from_spec(spec)


class TestCellSpec:
    def test_round_trip_preserves_cache_key(self):
        for cell in make_cells(seeds=(0, 7)):
            spec = json.loads(json.dumps(cell_to_spec(cell)))
            rebuilt = spec_to_cell(spec)
            assert cell_key(rebuilt) == cell_key(cell)
            assert rebuilt.seed == cell.seed
            assert rebuilt.label == cell.label
            assert rebuilt.max_references == cell.max_references

    def test_format_field_gates_reading(self):
        spec = cell_to_spec(make_cells(seeds=(0,))[0])
        spec["format"] = SPEC_FORMAT + 1
        with pytest.raises(SpecError, match="format"):
            spec_to_cell(spec)

    def test_non_dict_spec_rejected(self):
        with pytest.raises(SpecError):
            spec_to_cell("not a spec")

    def test_unkeyable_cell_has_no_identity(self):
        class Opaque:
            pass

        cell = make_cells(seeds=(0,))[0]
        cell.workload.helper = Opaque()
        assert cell_key(cell) is None

    def test_keys_match_between_processes_in_spirit(self):
        # Two independently built but equal cells share one key —
        # the property every resume and every cache hit rests on.
        a = make_cells(seeds=(3,))[0]
        b = make_cells(seeds=(3,))[0]
        assert a is not b
        assert cell_key(a) == cell_key(b) is not None
