"""SubprocessDriver: sharding, bit-identity, timeouts, and crashes.

These tests spawn real ``repro worker`` subprocesses, so they lean on
the session-scoped tiny grid and keep worker counts small.
"""

import pytest

from repro.campaignd.cells import cell_key
from repro.campaignd.drivers import SubprocessDriver
from repro.campaignd.service import CampaignService
from repro.machine.runner import RunResult
from repro.parallel import ResultCache


def drive(driver, cells, pending=None):
    """Run *driver* over *cells*, collecting outcomes by index."""
    outcomes = {}
    driver.run(
        cells,
        list(range(len(cells))) if pending is None else pending,
        lambda index, outcome: outcomes.__setitem__(index, outcome),
    )
    return outcomes


class TestSubprocessDriver:
    def test_two_workers_bit_identical_to_local(self, tmp_path,
                                                tiny_cells,
                                                tiny_results):
        driver = SubprocessDriver(workers=2, cache_dir=tmp_path)
        outcomes = drive(driver, tiny_cells)
        assert sorted(outcomes) == list(range(len(tiny_cells)))
        for index, expected in enumerate(tiny_results):
            assert isinstance(outcomes[index], RunResult)
            assert outcomes[index] == expected
        # Workers stored every result into the shared cache.
        shared = ResultCache(tmp_path)
        for cell in tiny_cells:
            assert shared.get(cell_key(cell)) is not None

    def test_no_cache_dir_streams_results_inline(self, tiny_cells,
                                                 tiny_results):
        driver = SubprocessDriver(workers=2)
        assert driver.stores_results is False
        outcomes = drive(driver, tiny_cells, pending=[0, 2])
        assert outcomes[0] == tiny_results[0]
        assert outcomes[2] == tiny_results[2]

    def test_empty_pending_is_a_no_op(self, tiny_cells):
        assert drive(SubprocessDriver(workers=2), tiny_cells,
                     pending=[]) == {}

    def test_timeout_kills_overdue_workers(self, tiny_cells):
        driver = SubprocessDriver(
            workers=1, worker_args=("--delay-seconds", "60"),
            timeout_seconds=2.0,
        )
        outcomes = drive(driver, tiny_cells, pending=[0])
        assert isinstance(outcomes[0], TimeoutError)
        assert "killed" in str(outcomes[0])

    def test_worker_crash_reports_exit_code_and_stderr(self,
                                                       tiny_cells):
        driver = SubprocessDriver(
            workers=1, worker_args=("--no-such-flag",),
        )
        outcomes = drive(driver, tiny_cells, pending=[1])
        assert isinstance(outcomes[1], RuntimeError)
        message = str(outcomes[1])
        assert "exited with code" in message
        assert "no-such-flag" in message

    def test_describe_names_the_shard_count(self):
        assert SubprocessDriver(workers=3).describe() == (
            "subprocess(workers=3)"
        )


class TestServiceWithSubprocessDriver:
    def test_campaign_bit_identical_and_worker_stored(
            self, tmp_path, tiny_cells, tiny_results):
        cache = ResultCache(tmp_path / "cache")
        service = CampaignService(
            tiny_cells,
            journal=tmp_path / "j.jsonl",
            cache=cache,
            driver=SubprocessDriver(workers=2,
                                    cache_dir=tmp_path / "cache"),
        )
        assert service.run() == tiny_results
        # The parent never stored: workers own the shared cache.
        assert cache.stores == 0
        assert len(ResultCache(tmp_path / "cache")) == len(tiny_cells)

    def test_shards_share_mid_campaign_work(self, tmp_path,
                                            tiny_cells, tiny_results):
        # Pre-store half the grid: workers must report those as cached
        # hits instead of recomputing them.
        cache_dir = tmp_path / "cache"
        warm = ResultCache(cache_dir)
        for index in (0, 3):
            warm.put(cell_key(tiny_cells[index]), tiny_results[index])
        driver = SubprocessDriver(workers=2, cache_dir=cache_dir)
        outcomes = drive(driver, tiny_cells)
        for index, expected in enumerate(tiny_results):
            assert outcomes[index] == expected
