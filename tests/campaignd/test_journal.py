"""The append-only journal: durability, replay, and damage tolerance."""

import json

from repro.campaignd.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    read_journal,
)


def payload(n):
    """A minimal stand-in result payload (replay treats it opaquely)."""
    return {"format": 1, "cycles": n}


class TestAppendAndReplay:
    def test_missing_file_replays_empty(self, tmp_path):
        replay = read_journal(tmp_path / "absent.jsonl")
        assert replay.records == 0
        assert replay.results == {}
        assert replay.failures == {}
        assert not replay.torn_tail

    def test_done_and_failed_records(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.plan(["k0", "k1", None], ["a", "b", None])
        journal.cell_done(0, "k0", "a", payload(1))
        journal.cell_failed(1, "k1", "b", "RuntimeError: boom")
        journal.close()
        replay = read_journal(journal.path)
        assert replay.records == 3
        assert replay.planned_cells == 3
        assert replay.results == {"k0": payload(1)}
        assert replay.failures == {"k1": "RuntimeError: boom"}
        assert replay.completed == 1

    def test_last_result_wins(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_done(0, "k0", "a", payload(1))
        journal.cell_done(0, "k0", "a", payload(2))
        journal.close()
        assert read_journal(journal.path).results["k0"] == payload(2)

    def test_later_done_clears_failure(self, tmp_path):
        # A failed attempt followed by a successful retry (possibly in
        # a later campaign run) must replay as done, not failed.
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_failed(0, "k0", "a", "boom")
        journal.cell_done(0, "k0", "a", payload(3))
        journal.close()
        replay = read_journal(journal.path)
        assert replay.failures == {}
        assert replay.results == {"k0": payload(3)}

    def test_every_record_lands_on_disk_per_append(self, tmp_path):
        # No close() before reading: append must flush, so a reader
        # (or a post-kill replay) always sees every completed record.
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_done(0, "k0", "a", payload(1))
        assert read_journal(journal.path).completed == 1
        journal.close()

    def test_coerce(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        assert CampaignJournal.coerce(None) is None
        assert CampaignJournal.coerce(journal) is journal
        built = CampaignJournal.coerce(tmp_path / "other.jsonl")
        assert isinstance(built, CampaignJournal)


class TestDamageTolerance:
    def test_torn_tail_flagged_not_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, fsync=False)
        journal.cell_done(0, "k0", "a", payload(1))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "cell_done", "key": "k1", "resu')
        replay = read_journal(path)
        assert replay.torn_tail
        assert replay.corrupt_records == 0
        assert replay.results == {"k0": payload(1)}

    def test_mid_file_corruption_counted_and_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(path, fsync=False)
        journal.cell_done(0, "k0", "a", payload(1))
        journal.close()
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("not json at all\n" + "".join(lines))
        replay = read_journal(path)
        assert replay.corrupt_records == 1
        assert not replay.torn_tail
        assert replay.results == {"k0": payload(1)}

    def test_unknown_format_records_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {
            "type": "cell_done", "key": "k9", "result": payload(9),
            "format": JOURNAL_FORMAT + 1,
        }
        path.write_text(json.dumps(record) + "\n")
        replay = read_journal(path)
        assert replay.results == {}
        assert replay.corrupt_records == 1

    def test_done_record_without_payload_counted_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {
            "type": "cell_done", "key": "k0", "result": "not-a-dict",
            "format": JOURNAL_FORMAT,
        }
        path.write_text(json.dumps(record) + "\n")
        replay = read_journal(path)
        assert replay.results == {}
        assert replay.corrupt_records == 1
