"""WorkQueue resolution: cache first, journal second, pending last."""

from repro.campaignd.cells import cell_key
from repro.campaignd.journal import CampaignJournal
from repro.campaignd.queue import WorkQueue
from repro.parallel import ResultCache
from repro.parallel.cache import result_to_payload

from tests.campaignd.conftest import make_cells


class TestResolve:
    def test_all_pending_when_cold(self, tiny_cells):
        plan = WorkQueue(tiny_cells).resolve()
        assert plan.pending == list(range(len(tiny_cells)))
        assert plan.cached == [] and plan.resumed == []
        assert plan.results == [None] * len(tiny_cells)

    def test_cache_hits_resolve_first(self, tmp_path, tiny_cells,
                                      tiny_results):
        cache = ResultCache(tmp_path)
        cache.put(cell_key(tiny_cells[1]), tiny_results[1])
        plan = WorkQueue(tiny_cells, cache=cache).resolve()
        assert plan.cached == [1]
        assert plan.pending == [0, 2, 3]
        assert plan.results[1] == tiny_results[1]

    def test_journal_payloads_resume_without_cache(self, tmp_path,
                                                   tiny_cells,
                                                   tiny_results):
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_done(2, cell_key(tiny_cells[2]), "x",
                          result_to_payload(tiny_results[2]))
        journal.close()
        plan = WorkQueue(tiny_cells, journal=journal).resolve()
        assert plan.resumed == [2]
        assert plan.pending == [0, 1, 3]
        assert plan.results[2] == tiny_results[2]

    def test_journal_resume_heals_the_cache(self, tmp_path, tiny_cells,
                                            tiny_results):
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_done(0, cell_key(tiny_cells[0]), "x",
                          result_to_payload(tiny_results[0]))
        journal.close()
        cache = ResultCache(tmp_path / "cache")
        first = WorkQueue(tiny_cells, journal=journal,
                          cache=cache).resolve()
        assert first.resumed == [0]
        assert cache.stores == 1
        # Second resolution hits the healed cache; the journal record
        # is no longer needed.
        second = WorkQueue(tiny_cells, cache=cache).resolve()
        assert second.cached == [0]
        assert second.resumed == []

    def test_cache_preferred_over_journal(self, tmp_path, tiny_cells,
                                          tiny_results):
        key = cell_key(tiny_cells[0])
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_done(0, key, "x",
                          result_to_payload(tiny_results[0]))
        journal.close()
        cache = ResultCache(tmp_path / "cache")
        cache.put(key, tiny_results[0])
        plan = WorkQueue(tiny_cells, journal=journal,
                         cache=cache).resolve()
        assert plan.cached == [0]
        assert plan.resumed == []

    def test_undecodable_journal_payload_stays_pending(self, tmp_path,
                                                       tiny_cells):
        journal = CampaignJournal(tmp_path / "j.jsonl", fsync=False)
        journal.cell_done(0, cell_key(tiny_cells[0]), "x",
                          {"format": 1, "not": "a result"})
        journal.close()
        plan = WorkQueue(tiny_cells, journal=journal).resolve()
        assert 0 in plan.pending
        assert plan.resumed == []

    def test_unkeyable_cell_is_always_pending(self, tmp_path):
        class Opaque:
            pass

        cells = make_cells(seeds=(0,))
        cells[0].workload.helper = Opaque()
        cache = ResultCache(tmp_path)
        plan = WorkQueue(cells, cache=cache).resolve()
        assert plan.keys == [None]
        assert plan.pending == [0]

    def test_completed_property_merges_in_cell_order(self):
        from repro.campaignd.queue import QueuePlan

        plan = QueuePlan(cached=[3, 0], resumed=[2])
        assert plan.completed == [0, 2, 3]
