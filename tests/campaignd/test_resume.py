"""Crash-resume end to end: kill -9 a campaign, resume, lose nothing.

The headline guarantees under test:

* a SIGKILLed campaign's journal and cache hold every completed cell;
* resuming recomputes **zero** completed cells (proved by cache-hit
  counters) and the merged results are bit-identical to a campaign
  that was never interrupted;
* a journal with corrupted or torn records degrades gracefully —
  damaged cells recompute, intact cells still resume.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.campaignd.drivers import LocalDriver
from repro.campaignd.journal import read_journal
from repro.campaignd.service import CampaignService
from repro.parallel import ResultCache, execute_cells

from tests.campaignd._campaign_script import campaign_cells

SCRIPT = os.path.join(os.path.dirname(__file__), "_campaign_script.py")


def script_env():
    """Make the subprocess import the same ``repro`` this test runs."""
    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


def wait_for_completed(journal_path, minimum, timeout=120.0):
    """Poll the journal until *minimum* cells are durably recorded."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        completed = read_journal(journal_path).completed
        if completed >= minimum:
            return completed
        time.sleep(0.05)
    raise AssertionError(
        f"journal never reached {minimum} completed cells"
    )


@pytest.fixture(scope="module")
def uninterrupted_results():
    """The grid's results from a run that was never interrupted."""
    return execute_cells(campaign_cells())


class TestKillMinusNineResume:
    def test_zero_recomputation_and_bit_identical_merge(
            self, tmp_path, uninterrupted_results):
        cells = campaign_cells()
        journal = tmp_path / "journal.jsonl"
        cache_dir = tmp_path / "cache"
        stderr_path = tmp_path / "campaign.stderr"
        with open(stderr_path, "w", encoding="utf-8") as stderr:
            proc = subprocess.Popen(
                [sys.executable, SCRIPT,
                 "--journal", str(journal),
                 "--cache-dir", str(cache_dir),
                 "--delay", "0.3"],
                env=script_env(),
                stdout=subprocess.DEVNULL,
                stderr=stderr,
            )
        try:
            wait_for_completed(journal, 3)
        except BaseException:
            proc.kill()
            proc.wait(timeout=30)
            raise AssertionError(
                "campaign subprocess made no progress; stderr:\n"
                + stderr_path.read_text()
            )
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # The campaign really was interrupted mid-flight.
        completed_before = read_journal(journal).completed
        assert 0 < completed_before < len(cells)

        cache = ResultCache(cache_dir)
        results = CampaignService(
            cells, journal=journal, cache=cache, driver=LocalDriver(),
        ).run()

        # Zero recomputation: every cell the killed run finished came
        # back as a cache hit, and only the remainder was computed
        # (and stored).  The cache may be one cell ahead of the
        # journal if the kill landed between the store and the append.
        assert cache.hits >= completed_before
        assert cache.hits < len(cells)
        assert cache.stores == len(cells) - cache.hits

        # Bit-identical merge of resumed + freshly computed cells.
        assert results == uninterrupted_results

        # The journal now holds the whole campaign.
        assert read_journal(journal).completed == len(cells)

    def test_second_resume_recomputes_nothing_at_all(
            self, tmp_path, uninterrupted_results):
        cells = campaign_cells()
        journal = tmp_path / "journal.jsonl"
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        CampaignService(
            cells, journal=journal, cache=cache, driver=LocalDriver(),
        ).run()
        again = ResultCache(cache_dir)
        results = CampaignService(
            cells, journal=journal, cache=again, driver=LocalDriver(),
        ).run()
        assert again.hits == len(cells)
        assert again.stores == 0
        assert results == uninterrupted_results


class TestDamagedJournalRecovery:
    def test_corrupt_and_torn_records_recompute_only_their_cells(
            self, tmp_path, uninterrupted_results):
        cells = campaign_cells()
        journal = tmp_path / "journal.jsonl"
        CampaignService(
            cells, journal=journal, driver=LocalDriver(),
        ).run()

        # Damage the journal: corrupt cell 1's record in place and
        # tear the final record (cell N-1) mid-line.
        lines = journal.read_text().splitlines()
        damaged = []
        for line in lines[:-1]:
            record = json.loads(line)
            if (record.get("type") == "cell_done"
                    and record.get("index") == 1):
                damaged.append(line[: len(line) // 2])
            else:
                damaged.append(line)
        torn = lines[-1][: len(lines[-1]) // 2]
        journal.write_text("\n".join(damaged) + "\n" + torn)

        replay = read_journal(journal)
        assert replay.corrupt_records >= 1
        assert replay.torn_tail
        assert replay.completed == len(cells) - 2

        tracking = TrackingDriver()
        results = CampaignService(
            cells, journal=journal, driver=tracking,
        ).run()
        # Only the two damaged cells were recomputed.
        assert tracking.pending_seen == [[1, len(cells) - 1]]
        assert results == uninterrupted_results


class TrackingDriver(LocalDriver):
    """LocalDriver that records which indices it was asked to run."""

    def __init__(self):
        super().__init__(workers=1)
        self.pending_seen = []

    def run(self, cells, pending, record):
        self.pending_seen.append(list(pending))
        super().run(cells, pending, record)
