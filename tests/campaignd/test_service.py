"""CampaignService: resume, retry, events, and failure semantics.

Driver doubles replay precomputed results, so these tests exercise
the service's orchestration (journal ordering, retry accounting,
event vocabulary) without paying for simulation in every test.
"""

import io

import pytest

from repro.campaignd.drivers import LocalDriver, RetryPolicy, SubprocessDriver
from repro.campaignd.journal import read_journal
from repro.campaignd.service import CampaignService
from repro.observe.progress import CampaignProgress
from repro.observe.sinks import MemorySink
from repro.parallel import CampaignError, ResultCache


class StubDriver:
    """Replays canned results; records every pending list it was given."""

    supports_timeout = False
    stores_results = False

    def __init__(self, results, fail_indices=(), fail_times=0):
        self.results = results
        self.fail_indices = set(fail_indices)
        self.fail_times = fail_times
        self.calls = []

    def describe(self):
        return "stub"

    def run(self, cells, pending, record):
        attempt = len(self.calls)
        self.calls.append(list(pending))
        for index in pending:
            if index in self.fail_indices and attempt < self.fail_times:
                record(index, RuntimeError(f"flaky cell {index}"))
            else:
                record(index, self.results[index])


class StoringStubDriver(StubDriver):
    """A stub that claims worker-side storage (like SubprocessDriver)."""

    stores_results = True


class TestRunAndResume:
    def test_local_driver_matches_execute_cells(self, tiny_cells,
                                                tiny_results):
        service = CampaignService(tiny_cells, driver=LocalDriver())
        assert service.run() == tiny_results

    def test_journal_resume_skips_every_completed_cell(
            self, tmp_path, tiny_cells, tiny_results):
        journal = tmp_path / "j.jsonl"
        first = CampaignService(
            tiny_cells, journal=journal,
            driver=StubDriver(tiny_results),
        )
        assert first.run() == tiny_results

        sink = MemorySink()
        second_driver = StubDriver(tiny_results)
        second = CampaignService(
            tiny_cells, journal=journal, driver=second_driver,
            sink=sink,
        )
        assert second.run() == tiny_results
        # Nothing was pending, so the driver was never consulted.
        assert second_driver.calls == []
        assert len(sink.of_type("cell_resumed")) == len(tiny_cells)
        started = sink.of_type("campaign_started")[0]
        assert started["resumed"] == len(tiny_cells)
        assert started["pending"] == 0

    def test_warm_cache_resolves_before_the_driver(
            self, tmp_path, tiny_cells, tiny_results):
        cache = ResultCache(tmp_path)
        CampaignService(
            tiny_cells, cache=cache, driver=StubDriver(tiny_results),
        ).run()
        sink = MemorySink()
        progress = CampaignProgress(stream=io.StringIO())
        driver = StubDriver(tiny_results)
        results = CampaignService(
            tiny_cells, cache=cache, driver=driver, sink=sink,
            progress=progress,
        ).run()
        assert results == tiny_results
        assert driver.calls == []
        assert len(sink.of_type("cell_cached")) == len(tiny_cells)
        assert progress.cached == len(tiny_cells)
        assert progress.computed == 0
        assert progress.done == len(tiny_cells)

    def test_journal_holds_results_before_events_fire(
            self, tmp_path, tiny_cells, tiny_results):
        journal = tmp_path / "j.jsonl"
        seen = []

        class Watcher:
            def emit(self, event):
                if event.get("type") == "cell_finished":
                    seen.append(read_journal(journal).completed)

            def close(self):
                pass

        CampaignService(
            tiny_cells, journal=journal,
            driver=StubDriver(tiny_results), sink=Watcher(),
        ).run()
        # By the time each cell_finished event is visible, that cell's
        # record is already durable: completed counts 1, 2, 3, 4.
        assert seen == list(range(1, len(tiny_cells) + 1))


class TestEvents:
    def test_vocabulary_of_a_clean_run(self, tmp_path, tiny_cells,
                                       tiny_results):
        sink = MemorySink()
        CampaignService(
            tiny_cells, cache=ResultCache(tmp_path),
            driver=StubDriver(tiny_results), sink=sink,
        ).run()
        started = sink.of_type("campaign_started")[0]
        assert started["cells"] == len(tiny_cells)
        assert started["pending"] == len(tiny_cells)
        assert started["driver"] == "stub"
        assert len(sink.of_type("cell_finished")) == len(tiny_cells)
        assert len(sink.of_type("run_finished")) == len(tiny_cells)
        finished = sink.of_type("campaign_finished")[0]
        assert finished["computed"] == len(tiny_cells)
        assert finished["failed"] == 0
        assert all("ts" in event for event in sink.events)


class TestRetry:
    def test_flaky_cell_recovers_on_retry(self, tiny_cells,
                                          tiny_results):
        sink = MemorySink()
        driver = StubDriver(tiny_results, fail_indices={1},
                            fail_times=1)
        results = CampaignService(
            tiny_cells, driver=driver,
            retry=RetryPolicy(retries=2, backoff_seconds=0),
            sink=sink,
        ).run()
        assert results == tiny_results
        assert driver.calls == [[0, 1, 2, 3], [1]]
        attempt_failed = sink.of_type("cell_attempt_failed")
        assert len(attempt_failed) == 1
        assert attempt_failed[0]["attempt"] == 0
        assert "flaky cell 1" in attempt_failed[0]["error"]
        retry = sink.of_type("campaign_retry")[0]
        assert retry["cells"] == 1
        assert sink.of_type("cell_failed") == []

    def test_exhausted_retries_raise_campaign_error(
            self, tmp_path, tiny_cells, tiny_results):
        journal = tmp_path / "j.jsonl"
        sink = MemorySink()
        driver = StubDriver(tiny_results, fail_indices={2},
                            fail_times=99)
        with pytest.raises(CampaignError) as info:
            CampaignService(
                tiny_cells, journal=journal, driver=driver,
                retry=RetryPolicy(retries=1, backoff_seconds=0),
                sink=sink,
            ).run()
        error = info.value
        assert [f.index for f in error.failures] == [2]
        assert error.results[2] is None
        assert error.results[0] == tiny_results[0]
        # Both attempts drove the failed cell; the rest ran once.
        assert driver.calls == [[0, 1, 2, 3], [2]]
        assert len(sink.of_type("cell_attempt_failed")) == 2
        assert len(sink.of_type("cell_failed")) == 1
        replay = read_journal(journal)
        assert len(replay.failures) == 1
        assert replay.completed == len(tiny_cells) - 1

    def test_sleep_before_backoff_schedule(self):
        policy = RetryPolicy(retries=3, backoff_seconds=0.5)
        assert policy.sleep_before(0) == 0.0
        assert policy.sleep_before(1) == 0.5
        assert policy.sleep_before(2) == 1.0
        assert policy.sleep_before(3) == 2.0
        assert RetryPolicy(backoff_seconds=0).sleep_before(2) == 0.0


class TestDriverContract:
    def test_timeout_refused_without_capable_driver(self, tiny_cells):
        with pytest.raises(ValueError, match="SubprocessDriver"):
            CampaignService(
                tiny_cells, driver=LocalDriver(),
                retry=RetryPolicy(timeout_seconds=1.0),
            )

    def test_timeout_forwarded_to_capable_driver(self, tiny_cells):
        driver = SubprocessDriver(workers=1)
        CampaignService(
            tiny_cells, driver=driver,
            retry=RetryPolicy(timeout_seconds=7.5),
        )
        assert driver.timeout_seconds == 7.5

    def test_parent_stores_only_for_non_storing_drivers(
            self, tmp_path, tiny_cells, tiny_results):
        storing = ResultCache(tmp_path / "a")
        CampaignService(
            tiny_cells, cache=storing,
            driver=StubDriver(tiny_results),
        ).run()
        assert storing.stores == len(tiny_cells)

        delegated = ResultCache(tmp_path / "b")
        CampaignService(
            tiny_cells, cache=delegated,
            driver=StoringStubDriver(tiny_results),
        ).run()
        assert delegated.stores == 0
