"""StatusServer broadcast, late-joiner history, and the client side."""

import io
import json
import socket
import time

from repro.campaignd.stream import (
    TERMINAL_EVENTS,
    StatusServer,
    follow_status,
    stream_events,
)
from repro.observe.sinks import MemorySink


def wait_for_clients(server, count=1, timeout=10.0):
    """Block until the acceptor thread has registered *count* clients.

    Connecting completes the TCP handshake before the server thread
    accepts; a test that emits and closes immediately after
    connecting must wait for the registration or the close can reset
    the still-queued connection.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with server._lock:
            if len(server._clients) >= count:
                return
        time.sleep(0.005)
    raise AssertionError("status client was never accepted")


def recv_events(sock, count, timeout=10.0):
    """Read *count* JSON-line events from a raw client socket."""
    sock.settimeout(timeout)
    buffer = b""
    events = []
    while len(events) < count:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buffer += chunk
        while b"\n" in buffer and len(events) < count:
            line, buffer = buffer.split(b"\n", 1)
            if line.strip():
                events.append(json.loads(line))
    return events


class TestStatusServer:
    def test_events_forward_to_inner_sink_and_clients(self):
        inner = MemorySink()
        with StatusServer(sink=inner) as server:
            with socket.create_connection(server.address) as client:
                server.emit({"type": "campaign_started", "cells": 2})
                server.emit({"type": "cell_finished", "cell": 0})
                events = recv_events(client, 2)
        assert [e["type"] for e in events] == [
            "campaign_started", "cell_finished",
        ]
        assert [e["type"] for e in inner.events] == [
            "campaign_started", "cell_finished",
        ]

    def test_late_joiner_receives_full_history_first(self):
        with StatusServer() as server:
            server.emit({"type": "campaign_started", "cells": 2})
            server.emit({"type": "cell_finished", "cell": 0})
            with socket.create_connection(server.address) as client:
                history = recv_events(client, 2)
                server.emit({"type": "cell_finished", "cell": 1})
                live = recv_events(client, 1)
        assert [e["type"] for e in history] == [
            "campaign_started", "cell_finished",
        ]
        assert live[0]["cell"] == 1

    def test_close_broadcasts_terminal_event_with_failures(self):
        server = StatusServer(
            closing_event={"type": "campaign_serve_finished"},
        )
        with socket.create_connection(server.address) as client:
            wait_for_clients(server)
            server.emit({"type": "cell_failed", "cell": 0,
                         "error": "boom"})
            server.close()
            events = recv_events(client, 2)
        assert events[-1]["type"] == "campaign_serve_finished"
        assert events[-1]["type"] in TERMINAL_EVENTS
        assert events[-1]["failed"] == 1
        assert "ts" in events[-1]

    def test_close_is_idempotent(self):
        server = StatusServer(
            closing_event={"type": "campaign_serve_finished"},
        )
        server.close()
        server.close()

    def test_vanished_client_does_not_stall_the_campaign(self):
        with StatusServer() as server:
            client = socket.create_connection(server.address)
            server.emit({"type": "cell_finished", "cell": 0})
            client.close()
            # Further emits must simply drop the dead client.
            for cell in range(1, 4):
                server.emit({"type": "cell_finished", "cell": cell})


class TestStreamEvents:
    def test_streams_history_live_and_stops_at_terminal(self):
        server = StatusServer(
            closing_event={"type": "campaign_serve_finished"},
        )
        server.emit({"type": "campaign_started", "cells": 1})
        stream = stream_events(port=server.port, timeout=10.0)
        assert next(stream)["type"] == "campaign_started"
        server.emit({"type": "cell_finished", "cell": 0})
        assert next(stream)["type"] == "cell_finished"
        server.close()
        remaining = list(stream)
        assert [e["type"] for e in remaining] == [
            "campaign_serve_finished",
        ]

    def test_plain_eof_ends_the_stream(self):
        server = StatusServer()  # no closing event configured
        server.emit({"type": "campaign_started", "cells": 1})
        stream = stream_events(port=server.port, timeout=10.0)
        assert next(stream)["type"] == "campaign_started"
        server.close()
        assert list(stream) == []


class TestFollowStatus:
    def test_folds_events_into_progress_and_returns_last(self):
        events = [
            {"type": "campaign_started", "cells": 4},
            {"type": "cell_cached", "cell": 0},
            {"type": "cell_resumed", "cell": 1},
            {"type": "cell_finished", "cell": 2},
            {"type": "cell_failed", "cell": 3, "error": "boom"},
            {"type": "campaign_finished", "cells": 4, "failed": 1},
        ]
        stream = io.StringIO()
        last = follow_status(events, stream=stream)
        assert last["type"] == "campaign_finished"
        rendered = stream.getvalue()
        assert "4/4 cells done" in rendered
        assert "1 cached" in rendered
        assert "1 resumed" in rendered
        assert "1 FAILED" in rendered
