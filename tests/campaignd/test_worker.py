"""The ``repro worker`` protocol, run in-process for speed."""

import json

import pytest

from repro.campaignd.cells import SpecError, cell_key, cell_to_spec
from repro.campaignd.worker import read_cell_shard, worker_main
from repro.parallel import ResultCache
from repro.parallel.cache import result_from_payload

from tests.campaignd.conftest import make_cells


def write_shard(path, cells, indices=None):
    indices = list(range(len(cells))) if indices is None else indices
    with open(path, "w", encoding="utf-8") as handle:
        for index, cell in zip(indices, cells):
            handle.write(json.dumps({
                "index": index, "cell": cell_to_spec(cell),
            }) + "\n")


def run_worker(capsys, argv):
    code = worker_main(argv)
    lines = [
        json.loads(line)
        for line in capsys.readouterr().out.splitlines() if line
    ]
    return code, lines


class TestReadCellShard:
    def test_round_trip(self, tmp_path):
        cells = make_cells(seeds=(0, 1))
        path = tmp_path / "shard.jsonl"
        write_shard(path, cells, indices=[4, 9])
        pairs = read_cell_shard(path)
        assert [index for index, _ in pairs] == [4, 9]
        assert [cell_key(cell) for _, cell in pairs] == [
            cell_key(cell) for cell in cells
        ]

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SpecError, match=":1:"):
            read_cell_shard(path)

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "shard.jsonl"
        path.write_text('{"cell": {}}\n')
        with pytest.raises(SpecError, match="'index'"):
            read_cell_shard(path)


class TestWorkerMain:
    def test_reports_results_and_stores_to_cache(self, tmp_path,
                                                 capsys, tiny_results):
        cells = make_cells(seeds=(0, 1))
        shard = tmp_path / "shard.jsonl"
        write_shard(shard, cells)
        code, events = run_worker(capsys, [
            "--cells", str(shard), "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 0
        assert events[0]["type"] == "worker_started"
        assert events[0]["cells"] == 2
        done = [e for e in events if e["type"] == "worker_cell_done"]
        assert [e["index"] for e in done] == [0, 1]
        assert all(e["cached"] is False for e in done)
        for event, expected in zip(done, tiny_results[:2]):
            assert result_from_payload(event["result"]) == expected
        assert events[-1] == {
            "type": "worker_finished", "cells": 2, "failed": 0,
        }
        cache = ResultCache(tmp_path / "c")
        assert cache.get(cell_key(cells[0])) is not None

    def test_second_run_reports_cache_hits(self, tmp_path, capsys):
        cells = make_cells(seeds=(2,))
        shard = tmp_path / "shard.jsonl"
        write_shard(shard, cells)
        argv = ["--cells", str(shard),
                "--cache-dir", str(tmp_path / "c")]
        run_worker(capsys, argv)
        code, events = run_worker(capsys, argv)
        assert code == 0
        done = [e for e in events if e["type"] == "worker_cell_done"]
        assert [e["cached"] for e in done] == [True]

    def test_failed_cell_reported_and_shard_continues(self, tmp_path,
                                                      capsys):
        cells = make_cells(seeds=(0, 1))
        shard = tmp_path / "shard.jsonl"
        write_shard(shard, cells)
        # Break cell 0's workload state (still decodable, but the
        # recipe raises once simulation touches the missing field).
        lines = shard.read_text().splitlines()
        entry = json.loads(lines[0])
        entry["cell"]["workload"]["state"].clear()
        shard.write_text(
            json.dumps(entry) + "\n" + "\n".join(lines[1:]) + "\n"
        )
        code, events = run_worker(capsys, ["--cells", str(shard)])
        assert code == 0
        kinds = [e["type"] for e in events]
        assert "worker_cell_failed" in kinds
        assert kinds[-1] == "worker_finished"
        assert events[-1]["failed"] == 1
        done = [e for e in events if e["type"] == "worker_cell_done"]
        assert [e["index"] for e in done] == [1]

    def test_unreadable_shard_is_a_worker_error(self, tmp_path,
                                                capsys):
        path = tmp_path / "shard.jsonl"
        path.write_text("garbage\n")
        assert worker_main(["--cells", str(path)]) == 2
