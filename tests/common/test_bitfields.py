"""Unit tests for the declarative bit-field layer."""

import pytest

from repro.common.bitfields import BitField, BitLayout
from repro.common.errors import ConfigurationError


def make_layout():
    return BitLayout(
        "test",
        16,
        [
            BitField("V", 0, 1, "valid"),
            BitField("PR", 1, 2, "protection"),
            BitField("PPN", 8, 8, "page number"),
        ],
    )


class TestBitField:
    def test_msb(self):
        assert BitField("x", 3, 4).msb == 6

    def test_mask_is_shifted(self):
        assert BitField("x", 3, 4).mask == 0b1111000

    def test_max_value(self):
        assert BitField("x", 0, 3).max_value == 7

    def test_extract(self):
        field = BitField("x", 4, 4)
        assert field.extract(0xAB) == 0xA

    def test_insert_replaces_only_its_bits(self):
        field = BitField("x", 4, 4)
        assert field.insert(0xFF, 0x3) == 0x3F

    def test_insert_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            BitField("x", 0, 2).insert(0, 4)

    def test_insert_rejects_negative_value(self):
        with pytest.raises(ValueError):
            BitField("x", 0, 2).insert(0, -1)


class TestBitLayout:
    def test_pack_unpack_round_trip(self):
        layout = make_layout()
        word = layout.pack(V=1, PR=2, PPN=0x5A)
        assert layout.unpack(word) == {"V": 1, "PR": 2, "PPN": 0x5A}

    def test_pack_defaults_unnamed_fields_to_zero(self):
        layout = make_layout()
        assert layout.unpack(layout.pack(V=1))["PPN"] == 0

    def test_pack_rejects_unknown_field(self):
        with pytest.raises(KeyError):
            make_layout().pack(BOGUS=1)

    def test_unpack_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            make_layout().unpack(1 << 16)

    def test_set_and_get_single_field(self):
        layout = make_layout()
        word = layout.pack(V=1, PR=1, PPN=9)
        word = layout.set(word, "PR", 3)
        assert layout.get(word, "PR") == 3
        assert layout.get(word, "PPN") == 9

    def test_overlapping_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            BitLayout("bad", 8, [
                BitField("a", 0, 4), BitField("b", 3, 2),
            ])

    def test_field_exceeding_word_rejected(self):
        with pytest.raises(ConfigurationError):
            BitLayout("bad", 8, [BitField("a", 6, 4)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            BitLayout("bad", 8, [
                BitField("a", 0, 2), BitField("a", 4, 2),
            ])

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigurationError):
            BitLayout("bad", 8, [BitField("a", 0, 0)])

    def test_contains_and_getitem(self):
        layout = make_layout()
        assert "PR" in layout
        assert "zz" not in layout
        assert layout["PPN"].width == 8

    def test_field_names_in_declaration_order(self):
        assert make_layout().field_names == ["V", "PR", "PPN"]

    def test_render_mentions_every_field_and_width(self):
        text = make_layout().render()
        for name in ("V[1]", "PR[2]", "PPN[8]"):
            assert name in text

    def test_render_marks_reserved_holes(self):
        # Bits 3..7 of the test layout are unused.
        assert "reserved[5]" in make_layout().render()
