"""Unit tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    AddressError,
    ConfigurationError,
    ProtectionFault,
    ReproError,
    TraceFormatError,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (
        ConfigurationError,
        AddressError,
        ProtectionFault,
        TraceFormatError,
    ):
        assert issubclass(error_type, ReproError)


def test_repro_error_derives_from_exception_only():
    # Callers must be able to catch ReproError without catching
    # KeyboardInterrupt and friends.
    assert issubclass(ReproError, Exception)
    assert not issubclass(KeyboardInterrupt, ReproError)
    assert not issubclass(SystemExit, ReproError)


def test_protection_fault_carries_address():
    fault = ProtectionFault(0xDEAD)
    assert fault.vaddr == 0xDEAD
    assert "0xdead" in str(fault)


def test_protection_fault_custom_message():
    fault = ProtectionFault(0x10, "write to read-only region")
    assert "write to read-only region" in str(fault)
