"""Unit tests for geometry and timing parameter records."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.params import (
    CacheGeometry,
    FaultTiming,
    MemoryGeometry,
    MemoryTiming,
    PageGeometry,
)
from repro.common.units import KB, MB


class TestCacheGeometry:
    def test_prototype_defaults(self):
        geometry = CacheGeometry()
        assert geometry.size_bytes == 128 * KB
        assert geometry.block_bytes == 32
        assert geometry.num_lines == 4096
        assert geometry.words_per_block == 8

    def test_address_arithmetic(self):
        geometry = CacheGeometry(size_bytes=1024, block_bytes=32)
        # 32 lines; address 0x45 -> block 2, index 2.
        assert geometry.line_index(0x45) == 2
        assert geometry.block_address(0x45) == 0x40
        # Addresses one cache-size apart share an index but not a tag.
        assert geometry.line_index(0x45 + 1024) == 2
        assert geometry.tag(0x45 + 1024) == geometry.tag(0x45) + 1

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=1000)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(block_bytes=24)

    def test_rejects_block_smaller_than_word(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(block_bytes=2)

    def test_rejects_cache_smaller_than_block(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=16, block_bytes=32)


class TestPageGeometry:
    def test_prototype_defaults(self):
        geometry = PageGeometry()
        assert geometry.page_bytes == 4 * KB
        assert geometry.blocks_per_page == 128

    def test_page_number_and_offset(self):
        geometry = PageGeometry(page_bytes=256, block_bytes=32)
        assert geometry.page_number(0x305) == 3
        assert geometry.offset(0x305) == 5
        assert geometry.page_address(3) == 0x300

    def test_rejects_page_smaller_than_block(self):
        with pytest.raises(ConfigurationError):
            PageGeometry(page_bytes=16, block_bytes=32)


class TestMemoryGeometry:
    def test_frames(self):
        assert MemoryGeometry(8 * MB, 4 * KB).num_frames == 2048

    def test_rejects_fractional_pages(self):
        with pytest.raises(ConfigurationError):
            MemoryGeometry(4 * KB + 1, 4 * KB)

    def test_rejects_memory_below_one_page(self):
        with pytest.raises(ConfigurationError):
            MemoryGeometry(2 * KB, 4 * KB)


class TestMemoryTiming:
    def test_block_transfer_matches_table_2_1(self):
        # 3 cycles to first word, 1 per next: 8-word block = 10 memory
        # cycles plus arbitration.
        timing = MemoryTiming()
        assert timing.block_transfer_cycles(8) == (
            timing.bus_arbitration_cycles + 3 + 7
        )

    def test_single_word_block(self):
        timing = MemoryTiming()
        assert timing.block_transfer_cycles(1) == (
            timing.bus_arbitration_cycles + 3
        )

    def test_rejects_empty_block(self):
        with pytest.raises(ConfigurationError):
            MemoryTiming().block_transfer_cycles(0)


class TestFaultTiming:
    def test_table_3_2_defaults(self):
        timing = FaultTiming()
        assert timing.dirty_fault == 1000
        assert timing.page_flush == 500
        assert timing.dirty_bit_miss == 25
        assert timing.dirty_check == 5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FaultTiming(dirty_fault=-1)
