"""Unit tests for the deterministic RNG and its substreams."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.random() for _ in range(20)] == [
            b.random() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(8)] != [
            b.random() for _ in range(8)
        ]

    def test_state_round_trip(self):
        rng = DeterministicRng(3)
        rng.random()
        state = rng.getstate()
        first = [rng.random() for _ in range(5)]
        rng.setstate(state)
        assert [rng.random() for _ in range(5)] == first


class TestSubstreams:
    def test_substreams_are_independent_of_parent_draws(self):
        a = DeterministicRng(11)
        sub_before = a.substream("work").random()
        b = DeterministicRng(11)
        b.random()  # extra parent draw must not perturb the substream
        sub_after = b.substream("work").random()
        assert sub_before == sub_after

    def test_named_substreams_differ(self):
        rng = DeterministicRng(5)
        assert (
            rng.substream("alpha").random()
            != rng.substream("beta").random()
        )

    def test_substream_reproducible_across_instances(self):
        x = DeterministicRng(9).substream("trace").randint(0, 10**9)
        y = DeterministicRng(9).substream("trace").randint(0, 10**9)
        assert x == y


class TestDraws:
    def test_randint_bounds_inclusive(self):
        rng = DeterministicRng(0)
        draws = {rng.randint(2, 4) for _ in range(200)}
        assert draws == {2, 3, 4}

    def test_randrange_bounds(self):
        rng = DeterministicRng(0)
        assert all(0 <= rng.randrange(5) < 5 for _ in range(100))

    def test_choice_and_sample(self):
        rng = DeterministicRng(1)
        population = list(range(10))
        assert rng.choice(population) in population
        sample = rng.sample(population, 4)
        assert len(set(sample)) == 4

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(2)
        items = list(range(12))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_geometric_p_one_is_zero(self):
        assert DeterministicRng(0).geometric(1.0) == 0

    def test_geometric_rejects_bad_p(self):
        rng = DeterministicRng(0)
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_geometric_mean_close_to_theory(self):
        rng = DeterministicRng(42)
        p = 0.4
        n = 4000
        mean = sum(rng.geometric(p) for _ in range(n)) / n
        assert abs(mean - (1 - p) / p) < 0.1

    def test_zipf_index_in_range(self):
        rng = DeterministicRng(3)
        assert all(0 <= rng.zipf_index(17, 1.0) < 17
                   for _ in range(300))

    def test_zipf_skew_prefers_low_indices(self):
        rng = DeterministicRng(4)
        skewed = sum(rng.zipf_index(100, 2.0) for _ in range(2000))
        uniform = sum(rng.zipf_index(100, 0.0) for _ in range(2000))
        assert skewed < uniform * 0.6

    def test_zipf_rejects_empty_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(0).zipf_index(0)
