"""Unit tests for core value types."""

from repro.common.types import Access, AccessKind, PageKind, Protection


class TestAccessKind:
    def test_integer_values_are_stable(self):
        # Workload generators emit these as bare ints; the mapping is
        # part of the trace-file format and must never change.
        assert int(AccessKind.IFETCH) == 0
        assert int(AccessKind.READ) == 1
        assert int(AccessKind.WRITE) == 2

    def test_is_write(self):
        assert AccessKind.WRITE.is_write
        assert not AccessKind.READ.is_write
        assert not AccessKind.IFETCH.is_write


class TestProtection:
    def test_two_bit_encoding(self):
        # Figure 3.2 allots two bits to protection.
        assert all(0 <= int(level) < 4 for level in Protection)

    def test_none_allows_nothing(self):
        for kind in AccessKind:
            assert not Protection.NONE.allows(kind)

    def test_read_only_blocks_writes(self):
        assert Protection.READ_ONLY.allows(AccessKind.READ)
        assert Protection.READ_ONLY.allows(AccessKind.IFETCH)
        assert not Protection.READ_ONLY.allows(AccessKind.WRITE)

    def test_read_write_allows_all(self):
        for kind in AccessKind:
            assert Protection.READ_WRITE.allows(kind)


class TestAccess:
    def test_is_write_property(self):
        assert Access(AccessKind.WRITE, 0x100).is_write
        assert not Access(AccessKind.READ, 0x100).is_write

    def test_tuple_shape(self):
        kind, vaddr = Access(AccessKind.READ, 0x40)
        assert kind is AccessKind.READ
        assert vaddr == 0x40


class TestPageKind:
    def test_all_origins_present(self):
        assert {k.name for k in PageKind} == {
            "ZERO_FILL", "FILE", "SWAP",
        }
