"""Unit tests for size/time unit helpers."""

import pytest

from repro.common.units import (
    KB,
    MB,
    SPUR_CYCLE_TIME_SECONDS,
    cycles_to_seconds,
    is_power_of_two,
    log2_exact,
    seconds_to_cycles,
)


class TestConstants:
    def test_sizes(self):
        assert KB == 1024
        assert MB == 1024 * 1024

    def test_prototype_cycle_time(self):
        # Table 2.1: 150 ns processor cycle.
        assert SPUR_CYCLE_TIME_SECONDS == pytest.approx(150e-9)


class TestConversions:
    def test_cycles_to_seconds_default_clock(self):
        assert cycles_to_seconds(10_000_000) == pytest.approx(1.5)

    def test_round_trip(self):
        assert seconds_to_cycles(cycles_to_seconds(123456)) == 123456

    def test_custom_cycle_time(self):
        assert cycles_to_seconds(100, cycle_time=1e-3) == pytest.approx(0.1)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -2, 3, 6, 12, 1000):
            assert not is_power_of_two(value)

    def test_log2_exact(self):
        assert log2_exact(4096) == 12

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(48)
