"""Shared fixtures: tiny machines and address spaces for fast tests.

The test machine is a radically shrunken SPUR — 1 KB cache (32 lines),
128-byte pages (4 blocks each), 16 KB of memory (128 frames) — so unit
and integration tests run in microseconds while exercising the same
code paths as the full configurations.
"""

import pytest

from repro.common.params import CacheGeometry, FaultTiming
from repro.lint.pytest_plugin import (  # noqa: F401
    assert_lint_clean,
    repro_lint,
)
from repro.sanitize.pytest_plugin import sanitizer  # noqa: F401
from repro.machine.config import MachineConfig
from repro.machine.simulator import SpurMachine
from repro.vm.segments import AddressSpaceMap, ProcessAddressSpace, RegionKind

#: Geometry constants for the tiny test machine.
TINY_PAGE = 128
TINY_CACHE = 1024
TINY_MEMORY = 16 * 1024
BLOCK = 32


def tiny_config(**overrides):
    """A MachineConfig small enough for exhaustive unit tests."""
    values = dict(
        name="tiny",
        cache=CacheGeometry(size_bytes=TINY_CACHE, block_bytes=BLOCK),
        page_bytes=TINY_PAGE,
        memory_bytes=TINY_MEMORY,
        wired_frames=2,
        fault_timing=FaultTiming(page_io=5_000),
        dirty_policy="SPUR",
        reference_policy="MISS",
        daemon_poll_refs=0,
    )
    values.update(overrides)
    return MachineConfig(**values)


def simple_space(page_bytes=TINY_PAGE, code_pages=4, heap_pages=32,
                 stack_pages=2, file_pages=4, data_pages=4):
    """One-process address space map with every region kind.

    Returns ``(space_map, regions)`` where regions is a dict by kind
    name for direct address arithmetic in tests.
    """
    space_map = AddressSpaceMap(page_bytes)
    space = ProcessAddressSpace(0, page_bytes, 1 << 24, space_map)
    regions = {
        "code": space.add_region("code", RegionKind.CODE,
                                 code_pages * page_bytes),
        "data": space.add_region("data", RegionKind.DATA,
                                 data_pages * page_bytes),
        "heap": space.add_region("heap", RegionKind.HEAP,
                                 heap_pages * page_bytes),
        "stack": space.add_region("stack", RegionKind.STACK,
                                  stack_pages * page_bytes),
        "file": space.add_region("file", RegionKind.FILE,
                                 file_pages * page_bytes),
    }
    space_map.seal()
    return space_map, regions


def make_machine(space_map=None, **overrides):
    """A tiny SpurMachine over ``space_map`` (a default one if None)."""
    if space_map is None:
        space_map, _ = simple_space(
            overrides.get("page_bytes", TINY_PAGE)
        )
    return SpurMachine(tiny_config(**overrides), space_map)


@pytest.fixture
def space_and_regions():
    return simple_space()


@pytest.fixture
def machine(space_and_regions):
    space_map, regions = space_and_regions
    m = make_machine(space_map)
    m.test_regions = regions
    return m


@pytest.fixture
def sanitized_machine(space_and_regions, sanitizer):
    """A tiny machine running under the full-mode invariant sanitizer.

    Every reference the test pushes through ``run()`` is checked, and
    the teardown sweep (from the ``sanitizer`` factory fixture) fails
    the test if it left latent corruption behind.
    """
    space_map, regions = space_and_regions
    m = make_machine(space_map)
    m.test_regions = regions
    m.sanitizer = sanitizer(m, mode="full")
    return m
