"""Unit tests for the performance-counter bank."""

import pytest

from repro.counters.counters import (
    COUNTER_MODULUS,
    CounterSnapshot,
    PerformanceCounters,
)
from repro.counters.events import Event, MODE_SETS, NUM_COUNTERS


class TestOmniscientMode:
    def test_counts_everything(self):
        counters = PerformanceCounters()
        counters.increment(Event.DIRTY_FAULT)
        counters.increment(Event.PAGE_IN, 3)
        assert counters.read(Event.DIRTY_FAULT) == 1
        assert counters.read(Event.PAGE_IN) == 3

    def test_unincremented_reads_zero(self):
        assert PerformanceCounters().read(Event.SNOOP_HIT) == 0

    def test_reset(self):
        counters = PerformanceCounters()
        counters.increment(Event.PAGE_OUT)
        counters.reset()
        assert counters.read(Event.PAGE_OUT) == 0

    def test_no_register_layout(self):
        with pytest.raises(ValueError):
            PerformanceCounters().register_layout()


class TestHardwareModes:
    def test_mode_filters_events(self):
        counters = PerformanceCounters(mode=0)
        counters.increment(Event.DIRTY_FAULT)  # not in mode 0
        counters.increment(Event.READ_MISS)    # in mode 0
        assert counters.read(Event.DIRTY_FAULT) == 0
        assert counters.read(Event.READ_MISS) == 1

    def test_mode_change_preserves_counts(self):
        counters = PerformanceCounters(mode=0)
        counters.increment(Event.READ_MISS)
        counters.set_mode(3)
        assert counters.read(Event.READ_MISS) == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PerformanceCounters(mode=4)

    def test_register_layout_shape(self):
        counters = PerformanceCounters(mode=2)
        layout = counters.register_layout()
        assert len(layout) == NUM_COUNTERS
        assigned = [event for _, event in layout if event is not None]
        assert tuple(assigned) == MODE_SETS[2]

    def test_visible_events(self):
        counters = PerformanceCounters(mode=1)
        assert counters.visible_events() == MODE_SETS[1]
        counters.set_mode(None)
        assert len(counters.visible_events()) == len(tuple(Event))

    def test_agrees_with_omniscient_on_shared_events(self):
        moded = PerformanceCounters(mode=3)
        omni = PerformanceCounters()
        for _ in range(5):
            for bank in (moded, omni):
                bank.increment(Event.DIRTY_FAULT)
                bank.increment(Event.BUS_TRANSACTION)  # not in mode 3
        assert moded.read(Event.DIRTY_FAULT) == omni.read(
            Event.DIRTY_FAULT
        )


class TestWraparound:
    def test_increment_wraps_at_32_bits(self):
        counters = PerformanceCounters()
        counters.increment(Event.PAGE_IN, COUNTER_MODULUS - 1)
        counters.increment(Event.PAGE_IN, 2)
        assert counters.read(Event.PAGE_IN) == 1

    def test_snapshot_delta_across_wrap(self):
        counters = PerformanceCounters()
        counters.increment(Event.PAGE_IN, COUNTER_MODULUS - 10)
        before = counters.snapshot()
        counters.increment(Event.PAGE_IN, 25)
        delta = counters.snapshot() - before
        assert delta[Event.PAGE_IN] == 25


class TestSnapshot:
    def test_snapshot_is_immutable_copy(self):
        counters = PerformanceCounters()
        counters.increment(Event.PAGE_IN)
        snap = counters.snapshot()
        counters.increment(Event.PAGE_IN)
        assert snap[Event.PAGE_IN] == 1
        assert counters.read(Event.PAGE_IN) == 2

    def test_delta_subtraction(self):
        counters = PerformanceCounters()
        counters.increment(Event.PAGE_OUT, 5)
        first = counters.snapshot()
        counters.increment(Event.PAGE_OUT, 7)
        delta = counters.snapshot() - first
        assert delta[Event.PAGE_OUT] == 7

    def test_subtracting_non_snapshot_is_not_implemented(self):
        snap = CounterSnapshot({})
        with pytest.raises(TypeError):
            snap - 3

    def test_as_dict_copy(self):
        counters = PerformanceCounters()
        counters.increment(Event.PAGE_IN)
        data = counters.snapshot().as_dict()
        data[Event.PAGE_IN] = 99
        assert counters.read(Event.PAGE_IN) == 1
