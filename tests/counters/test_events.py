"""Unit tests for the counter event taxonomy and mode sets."""

from repro.counters.events import Event, MODE_SETS, NUM_COUNTERS, NUM_MODES


def test_four_modes_exist():
    assert set(MODE_SETS) == set(range(NUM_MODES))


def test_mode_sets_fit_the_sixteen_registers():
    for events in MODE_SETS.values():
        assert len(events) <= NUM_COUNTERS


def test_mode_sets_have_no_duplicates():
    for events in MODE_SETS.values():
        assert len(set(events)) == len(events)


def test_dirty_bit_mode_covers_the_paper_events():
    # Mode 3 must count everything Table 3.3 needs in one run.
    needed = {
        Event.DIRTY_FAULT,
        Event.ZERO_FILL_DIRTY_FAULT,
        Event.EXCESS_FAULT,
        Event.DIRTY_BIT_MISS,
        Event.WRITE_TO_READ_FILLED_BLOCK,
        Event.WRITE_MISS_FILL,
    }
    assert needed <= set(MODE_SETS[3])


def test_reference_mix_mode_covers_processor_events():
    needed = {
        Event.INSTRUCTION_FETCH,
        Event.PROCESSOR_READ,
        Event.PROCESSOR_WRITE,
        Event.IFETCH_MISS,
        Event.READ_MISS,
        Event.WRITE_MISS,
    }
    assert needed <= set(MODE_SETS[0])


def test_translation_mode_covers_walk_events():
    needed = {
        Event.TRANSLATION,
        Event.PTE_CACHE_HIT,
        Event.PTE_CACHE_MISS,
        Event.SECOND_LEVEL_MEMORY_ACCESS,
    }
    assert needed <= set(MODE_SETS[1])


def test_every_event_has_unique_value():
    values = [int(e) for e in Event]
    assert len(values) == len(set(values))
